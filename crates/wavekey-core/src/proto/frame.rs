//! The wire frame: the versioned, length-delimited envelope every
//! protocol message travels in.
//!
//! Layout (little-endian, hand-rolled so the offline rig builds without
//! a serializer):
//!
//! ```text
//! offset  size  field
//! 0       2     magic  0x57 0x4B ("WK")
//! 2       1     version (WIRE_VERSION = 1)
//! 3       1     kind    (MessageKind wire tag, see MessageKind::wire_tag)
//! 4       4     payload length, u32 LE
//! 8       n     payload
//! ```
//!
//! Decoding is total: every malformed input maps to a [`FrameError`],
//! never a panic — the adversary owns the channel, so the decoder is an
//! attack surface.

use crate::channel::MessageKind;

/// The two magic bytes every frame starts with.
pub const MAGIC: [u8; 2] = [0x57, 0x4B];
/// The current wire-format version.
pub const WIRE_VERSION: u8 = 1;
/// Fixed header length in bytes (magic + version + kind + length).
pub const HEADER_LEN: usize = 8;
/// Upper bound on payload length: a MODP-1024 OT batch of a few thousand
/// instances stays far below this; anything larger is hostile.
pub const MAX_PAYLOAD: usize = 1 << 24;

/// One framed protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Wire-format version (always [`WIRE_VERSION`] for frames we build;
    /// adversaries may rewrite it, and handlers must reject mismatches).
    pub version: u8,
    /// Which protocol message the payload carries.
    pub kind: MessageKind,
    /// The message body (an encoded OT round, the challenge, or the
    /// response).
    pub payload: Vec<u8>,
}

/// Frame decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a header, or payload shorter than declared.
    Truncated,
    /// The first two bytes are not [`MAGIC`].
    BadMagic,
    /// Unrecognized version byte.
    UnknownVersion(u8),
    /// Unrecognized kind tag.
    UnknownKind(u8),
    /// The declared length disagrees with the bytes actually present.
    LengthMismatch {
        /// Payload length the header declared.
        declared: usize,
        /// Payload bytes actually present after the header.
        actual: usize,
    },
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(usize),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::UnknownVersion(v) => write!(f, "unknown wire version {v}"),
            FrameError::UnknownKind(k) => write!(f, "unknown message kind tag {k}"),
            FrameError::LengthMismatch { declared, actual } => {
                write!(f, "frame length mismatch: declared {declared}, got {actual}")
            }
            FrameError::Oversized(n) => write!(f, "frame payload oversized: {n} bytes"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Builds a current-version frame.
    pub fn new(kind: MessageKind, payload: Vec<u8>) -> Frame {
        Frame { version: WIRE_VERSION, kind, payload }
    }

    /// Serializes the frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.version);
        out.push(self.kind.wire_tag());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses one frame from `bytes`, which must contain exactly one
    /// frame (trailing bytes are a [`FrameError::LengthMismatch`]).
    ///
    /// # Errors
    ///
    /// See [`FrameError`]; no input panics.
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        if bytes[0..2] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        let version = bytes[2];
        if version != WIRE_VERSION {
            return Err(FrameError::UnknownVersion(version));
        }
        let kind =
            MessageKind::from_wire(bytes[3]).ok_or(FrameError::UnknownKind(bytes[3]))?;
        let declared = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
        if declared > MAX_PAYLOAD {
            return Err(FrameError::Oversized(declared));
        }
        let actual = bytes.len() - HEADER_LEN;
        if actual < declared {
            return Err(FrameError::Truncated);
        }
        if actual > declared {
            return Err(FrameError::LengthMismatch { declared, actual });
        }
        Ok(Frame { version, kind, payload: bytes[HEADER_LEN..].to_vec() })
    }

    /// Reads just the kind tag of an encoded frame, without validating
    /// the rest (routing aid for queues and logs).
    pub fn peek_kind(bytes: &[u8]) -> Option<MessageKind> {
        if bytes.len() < 4 || bytes[0..2] != MAGIC {
            return None;
        }
        MessageKind::from_wire(bytes[3])
    }
}

/// Incremental frame decoder for byte streams.
///
/// A connection-oriented transport delivers arbitrary chunks — half a
/// header here, three frames and a tail there — so the gateway needs a
/// decoder that accepts any split: [`Decoder::push`] appends bytes,
/// [`Decoder::next_frame`] pops the next complete frame (or a typed
/// error for a malformed header, after which the decoder resynchronizes
/// by scanning forward for the next [`MAGIC`]).
///
/// Guarantees:
///
/// * **Split-point invariance** — the sequence of `Ok` frames depends
///   only on the byte stream, never on how it was chunked. (Error
///   *counts* may differ: a garbage run reports one [`FrameError::BadMagic`]
///   per scan that discards bytes.)
/// * **Totality** — no input panics; garbage is skipped, not trusted.
/// * **Bounded amnesia** — a header whose declared payload never arrives
///   is indistinguishable from a slow sender, so the decoder waits;
///   stream owners bound that wait with idle timeouts, not the decoder.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily to keep pops O(1)).
    start: usize,
    resyncs: u64,
}

impl Decoder {
    /// A fresh decoder with no buffered bytes.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Appends a chunk of received bytes (any split is fine).
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes received but not yet consumed as frames or garbage.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// How many times the decoder lost framing and had to scan for the
    /// next [`MAGIC`].
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Pops the next complete frame.
    ///
    /// * `None` — need more bytes (partial header or partial payload).
    /// * `Some(Err(_))` — malformed bytes at the head of the buffer; the
    ///   decoder has already skipped them and will resync on the next
    ///   call. Callers typically count and continue.
    /// * `Some(Ok(frame))` — one whole frame, consumed from the buffer.
    pub fn next_frame(&mut self) -> Option<Result<Frame, FrameError>> {
        if self.seek_magic() {
            self.resyncs += 1;
            self.compact();
            return Some(Err(FrameError::BadMagic));
        }
        let w = &self.buf[self.start..];
        if w.len() < HEADER_LEN {
            self.compact();
            return None;
        }
        // seek_magic leaves the window either empty, a bare MAGIC[0]
        // tail, or aligned on the full magic — so the header is at 0.
        let version = w[2];
        if version != WIRE_VERSION {
            return Some(self.reject(FrameError::UnknownVersion(version)));
        }
        let Some(kind) = MessageKind::from_wire(w[3]) else {
            let tag = w[3];
            return Some(self.reject(FrameError::UnknownKind(tag)));
        };
        let declared = u32::from_le_bytes(w[4..8].try_into().expect("4 bytes")) as usize;
        if declared > MAX_PAYLOAD {
            return Some(self.reject(FrameError::Oversized(declared)));
        }
        if w.len() < HEADER_LEN + declared {
            self.compact();
            return None;
        }
        let payload = w[HEADER_LEN..HEADER_LEN + declared].to_vec();
        self.start += HEADER_LEN + declared;
        self.compact();
        Some(Ok(Frame { version, kind, payload }))
    }

    /// Discards bytes until the window starts with a plausible magic (a
    /// full [`MAGIC`], or its first byte at the very end of the buffer —
    /// the second byte may still be in flight). Returns whether any
    /// garbage was discarded.
    fn seek_magic(&mut self) -> bool {
        let w = &self.buf[self.start..];
        let mut skip = 0;
        while skip < w.len() {
            if w[skip] == MAGIC[0] && (skip + 1 == w.len() || w[skip + 1] == MAGIC[1]) {
                break;
            }
            skip += 1;
        }
        self.start += skip;
        skip > 0
    }

    /// The header at the window start is malformed: skip past its magic
    /// so the next scan cannot trip on the same bytes, and count the
    /// resync.
    fn reject(&mut self, err: FrameError) -> Result<Frame, FrameError> {
        self.start += MAGIC.len();
        self.resyncs += 1;
        self.compact();
        Err(err)
    }

    /// Reclaims the consumed prefix once it dominates the buffer (or the
    /// buffer is fully drained), keeping long-lived connections from
    /// retaining every byte they ever received.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_identity_over_random_frames() {
        // StdRng-driven property loop, runnable under the offline rig
        // (the cargo-only proptest variants live in tests/properties.rs).
        let mut rng = StdRng::seed_from_u64(0xF4A3);
        for case in 0..500 {
            let kind = MessageKind::ALL[case % MessageKind::ALL.len()];
            let len = rng.gen_range(0..2048);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let frame = Frame::new(kind, payload);
            let bytes = frame.encode();
            assert_eq!(bytes.len(), HEADER_LEN + frame.payload.len());
            assert_eq!(Frame::decode(&bytes).unwrap(), frame, "case {case}");
            assert_eq!(Frame::peek_kind(&bytes), Some(kind));
        }
    }

    #[test]
    fn random_mutations_never_panic_the_decoder() {
        // Seeded mutation fuzz over valid frames — flip bytes, cut tails,
        // splice junk — runnable under the offline rig (the proptest twin
        // is `frame_decode_survives_random_mutation` in
        // tests/properties.rs). Decoding is total: every mutation yields
        // Ok or a typed error, and an Ok must re-encode byte-identically.
        let mut rng = StdRng::seed_from_u64(0x0F4A_117);
        for case in 0..2000 {
            let kind = MessageKind::ALL[case % MessageKind::ALL.len()];
            let len = rng.gen_range(0..512);
            let payload: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let mut bytes = Frame::new(kind, payload).encode();
            match rng.gen_range(0..3) {
                0 => {
                    for _ in 0..rng.gen_range(1..8) {
                        let idx = rng.gen_range(0..bytes.len());
                        bytes[idx] ^= rng.gen_range(1..=u8::MAX);
                    }
                }
                1 => {
                    let cut = rng.gen_range(0..bytes.len());
                    bytes.truncate(cut);
                }
                _ => {
                    let extra = rng.gen_range(1..32);
                    bytes.extend((0..extra).map(|_| rng.gen::<u8>()));
                }
            }
            if let Ok(frame) = Frame::decode(&bytes) {
                assert_eq!(frame.encode(), bytes, "case {case}");
            }
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_rejected_without_panic() {
        let frame = Frame::new(MessageKind::Challenge, vec![7u8; 40]);
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            let err = Frame::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated | FrameError::BadMagic),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_a_length_mismatch() {
        let mut bytes = Frame::new(MessageKind::OtA, vec![1, 2, 3]).encode();
        bytes.push(0xFF);
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            FrameError::LengthMismatch { declared: 3, actual: 4 }
        );
    }

    #[test]
    fn oversized_declared_length_is_rejected() {
        let mut bytes = Frame::new(MessageKind::OtE, vec![]).encode();
        bytes[4..8].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes).unwrap_err(),
            FrameError::Oversized(u32::MAX as usize)
        );
    }

    #[test]
    fn unknown_version_and_kind_are_rejected() {
        let mut bytes = Frame::new(MessageKind::OtB, vec![9]).encode();
        bytes[2] = 42;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), FrameError::UnknownVersion(42));
        let mut bytes = Frame::new(MessageKind::OtB, vec![9]).encode();
        bytes[3] = 0;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), FrameError::UnknownKind(0));
        bytes[3] = 200;
        assert_eq!(Frame::decode(&bytes).unwrap_err(), FrameError::UnknownKind(200));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Frame::new(MessageKind::Response, vec![]).encode();
        bytes[0] = b'X';
        assert_eq!(Frame::decode(&bytes).unwrap_err(), FrameError::BadMagic);
        assert_eq!(Frame::peek_kind(&bytes), None);
    }

    // ----------------------------------------------- streaming decoder

    fn random_frames(rng: &mut StdRng, n: usize, max_len: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| {
                let kind = MessageKind::ALL[i % MessageKind::ALL.len()];
                let len = rng.gen_range(0..max_len);
                Frame::new(kind, (0..len).map(|_| rng.gen()).collect())
            })
            .collect()
    }

    /// Feeds `bytes` to a fresh decoder in chunks cut at `rng`-chosen
    /// split points, returning every Ok frame (errors are tolerated).
    fn decode_chunked(rng: &mut StdRng, bytes: &[u8], max_chunk: usize) -> (Vec<Frame>, Decoder) {
        let mut dec = Decoder::new();
        let mut got = Vec::new();
        let mut at = 0;
        while at < bytes.len() {
            let take = rng.gen_range(1..=max_chunk.min(bytes.len() - at));
            dec.push(&bytes[at..at + take]);
            at += take;
            while let Some(item) = dec.next_frame() {
                if let Ok(frame) = item {
                    got.push(frame);
                }
            }
        }
        (got, dec)
    }

    #[test]
    fn streaming_decoder_is_split_point_invariant() {
        // Seeded split-point fuzz (proptest twin:
        // `decoder_split_points_do_not_change_frames` in
        // tests/properties.rs): the same clean byte stream must yield the
        // same frames no matter how it is chunked, with no resyncs and
        // nothing left buffered.
        let mut rng = StdRng::seed_from_u64(0xDECD_E5);
        for case in 0..60 {
            let n = rng.gen_range(1..12);
            let frames = random_frames(&mut rng, n, 300);
            let stream: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
            for max_chunk in [1usize, 3, 7, 64, stream.len()] {
                let (got, dec) = decode_chunked(&mut rng, &stream, max_chunk);
                assert_eq!(got, frames, "case {case} chunk {max_chunk}");
                assert_eq!(dec.buffered(), 0, "case {case} chunk {max_chunk}");
                assert_eq!(dec.resyncs(), 0, "case {case} chunk {max_chunk}");
            }
        }
    }

    #[test]
    fn streaming_decoder_resyncs_through_garbage() {
        // Frames separated by junk runs (junk avoids MAGIC[0] so a run
        // can never fake a header): every frame must still be recovered,
        // and the decoder must report at least one resync per junk run.
        let mut rng = StdRng::seed_from_u64(0x6A4B_A6E);
        for case in 0..40 {
            let n = rng.gen_range(1..8);
            let frames = random_frames(&mut rng, n, 128);
            let mut stream = Vec::new();
            let mut junk_runs = 0u64;
            for frame in &frames {
                if rng.gen_range(0..10) < 7 {
                    junk_runs += 1;
                    let len = rng.gen_range(1..40);
                    stream.extend((0..len).map(|_| loop {
                        let b: u8 = rng.gen();
                        if b != MAGIC[0] {
                            break b;
                        }
                    }));
                }
                stream.extend(frame.encode());
            }
            let (got, dec) = decode_chunked(&mut rng, &stream, 13);
            assert_eq!(got, frames, "case {case}");
            assert!(dec.resyncs() >= junk_runs, "case {case}");
        }
    }

    #[test]
    fn streaming_decoder_reports_header_errors_then_recovers() {
        let good = Frame::new(MessageKind::OtB, vec![0xAA; 9]);
        // A frame with a rewritten version byte, then an oversized
        // header, then the good frame. Payload/length bytes avoid 0x57
        // so the resync scan lands exactly on the good magic.
        let mut stream = Frame::new(MessageKind::OtA, vec![1, 2, 3]).encode();
        stream[2] = 9;
        let mut oversized = Frame::new(MessageKind::OtE, vec![]).encode();
        oversized[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        stream.extend(oversized);
        stream.extend(good.encode());

        let mut dec = Decoder::new();
        dec.push(&stream);
        let mut errs = Vec::new();
        let mut frames = Vec::new();
        while let Some(item) = dec.next_frame() {
            match item {
                Ok(f) => frames.push(f),
                Err(e) => errs.push(e),
            }
        }
        assert_eq!(frames, vec![good]);
        assert!(errs.contains(&FrameError::UnknownVersion(9)), "{errs:?}");
        assert!(errs.contains(&FrameError::Oversized(u32::MAX as usize)), "{errs:?}");
        assert!(dec.resyncs() >= 2);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn streaming_decoder_waits_for_partial_frames() {
        let frame = Frame::new(MessageKind::Challenge, vec![5u8; 32]);
        let bytes = frame.encode();
        let mut dec = Decoder::new();
        for cut in [1usize, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 10] {
            let mut d = Decoder::new();
            d.push(&bytes[..cut]);
            assert!(d.next_frame().is_none(), "cut {cut}");
            assert_eq!(d.buffered(), cut, "cut {cut}");
        }
        dec.push(&bytes[..5]);
        assert!(dec.next_frame().is_none());
        dec.push(&bytes[5..]);
        assert_eq!(dec.next_frame(), Some(Ok(frame)));
        assert_eq!(dec.buffered(), 0);
        assert_eq!(dec.resyncs(), 0);
    }

    #[test]
    fn streaming_decoder_mutation_fuzz_never_panics() {
        // Mutate whole multi-frame streams (bit flips, deletions,
        // splices), then feed them through random chunkings. The decoder
        // must never panic, and every Ok frame must re-encode cleanly.
        let mut rng = StdRng::seed_from_u64(0xFA22_DEC);
        for _ in 0..300 {
            let n = rng.gen_range(1..6);
            let frames = random_frames(&mut rng, n, 100);
            let mut stream: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
            for _ in 0..rng.gen_range(1..10) {
                match rng.gen_range(0..3) {
                    0 => {
                        let idx = rng.gen_range(0..stream.len());
                        stream[idx] ^= rng.gen_range(1..=u8::MAX);
                    }
                    1 => {
                        let idx = rng.gen_range(0..stream.len());
                        stream.remove(idx);
                    }
                    _ => {
                        let idx = rng.gen_range(0..=stream.len());
                        let extra: Vec<u8> =
                            (0..rng.gen_range(1..16)).map(|_| rng.gen()).collect();
                        stream.splice(idx..idx, extra);
                    }
                }
            }
            let (got, _) = decode_chunked(&mut rng, &stream, 17);
            for frame in got {
                assert_eq!(frame.version, WIRE_VERSION);
                assert_eq!(Frame::decode(&frame.encode()), Ok(frame));
            }
        }
    }

    #[test]
    fn streaming_decoder_compacts_consumed_bytes() {
        // A long-lived connection must not retain every byte it ever
        // received: after draining many frames the internal buffer stays
        // bounded by roughly one frame, not the whole history.
        let mut dec = Decoder::new();
        let frame = Frame::new(MessageKind::OtA, vec![7u8; 1024]);
        for _ in 0..64 {
            dec.push(&frame.encode());
            assert_eq!(dec.next_frame(), Some(Ok(frame.clone())));
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn wire_tags_roundtrip_for_every_kind() {
        for kind in MessageKind::ALL {
            assert_eq!(MessageKind::from_wire(kind.wire_tag()), Some(kind));
        }
        assert_eq!(MessageKind::from_wire(0), None);
        assert_eq!(MessageKind::from_wire(6), None);
    }
}
