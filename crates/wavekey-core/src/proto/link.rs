//! Transport-agnostic session-core shared by every protocol driver.
//!
//! Two drivers speak the sans-IO machines today — the in-process
//! [`crate::service::SessionManager`] (whole frames over a modelled
//! channel) and the async `wavekey-gateway` (byte streams over simulated
//! sockets) — and both need the same link-layer judgement calls: when a
//! dropped frame may be retransmitted, when a corrupted delivery may be
//! NAK'd for a clean copy, and when an out-of-order frame may be
//! deferred instead of failing the session. This module extracts those
//! decisions from `service.rs` so a transport cannot drift from the
//! recovery semantics the fault-soak gate certifies:
//!
//! * [`LinkDiscipline`] — the budgeted recovery policy for **one
//!   session** (both directions share its budgets, exactly as the
//!   manager always enforced them).
//! * [`Endpoint`] — one party's machine behind a party-agnostic face:
//!   frame routing, idle accounting, and accessors, so drivers hold
//!   "two endpoints" rather than matching on mobile/server everywhere.
//!
//! What deliberately stays with the driver: the channel model itself
//! (adversary interception, in-flight queues, clean-copy checksums) and
//! every causal-event emission — event *ordering* is part of the
//! timeline contract, and each driver owns its own ordering.

use crate::agreement::{AgreementError, RetryPolicy};
use crate::channel::MessageKind;
use crate::proto::{replay_cap, Frame, MobileAgreement, ServerAgreement, State};
use wavekey_obs::EventScope;

/// Which party an [`Endpoint`] wraps.
#[derive(Debug)]
pub enum Machine {
    /// The mobile (device) side.
    Mobile(MobileAgreement),
    /// The server (reader) side.
    Server(ServerAgreement),
}

/// One party's protocol machine behind a party-agnostic interface.
///
/// Beyond delegation, the endpoint tracks per-endpoint idle age for
/// drivers that evict silent peers (the gateway's idle timeout); the
/// manager keeps its own session-level idle counter because its
/// scheduler visits the session, not the endpoint.
#[derive(Debug)]
pub struct Endpoint {
    machine: Machine,
    idle_ticks: u32,
}

impl Endpoint {
    /// Wraps a mobile machine.
    pub fn mobile(machine: MobileAgreement) -> Endpoint {
        Endpoint { machine: Machine::Mobile(machine), idle_ticks: 0 }
    }

    /// Wraps a server machine.
    pub fn server(machine: ServerAgreement) -> Endpoint {
        Endpoint { machine: Machine::Server(machine), idle_ticks: 0 }
    }

    /// Stable actor label for causal timelines.
    pub fn actor(&self) -> &'static str {
        match self.machine {
            Machine::Mobile(_) => "mobile",
            Machine::Server(_) => "server",
        }
    }

    /// Produces this party's opening `M_A` frame (both parties open; the
    /// OT is bidirectional).
    ///
    /// # Errors
    ///
    /// Delegates the machine's taxonomy (e.g. `start()` outside `Init`).
    pub fn start(&mut self) -> Result<Frame, AgreementError> {
        match &mut self.machine {
            Machine::Mobile(m) => m.start(),
            Machine::Server(s) => s.start(),
        }
    }

    /// Routes one received frame into the machine.
    ///
    /// # Errors
    ///
    /// The machine's full [`AgreementError`] taxonomy.
    pub fn handle(
        &mut self,
        frame: &Frame,
        arrival: f64,
    ) -> Result<Vec<Frame>, AgreementError> {
        match &mut self.machine {
            Machine::Mobile(m) => m.handle(frame, arrival),
            Machine::Server(s) => s.handle(frame, arrival),
        }
    }

    /// Current protocol state.
    pub fn state(&self) -> State {
        match &self.machine {
            Machine::Mobile(m) => m.state(),
            Machine::Server(s) => s.state(),
        }
    }

    /// Whether the machine reached [`State::Done`].
    pub fn is_done(&self) -> bool {
        self.state() == State::Done
    }

    /// The party's logical clock (protocol seconds).
    pub fn clock(&self) -> f64 {
        match &self.machine {
            Machine::Mobile(m) => m.clock(),
            Machine::Server(s) => s.clock(),
        }
    }

    /// Advances the logical clock without booking compute (backoff
    /// billing — see [`RetryPolicy::backoff`]).
    pub fn charge(&mut self, seconds: f64) {
        match &mut self.machine {
            Machine::Mobile(m) => m.charge(seconds),
            Machine::Server(s) => s.charge(seconds),
        }
    }

    /// The message kind the machine is waiting for, if any.
    pub fn expected_kind(&self) -> Option<MessageKind> {
        match &self.machine {
            Machine::Mobile(m) => m.expected_kind(),
            Machine::Server(s) => s.expected_kind(),
        }
    }

    /// The established key (empty until [`State::Done`]).
    pub fn key(&self) -> &[u8] {
        match &self.machine {
            Machine::Mobile(m) => m.key(),
            Machine::Server(s) => s.key(),
        }
    }

    /// The pre-reconciliation key bits (for mismatch diagnostics).
    pub fn preliminary_key(&self) -> &[bool] {
        match &self.machine {
            Machine::Mobile(m) => m.preliminary_key(),
            Machine::Server(s) => s.preliminary_key(),
        }
    }

    /// Binds a causal-event scope to the machine.
    pub fn bind_events(&mut self, scope: EventScope) {
        match &mut self.machine {
            Machine::Mobile(m) => m.bind_events(scope),
            Machine::Server(s) => s.bind_events(scope),
        }
    }

    /// The mobile machine, when this endpoint wraps one.
    pub fn as_mobile(&self) -> Option<&MobileAgreement> {
        match &self.machine {
            Machine::Mobile(m) => Some(m),
            Machine::Server(_) => None,
        }
    }

    /// The server machine, when this endpoint wraps one.
    pub fn as_server(&self) -> Option<&ServerAgreement> {
        match &self.machine {
            Machine::Mobile(_) => None,
            Machine::Server(s) => Some(s),
        }
    }

    /// Ages the endpoint by one silent scheduler visit and returns the
    /// new idle age.
    pub fn idle_tick(&mut self) -> u32 {
        self.idle_ticks += 1;
        self.idle_ticks
    }

    /// Resets the idle age (traffic arrived).
    pub fn touch(&mut self) {
        self.idle_ticks = 0;
    }

    /// Consecutive silent visits since the last [`Endpoint::touch`].
    pub fn idle_ticks(&self) -> u32 {
        self.idle_ticks
    }
}

/// The budgeted recovery policy for one session.
///
/// All budgets are **session-level**: both directions of the exchange
/// draw from the same NAK and defer allowances, exactly as the
/// in-process manager always enforced them — a flood of recoverable
/// faults on one leg exhausts the session, not just that leg. Each
/// method makes one link-layer decision *and* performs its bookkeeping,
/// so no caller can consume a budget without counting it:
///
/// * [`drop_retry`](Self::drop_retry) — may a vanished frame go back on
///   the wire, and at what backoff?
/// * [`nak_retry`](Self::nak_retry) — may a failed delivery be NAK'd
///   for a clean retransmission, and at what backoff?
/// * [`should_defer`](Self::should_defer) — may an out-of-order frame
///   be parked instead of failing the session?
///
/// The backoff seconds returned must be charged onto the *sender's*
/// logical clock (see [`crate::proto::PartyCore::charge`] semantics via
/// [`Endpoint::charge`]): recovered deadline-critical messages arrive
/// later, keeping the `2 + τ` fence honest.
#[derive(Debug, Clone)]
pub struct LinkDiscipline {
    retry: RetryPolicy,
    nak_budget_used: u32,
    defers_used: u32,
    retransmits: u64,
}

impl LinkDiscipline {
    /// A discipline enforcing `retry` (use [`RetryPolicy::none`] for the
    /// strict no-recovery link).
    pub fn new(retry: RetryPolicy) -> LinkDiscipline {
        LinkDiscipline { retry, nak_budget_used: 0, defers_used: 0, retransmits: 0 }
    }

    /// Whether any recovery is configured at all.
    pub fn enabled(&self) -> bool {
        self.retry.enabled()
    }

    /// The underlying policy.
    pub fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Total frames recovery put back on the wire (drop retransmissions
    /// + NAK re-sends).
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// NAK retransmissions consumed so far (bounded by
    /// [`replay_cap`]).
    pub fn nak_budget_used(&self) -> u32 {
        self.nak_budget_used
    }

    /// A transmitted frame vanished (adversary drop, dead stream):
    /// decide whether attempt `*attempt + 1` may be made. On `Some`,
    /// `attempt` has been advanced, the retransmit counted, and the
    /// returned backoff must be charged to the sender before the retry.
    /// `None` means the policy is exhausted — the frame stays lost and
    /// idle eviction will claim the session.
    pub fn drop_retry(&mut self, attempt: &mut u32) -> Option<f64> {
        if *attempt >= self.retry.max_retries {
            return None;
        }
        *attempt += 1;
        self.retransmits += 1;
        Some(self.retry.backoff(*attempt))
    }

    /// A delivery failed the link layer (undecodable bytes or a
    /// checksum mismatch): decide whether the sender may be NAK'd for a
    /// clean copy. On `Some`, the budget is consumed, the retransmit
    /// counted, and the returned backoff must be charged to the sender.
    pub fn nak_retry(&mut self) -> Option<f64> {
        if !self.retry.enabled() || self.nak_budget_used >= replay_cap(&self.retry) {
            return None;
        }
        self.nak_budget_used += 1;
        self.retransmits += 1;
        Some(self.retry.backoff(self.nak_budget_used.min(self.retry.max_retries)))
    }

    /// An in-order transport handed the receiver a *future* message
    /// kind (its prerequisite was reordered or is still in recovery):
    /// decide whether the frame may be parked for later redelivery. On
    /// `true` the defer budget is consumed — a missing prerequisite
    /// cannot spin the session forever.
    pub fn should_defer(
        &mut self,
        expected: Option<MessageKind>,
        got: MessageKind,
    ) -> bool {
        if !self.retry.enabled() {
            return false;
        }
        let Some(expected) = expected else { return false };
        if got.wire_tag() > expected.wire_tag() && self.defers_used < replay_cap(&self.retry) {
            self.defers_used += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agreement::AgreementConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_config() -> AgreementConfig {
        AgreementConfig { use_tiny_group: true, tau: 10.0, ..Default::default() }
    }

    fn seeds(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 3 == 0).collect()
    }

    #[test]
    fn endpoints_drive_a_full_agreement() {
        // The endpoint wrapper must be a transparent face over the
        // machines: a lockstep exchange through two Endpoints lands both
        // parties in Done with equal keys.
        let config = tiny_config();
        let s = seeds(24);
        let mobile = MobileAgreement::new(&s, &config, StdRng::seed_from_u64(1)).unwrap();
        let server = ServerAgreement::new(&s, &config, StdRng::seed_from_u64(2)).unwrap();
        let mut a = Endpoint::mobile(mobile);
        let mut b = Endpoint::server(server);
        assert_eq!(a.actor(), "mobile");
        assert_eq!(b.actor(), "server");
        assert!(a.as_mobile().is_some() && a.as_server().is_none());
        assert!(b.as_server().is_some() && b.as_mobile().is_none());

        let mut to_b = vec![a.start().unwrap()];
        let mut to_a = vec![b.start().unwrap()];
        for _ in 0..8 {
            if a.is_done() && b.is_done() {
                break;
            }
            let mut next_to_b = Vec::new();
            for frame in to_a.drain(..) {
                let arrival = a.clock() + 0.001;
                next_to_b.extend(a.handle(&frame, arrival).unwrap());
            }
            let mut next_to_a = Vec::new();
            for frame in to_b.drain(..) {
                let arrival = b.clock() + 0.001;
                next_to_a.extend(b.handle(&frame, arrival).unwrap());
            }
            to_b = next_to_b;
            to_a = next_to_a;
        }
        assert!(a.is_done(), "mobile state {:?}", a.state());
        assert!(b.is_done(), "server state {:?}", b.state());
        assert_eq!(a.key(), b.key());
        assert!(!a.key().is_empty());
        assert_eq!(a.preliminary_key(), b.preliminary_key());
    }

    #[test]
    fn endpoint_idle_age_counts_and_resets() {
        let config = tiny_config();
        let s = seeds(24);
        let mut e = Endpoint::server(
            ServerAgreement::new(&s, &config, StdRng::seed_from_u64(3)).unwrap(),
        );
        assert_eq!(e.idle_ticks(), 0);
        assert_eq!(e.idle_tick(), 1);
        assert_eq!(e.idle_tick(), 2);
        e.touch();
        assert_eq!(e.idle_ticks(), 0);
    }

    #[test]
    fn drop_retry_respects_max_retries_and_bills_backoff() {
        let retry = RetryPolicy::arq();
        let mut disc = LinkDiscipline::new(retry);
        let mut attempt = 0;
        for expected_attempt in 1..=retry.max_retries {
            let backoff = disc.drop_retry(&mut attempt).expect("within budget");
            assert_eq!(attempt, expected_attempt);
            assert_eq!(backoff, retry.backoff(expected_attempt));
        }
        assert_eq!(disc.drop_retry(&mut attempt), None, "budget exhausted");
        assert_eq!(attempt, retry.max_retries);
        assert_eq!(disc.retransmits(), retry.max_retries as u64);
    }

    #[test]
    fn nak_budget_is_session_level_and_capped() {
        let retry = RetryPolicy::arq();
        let mut disc = LinkDiscipline::new(retry);
        let cap = replay_cap(&retry);
        for used in 1..=cap {
            let backoff = disc.nak_retry().expect("within budget");
            assert_eq!(disc.nak_budget_used(), used);
            // Backoff saturates at the max_retries rung.
            assert_eq!(backoff, retry.backoff(used.min(retry.max_retries)));
        }
        assert_eq!(disc.nak_retry(), None, "cap {cap} reached");
        assert_eq!(disc.retransmits(), cap as u64);
    }

    #[test]
    fn nak_is_refused_when_retries_disabled() {
        let mut disc = LinkDiscipline::new(RetryPolicy::none());
        assert!(!disc.enabled());
        assert_eq!(disc.nak_retry(), None);
        let mut attempt = 0;
        assert_eq!(disc.drop_retry(&mut attempt), None);
        assert!(!disc.should_defer(Some(MessageKind::OtA), MessageKind::OtE));
    }

    #[test]
    fn defer_applies_only_to_future_kinds_within_budget() {
        let retry = RetryPolicy::arq();
        let mut disc = LinkDiscipline::new(retry);
        // Past or expected kinds are never deferred.
        assert!(!disc.should_defer(Some(MessageKind::OtB), MessageKind::OtB));
        assert!(!disc.should_defer(Some(MessageKind::OtB), MessageKind::OtA));
        assert!(!disc.should_defer(None, MessageKind::OtE));
        // Future kinds are, up to the replay cap.
        let cap = replay_cap(&retry);
        for _ in 0..cap {
            assert!(disc.should_defer(Some(MessageKind::OtA), MessageKind::OtE));
        }
        assert!(!disc.should_defer(Some(MessageKind::OtA), MessageKind::OtE));
    }
}
