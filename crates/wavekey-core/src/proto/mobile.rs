//! The mobile device's half of the key agreement, as a sans-IO state
//! machine.
//!
//! Protocol role (Fig. 4): the mobile OT-*sends* its sequence pairs
//! `x_i` and OT-*receives* the server's `y_i` (selected by its own seed
//! `S_M`), assembles the preliminary key `K_M`, commits to it with the
//! code-offset challenge, and verifies the server's HMAC response.
//!
//! ```text
//! Init ──start()──▶ OtRound(0) ──M_A──▶ OtRound(1) ──M_B──▶ OtRound(2)
//!   ──M_E──▶ Reconcile ──(commit)──▶ Confirm ──Response──▶ Done/Failed
//! ```

use super::{ot_err, DeadlineBudgets, Frame, PartyCore, StartPending, State};
use crate::agreement::{
    finalize_key, payload_pairs, random_pairs, AgreementConfig, AgreementError,
    AgreementStages, ECC_BLOCK, NONCE_LEN,
};
use crate::bits::{interleave, pack_bits, unpack_bits};
use crate::channel::MessageKind;
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Instant;
use wavekey_crypto::batch::{BatchResults, ModexpBatch};
use wavekey_crypto::ecc::{Bch, CodeOffset};
use wavekey_crypto::hmac::{hmac_sha256, mac_eq};
use wavekey_crypto::ot::{OtReceiver, OtSender};
use wavekey_crypto::rounds;
use wavekey_obs::EventScope;

/// The mobile party's protocol state machine.
#[derive(Debug)]
pub struct MobileAgreement {
    core: PartyCore,
    seed: Vec<bool>,
    l_b: usize,
    x_pairs: Vec<(Vec<bool>, Vec<bool>)>,
    sender: Option<OtSender>,
    receiver: Option<OtReceiver>,
    k_m: Vec<bool>,
    nonce: [u8; NONCE_LEN],
    key: Vec<u8>,
    key_bits: Vec<bool>,
    ma_prep: f64,
    mb_prep: f64,
    /// Replies already emitted, per consumed message kind. Only populated
    /// when the retry policy is enabled: duplicate frames are re-answered
    /// from this cache without touching the RNG or the state.
    history: Vec<(MessageKind, Vec<Frame>)>,
    replays: u32,
}

impl MobileAgreement {
    /// Creates a machine over the mobile's key-seed `S_M` with the
    /// paper's deadline model (`M_{A,R}` budgeted at `2 + τ`).
    ///
    /// # Errors
    ///
    /// [`AgreementError::BadSeeds`] for an empty seed,
    /// [`AgreementError::Config`] for an invalid configuration.
    pub fn new(
        seed: &[bool],
        config: &AgreementConfig,
        rng: StdRng,
    ) -> Result<MobileAgreement, AgreementError> {
        MobileAgreement::with_budgets(seed, config, rng, DeadlineBudgets::mobile_paper(config))
    }

    /// [`MobileAgreement::new`] with caller-chosen deadline budgets.
    ///
    /// # Errors
    ///
    /// See [`MobileAgreement::new`].
    pub fn with_budgets(
        seed: &[bool],
        config: &AgreementConfig,
        rng: StdRng,
        budgets: DeadlineBudgets,
    ) -> Result<MobileAgreement, AgreementError> {
        if seed.is_empty() {
            return Err(AgreementError::BadSeeds);
        }
        let core = PartyCore::new(config, budgets, rng)?;
        let l_b = config.key_len_bits.div_ceil(2 * seed.len());
        Ok(MobileAgreement {
            core,
            seed: seed.to_vec(),
            l_b,
            x_pairs: Vec::new(),
            sender: None,
            receiver: None,
            k_m: Vec::new(),
            nonce: [0u8; NONCE_LEN],
            key: Vec::new(),
            key_bits: Vec::new(),
            ma_prep: 0.0,
            mb_prep: 0.0,
            history: Vec::new(),
            replays: 0,
        })
    }

    /// Binds a causal [`EventScope`]: every state transition from here on
    /// emits a timeline event under this scope's session id. Disabled
    /// scopes (the default) keep transitions allocation-free.
    pub fn bind_events(&mut self, scope: EventScope) {
        self.core.events = scope;
    }

    /// Generates the sequence pairs and the batched OT first message
    /// `M_{A,M}`; transitions `Init → OtRound(0)`.
    ///
    /// # Errors
    ///
    /// [`AgreementError::Wire`] if called in any state but `Init`.
    pub fn start(&mut self) -> Result<Frame, AgreementError> {
        if self.core.state != State::Init {
            return Err(AgreementError::Wire(format!(
                "start() in state {:?}",
                self.core.state
            )));
        }
        let t = Instant::now();
        self.x_pairs = random_pairs(self.seed.len(), self.l_b, &mut self.core.rng);
        let round_a = if self.core.config.batched_crypto {
            rounds::sender_round_a_batched
        } else {
            rounds::sender_round_a
        };
        let (sender, ma) = round_a(
            self.core.group.get(),
            payload_pairs(&self.x_pairs),
            &mut self.core.rng,
        );
        let d = self.core.spend(t);
        self.ma_prep = d;
        self.core.stages.ot_round_a += d;
        self.sender = Some(sender);
        self.core.transition(State::OtRound(0));
        Ok(Frame::new(MessageKind::OtA, ma))
    }

    /// Enqueue half of [`MobileAgreement::start`] for cross-session
    /// batching: samples pairs and exponents with the identical RNG
    /// consumption, pushes the `g^{a_i}` jobs onto the fleet-wide
    /// `batch`, and returns a pending handle for
    /// [`MobileAgreement::start_commit`].
    ///
    /// # Errors
    ///
    /// [`AgreementError::Wire`] outside `Init`; [`AgreementError::Config`]
    /// when the machine owns a private (tiny test) group — only
    /// process-shared groups can outlive the batch.
    pub fn start_enqueue(
        &mut self,
        batch: &mut ModexpBatch<'static>,
    ) -> Result<StartPending, AgreementError> {
        if self.core.state != State::Init {
            return Err(AgreementError::Wire(format!(
                "start_enqueue() in state {:?}",
                self.core.state
            )));
        }
        let group = self.core.group.shared().ok_or_else(|| {
            AgreementError::Config("cross-session batching needs a shared group".into())
        })?;
        let t = Instant::now();
        self.x_pairs = random_pairs(self.seed.len(), self.l_b, &mut self.core.rng);
        let pending =
            OtSender::start_enqueue(group, payload_pairs(&self.x_pairs), &mut self.core.rng, batch);
        Ok(StartPending { pending, enqueue_s: t.elapsed().as_secs_f64() })
    }

    /// Commit half of [`MobileAgreement::start`]: redeems the executed
    /// batch into the sender state and `M_{A,M}`. `shared_s` is this
    /// session's amortized share of the batch execution wall time, which
    /// is billed to the logical clock exactly like own compute.
    ///
    /// # Errors
    ///
    /// [`AgreementError::Wire`] outside `Init`.
    pub fn start_commit(
        &mut self,
        pending: StartPending,
        results: &BatchResults,
        shared_s: f64,
    ) -> Result<Frame, AgreementError> {
        if self.core.state != State::Init {
            return Err(AgreementError::Wire(format!(
                "start_commit() in state {:?}",
                self.core.state
            )));
        }
        let t = Instant::now();
        let (sender, ma) = pending.pending.commit(results);
        let bytes = ma.encode(self.core.group.get());
        let d = pending.enqueue_s + shared_s + t.elapsed().as_secs_f64();
        self.core.spend_shared(d);
        self.ma_prep = d;
        self.core.stages.ot_round_a += d;
        self.sender = Some(sender);
        self.core.transition(State::OtRound(0));
        Ok(Frame::new(MessageKind::OtA, bytes))
    }

    /// Advances the machine with one received frame.
    ///
    /// `arrival` is the frame's logical arrival time in protocol seconds;
    /// deadline budgets are enforced against it before any processing.
    ///
    /// With retransmission enabled, a duplicate of an already-consumed
    /// message kind is answered idempotently: the cached reply frames are
    /// re-emitted without consuming RNG or advancing state (bounded; see
    /// [`super::replay_cap`]).
    ///
    /// # Errors
    ///
    /// The full [`AgreementError`] taxonomy; any error also moves the
    /// machine to [`State::Failed`].
    pub fn handle(
        &mut self,
        frame: &Frame,
        arrival: f64,
    ) -> Result<Vec<Frame>, AgreementError> {
        if let Some(reply) = self.replay(frame.kind) {
            return Ok(reply);
        }
        let result = self.dispatch(frame, arrival);
        match &result {
            Ok(frames) if self.core.config.retry.enabled() => {
                self.history.push((frame.kind, frames.clone()));
            }
            Err(_) => self.core.transition(State::Failed),
            _ => {}
        }
        result
    }

    /// The duplicate-idempotency path; `None` means dispatch normally.
    fn replay(&mut self, kind: MessageKind) -> Option<Vec<Frame>> {
        if !self.core.config.retry.enabled() || self.core.state == State::Failed {
            return None;
        }
        let reply = self.history.iter().find(|(k, _)| *k == kind)?.1.clone();
        if self.replays >= super::replay_cap(&self.core.config.retry) {
            return None;
        }
        self.replays += 1;
        Some(reply)
    }

    fn dispatch(
        &mut self,
        frame: &Frame,
        arrival: f64,
    ) -> Result<Vec<Frame>, AgreementError> {
        match self.core.state {
            State::OtRound(0) => {
                self.core.expect(frame, MessageKind::OtA)?;
                Ok(vec![self.respond_ot_a(frame, arrival)?])
            }
            State::OtRound(1) => {
                self.core.expect(frame, MessageKind::OtB)?;
                Ok(vec![self.encrypt_ot_e(frame, arrival)?])
            }
            State::OtRound(2) => {
                self.core.expect(frame, MessageKind::OtE)?;
                self.absorb_ot_e(frame, arrival)?;
                Ok(vec![self.emit_challenge()?])
            }
            State::Confirm => {
                self.core.expect(frame, MessageKind::Response)?;
                self.confirm(frame, arrival)?;
                Ok(vec![])
            }
            state => Err(AgreementError::Wire(format!(
                "mobile cannot accept {:?} in state {state:?}",
                frame.kind
            ))),
        }
    }

    /// `M_{A,R}` received: answer with the blinded choices `M_{B,M}`.
    fn respond_ot_a(&mut self, frame: &Frame, arrival: f64) -> Result<Frame, AgreementError> {
        self.core.arrive(MessageKind::OtA, arrival)?;
        let t = Instant::now();
        let round_b = if self.core.config.batched_crypto {
            rounds::receiver_round_b_batched
        } else {
            rounds::receiver_round_b
        };
        let (receiver, mb) = round_b(
            self.core.group.get(),
            &self.seed,
            &frame.payload,
            &mut self.core.rng,
        )
        .map_err(ot_err)?;
        let d = self.core.spend(t);
        self.mb_prep = d;
        self.core.stages.ot_round_b += d;
        self.receiver = Some(receiver);
        self.core.transition(State::OtRound(1));
        Ok(Frame::new(MessageKind::OtB, mb))
    }

    /// `M_{B,R}` received: encrypt the ciphertext batch `M_{E,M}`.
    fn encrypt_ot_e(&mut self, frame: &Frame, arrival: f64) -> Result<Frame, AgreementError> {
        self.core.arrive(MessageKind::OtB, arrival)?;
        let sender = self.sender.as_ref().expect("sender set in start()");
        let t = Instant::now();
        let round_e = if self.core.config.batched_crypto {
            rounds::sender_round_e_batched
        } else {
            rounds::sender_round_e
        };
        let me = round_e(sender, self.core.group.get(), &frame.payload).map_err(ot_err)?;
        let d = self.core.spend(t);
        self.core.stages.ot_round_e += d;
        self.core.transition(State::OtRound(2));
        Ok(Frame::new(MessageKind::OtE, me))
    }

    /// `M_{E,R}` received: decrypt the obliviously received sequences and
    /// assemble the preliminary key `K_M`; transitions to `Reconcile`.
    ///
    /// Split from [`MobileAgreement::emit_challenge`] so the lockstep
    /// driver can schedule the (RNG-consuming) commit *after* the
    /// server's prelim-key assembly, exactly as the monolith did.
    pub(crate) fn absorb_ot_e(
        &mut self,
        frame: &Frame,
        arrival: f64,
    ) -> Result<(), AgreementError> {
        self.core.arrive(MessageKind::OtE, arrival)?;
        let receiver = self.receiver.as_ref().expect("receiver set in respond_ot_a");
        let t = Instant::now();
        let finish = if self.core.config.batched_crypto {
            rounds::receiver_finish_batched
        } else {
            rounds::receiver_finish
        };
        let y_received =
            finish(receiver, self.core.group.get(), &frame.payload).map_err(ot_err)?;
        // K_M = x₁^{sm₁} ‖ y₁^{sm₁} ‖ … (own pair selected by own seed,
        // plus the sequence obliviously received — also seed-selected).
        let mut k_m: Vec<bool> = Vec::with_capacity(2 * self.seed.len() * self.l_b);
        for i in 0..self.seed.len() {
            let own = if self.seed[i] { &self.x_pairs[i].1 } else { &self.x_pairs[i].0 };
            k_m.extend_from_slice(own);
            k_m.extend(unpack_bits(&y_received[i], self.l_b));
        }
        let d = self.core.spend(t);
        self.core.stages.prelim_key += d;
        self.k_m = k_m;
        self.core.transition(State::Reconcile);
        Ok(())
    }

    /// Commits to `K_M`: builds `Challenge = ECC(K_M) ‖ N` and
    /// transitions to `Confirm`.
    pub(crate) fn emit_challenge(&mut self) -> Result<Frame, AgreementError> {
        debug_assert_eq!(self.core.state, State::Reconcile);
        let k_len = 2 * self.seed.len() * self.l_b;
        let blocks = k_len.div_ceil(ECC_BLOCK);
        let bch = Bch::new(self.core.config.bch_t)
            .map_err(|e| AgreementError::Config(e.to_string()))?;
        let co = CodeOffset::new(bch);
        let t = Instant::now();
        let k_m_inter = interleave(&self.k_m, blocks, ECC_BLOCK);
        let helper = co.commit(&k_m_inter, &mut self.core.rng);
        let nonce: [u8; NONCE_LEN] = {
            let mut n = [0u8; NONCE_LEN];
            self.core.rng.fill(&mut n);
            n
        };
        let mut challenge = pack_bits(&helper);
        challenge.extend_from_slice(&nonce);
        let d = self.core.spend(t);
        self.core.stages.ecc_reconcile += d;
        self.nonce = nonce;
        self.core.transition(State::Confirm);
        Ok(Frame::new(MessageKind::Challenge, challenge))
    }

    /// `Response` received: finalize the key and verify the HMAC.
    fn confirm(&mut self, frame: &Frame, arrival: f64) -> Result<(), AgreementError> {
        self.core.arrive(MessageKind::Response, arrival)?;
        let t = Instant::now();
        let key = finalize_key(&self.k_m, &self.core.config, &self.nonce);
        let key_bits = unpack_bits(&key, self.core.config.key_len_bits);
        let expected = hmac_sha256(&key, &self.nonce);
        let ok = mac_eq(&expected, &frame.payload);
        let d = self.core.spend(t);
        self.core.stages.hmac_confirm += d;
        if !ok {
            return Err(AgreementError::ConfirmationFailed);
        }
        self.key = key;
        self.key_bits = key_bits;
        self.core.transition(State::Done);
        Ok(())
    }

    /// The current protocol state.
    pub fn state(&self) -> State {
        self.core.state
    }

    /// The logical clock (seconds since gesture start).
    pub fn clock(&self) -> f64 {
        self.core.clock
    }

    /// Advances the logical clock by `seconds` without booking compute.
    /// Drivers bill retransmission backoff here so retried messages
    /// depart later and deadline budgets stay honest.
    pub fn charge(&mut self, seconds: f64) {
        self.core.charge(seconds);
    }

    /// The message kind this machine is currently waiting for (`None`
    /// when it is not at rest waiting — `Init`, `Done`, `Failed`, or the
    /// transient `Reconcile`). Schedulers use this to buffer reordered
    /// frames instead of feeding a future kind to the machine early.
    pub fn expected_kind(&self) -> Option<MessageKind> {
        match self.core.state {
            State::OtRound(0) => Some(MessageKind::OtA),
            State::OtRound(1) => Some(MessageKind::OtB),
            State::OtRound(2) => Some(MessageKind::OtE),
            State::Confirm => Some(MessageKind::Response),
            _ => None,
        }
    }

    /// Duplicate frames answered from the reply cache so far.
    pub fn replays(&self) -> u32 {
        self.replays
    }

    /// Total compute seconds spent so far.
    pub fn compute(&self) -> f64 {
        self.core.compute
    }

    /// This party's share of the per-stage timings.
    pub fn stages(&self) -> &AgreementStages {
        &self.core.stages
    }

    /// Latest arrival time of any budgeted message.
    pub fn deadline_consumed(&self) -> f64 {
        self.core.deadline_consumed
    }

    /// Preparation time of `M_{A,M}` (the τ study, §VI-C-3).
    pub fn ma_prep(&self) -> f64 {
        self.ma_prep
    }

    /// Preparation time of `M_{B,M}`.
    pub fn mb_prep(&self) -> f64 {
        self.mb_prep
    }

    /// The preliminary key `K_M` (empty before the OT completes).
    pub fn preliminary_key(&self) -> &[bool] {
        &self.k_m
    }

    /// The established key bytes (empty unless [`State::Done`]).
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// The established key as bits (empty unless [`State::Done`]).
    pub fn key_bits(&self) -> &[bool] {
        &self.key_bits
    }

    /// The machine's RNG — the lockstep driver copies its end state back
    /// to the caller so chained runs draw the same stream the monolith
    /// would have.
    pub fn rng(&self) -> &StdRng {
        &self.core.rng
    }
}
