//! The in-process lockstep driver: replays the classic synchronous
//! message exchange over the two sans-IO machines.
//!
//! This *is* the implementation of [`crate::agreement::run_agreement`]:
//! the monolithic exchange it replaced lives on as the delivery schedule
//! below, with all protocol logic moved into [`MobileAgreement`] /
//! [`ServerAgreement`]. The schedule is chosen so that the per-party RNG
//! draw order, clock arithmetic, and error precedence are exactly the
//! monolith's — single-session outcomes stay bit-identical (see
//! `tests/differential_agreement.rs` and DESIGN.md §9).
//!
//! Concretely, per round the mobile-bound delivery happens first when the
//! mobile acts first in the monolith (`M_A`: the mobile's `2 + τ` check
//! and its RNG-consuming response precede the server's) and second when
//! the server acts first (`M_B`: the server's deadline check precedes
//! both decodes). The mobile's challenge commit — the only RNG draw after
//! the OT — is explicitly scheduled *after* the server absorbs `M_E`, via
//! the [`MobileAgreement::absorb_ot_e`] / `emit_challenge` split.

use super::{Frame, MobileAgreement, ServerAgreement};
use crate::agreement::{
    AgreementConfig, AgreementError, AgreementOutcome, AgreementStages, RetryPolicy,
};
use crate::bits::hamming_distance;
use crate::channel::{Adversary, AdversaryAction, Direction};
use rand::rngs::StdRng;
use wavekey_obs::EventScope;

/// Runs the full key agreement between two machines in lockstep.
///
/// RNGs are threaded through the machines and their end state is copied
/// back to the caller on *every* path, so callers chaining runs off one
/// RNG observe the same stream the monolithic implementation produced.
///
/// # Errors
///
/// See [`AgreementError`]; identical taxonomy and precedence as the
/// monolith this replaced.
pub fn drive_lockstep(
    s_m: &[bool],
    s_r: &[bool],
    config: &AgreementConfig,
    rng_mobile: &mut StdRng,
    rng_server: &mut StdRng,
    adversary: &mut dyn Adversary,
) -> Result<AgreementOutcome, AgreementError> {
    drive_lockstep_observed(
        s_m,
        s_r,
        config,
        rng_mobile,
        rng_server,
        adversary,
        &EventScope::disabled(),
    )
}

/// [`drive_lockstep`] with causal timeline emission: both machines bind
/// actor-tagged views of `events` ("mobile" / "server" sharing one
/// per-session sequence), so every state transition lands in the scope's
/// event log. A disabled scope makes this exactly [`drive_lockstep`].
///
/// # Errors
///
/// See [`drive_lockstep`].
#[allow(clippy::too_many_arguments)]
pub fn drive_lockstep_observed(
    s_m: &[bool],
    s_r: &[bool],
    config: &AgreementConfig,
    rng_mobile: &mut StdRng,
    rng_server: &mut StdRng,
    adversary: &mut dyn Adversary,
    events: &EventScope,
) -> Result<AgreementOutcome, AgreementError> {
    if s_m.is_empty() || s_m.len() != s_r.len() {
        return Err(AgreementError::BadSeeds);
    }
    if config.key_len_bits == 0 {
        return Err(AgreementError::Config("zero key length".into()));
    }
    let mut mobile = MobileAgreement::new(s_m, config, rng_mobile.clone())?;
    let mut server = ServerAgreement::new(s_r, config, rng_server.clone())?;
    if events.is_enabled() {
        mobile.bind_events(events.with_actor("mobile"));
        server.bind_events(events.with_actor("server"));
    }
    let result = exchange(&mut mobile, &mut server, config, adversary);
    *rng_mobile = mobile.rng().clone();
    *rng_server = server.rng().clone();
    result.map(|preliminary_mismatch_bits| combine(&mobile, &server, preliminary_mismatch_bits))
}

/// The lockstep delivery schedule; returns the preliminary-mismatch
/// diagnostic on success.
fn exchange(
    mobile: &mut MobileAgreement,
    server: &mut ServerAgreement,
    config: &AgreementConfig,
    adversary: &mut dyn Adversary,
) -> Result<usize, AgreementError> {
    let delay = config.channel_delay;
    let retry = &config.retry;

    // --- M_A both ways; the mobile's deadline check and response first.
    let ma_m = mobile.start()?;
    let ma_r = server.start()?;
    let (ma_m, ma_m_arrival) =
        transmit(adversary, Direction::MobileToServer, ma_m, mobile.clock(), delay, retry)?;
    let (ma_r, ma_r_arrival) =
        transmit(adversary, Direction::ServerToMobile, ma_r, server.clock(), delay, retry)?;
    let mb_m = only(mobile.handle(&ma_r, ma_r_arrival)?);
    let mb_r = only(server.handle(&ma_m, ma_m_arrival)?);

    // --- M_B both ways; the server's deadline check precedes all else.
    let (mb_m, mb_m_arrival) =
        transmit(adversary, Direction::MobileToServer, mb_m, mobile.clock(), delay, retry)?;
    let (mb_r, mb_r_arrival) =
        transmit(adversary, Direction::ServerToMobile, mb_r, server.clock(), delay, retry)?;
    let me_r = only(server.handle(&mb_m, mb_m_arrival)?);
    let me_m = only(mobile.handle(&mb_r, mb_r_arrival)?);

    // --- M_E both ways; both sides assemble preliminary keys, then the
    // mobile commits (its only post-OT RNG draws).
    let (me_m, me_m_arrival) =
        transmit(adversary, Direction::MobileToServer, me_m, mobile.clock(), delay, retry)?;
    let (me_r, me_r_arrival) =
        transmit(adversary, Direction::ServerToMobile, me_r, server.clock(), delay, retry)?;
    mobile.absorb_ot_e(&me_r, me_r_arrival)?;
    server.handle(&me_m, me_m_arrival)?;
    let preliminary_mismatch_bits =
        hamming_distance(mobile.preliminary_key(), server.preliminary_key());
    let challenge = mobile.emit_challenge()?;

    // --- Challenge / Response.
    let (challenge, challenge_arrival) =
        transmit(adversary, Direction::MobileToServer, challenge, mobile.clock(), delay, retry)?;
    let response = only(server.handle(&challenge, challenge_arrival)?);
    let (response, response_arrival) =
        transmit(adversary, Direction::ServerToMobile, response, server.clock(), delay, retry)?;
    mobile.handle(&response, response_arrival)?;

    Ok(preliminary_mismatch_bits)
}

/// Assembles the combined outcome from two finished machines.
pub(crate) fn combine(
    mobile: &MobileAgreement,
    server: &ServerAgreement,
    preliminary_mismatch_bits: usize,
) -> AgreementOutcome {
    let m = mobile.stages();
    let s = server.stages();
    let stages = AgreementStages {
        ot_round_a: m.ot_round_a + s.ot_round_a,
        ot_round_b: m.ot_round_b + s.ot_round_b,
        ot_round_e: m.ot_round_e + s.ot_round_e,
        prelim_key: m.prelim_key + s.prelim_key,
        ecc_reconcile: m.ecc_reconcile + s.ecc_reconcile,
        hmac_confirm: m.hmac_confirm + s.hmac_confirm,
        deadline_s: m.deadline_s,
        deadline_consumed_s: mobile.deadline_consumed().max(server.deadline_consumed()),
    };
    AgreementOutcome {
        key: mobile.key().to_vec(),
        key_bits: mobile.key_bits().to_vec(),
        mobile_compute: mobile.compute(),
        server_compute: server.compute(),
        elapsed: mobile.clock().max(server.clock()),
        preliminary_mismatch_bits,
        ma_prep: mobile.ma_prep(),
        mb_prep: mobile.mb_prep(),
        stages,
    }
}

/// Passes a frame through the adversary and the channel; returns the
/// (possibly modified) frame and its arrival time.
///
/// A dropped frame is retransmitted up to `retry.max_retries` times; each
/// retransmission charges the policy's backoff onto the departure time
/// (the sender's logical clock view), so retried deadline-critical
/// messages arrive later and the `2 + τ` fence stays honest. Every
/// retransmitted copy starts from the sender's clean frame and passes
/// through the adversary again. In this strictly alternating lockstep
/// exchange at most one frame is ever in flight, so `Duplicate` and
/// `Reorder` degenerate to `Forward` (the concurrent
/// [`crate::SessionManager`] scheduler gives them real semantics).
pub(crate) fn transmit(
    adversary: &mut dyn Adversary,
    direction: Direction,
    frame: Frame,
    send_time: f64,
    nominal_delay: f64,
    retry: &RetryPolicy,
) -> Result<(Frame, f64), AgreementError> {
    // Capture the kind before interception: the error should name the
    // protocol message attacked, not whatever the adversary left behind.
    let kind = frame.kind;
    let mut depart = send_time;
    let mut attempt = 0u32;
    loop {
        let mut copy = frame.clone();
        match adversary.intercept(direction, &mut copy) {
            AdversaryAction::Forward
            | AdversaryAction::Duplicate
            | AdversaryAction::Reorder => return Ok((copy, depart + nominal_delay)),
            AdversaryAction::Delay(extra) => return Ok((copy, depart + nominal_delay + extra)),
            AdversaryAction::Drop => {
                if attempt >= retry.max_retries {
                    return Err(AgreementError::Dropped(kind));
                }
                attempt += 1;
                depart += retry.backoff(attempt);
            }
        }
    }
}

/// Unwraps the single frame a lockstep `handle` call emits.
fn only(mut frames: Vec<Frame>) -> Frame {
    debug_assert_eq!(frames.len(), 1, "lockstep handle emits exactly one frame");
    frames.pop().expect("one frame")
}
