//! The RFID server's half of the key agreement, as a sans-IO state
//! machine.
//!
//! Protocol role (Fig. 4): the server OT-*sends* its sequence pairs
//! `y_i` and OT-*receives* the mobile's `x_i` (selected by its own seed
//! `S_R`), assembles the preliminary key `K_R`, snaps it onto `K_M` via
//! the code-offset challenge, and answers with the HMAC response.
//!
//! ```text
//! Init ──start()──▶ OtRound(0) ──M_A──▶ OtRound(1) ──M_B──▶ OtRound(2)
//!   ──M_E──▶ Reconcile ──Challenge──▶ Done
//! ```

use super::{ot_err, DeadlineBudgets, Frame, PartyCore, StartPending, State};
use crate::agreement::{
    finalize_key, payload_pairs, random_pairs, AgreementConfig, AgreementError,
    AgreementStages, ECC_BLOCK, NONCE_LEN,
};
use crate::bits::{deinterleave, interleave, unpack_bits};
use crate::channel::MessageKind;
use rand::rngs::StdRng;
use std::time::Instant;
use wavekey_crypto::batch::{BatchResults, ModexpBatch};
use wavekey_crypto::ecc::{Bch, CodeOffset};
use wavekey_crypto::hmac::hmac_sha256;
use wavekey_crypto::ot::{OtReceiver, OtSender};
use wavekey_crypto::rounds;
use wavekey_obs::EventScope;

/// The server party's protocol state machine.
#[derive(Debug)]
pub struct ServerAgreement {
    core: PartyCore,
    seed: Vec<bool>,
    l_b: usize,
    y_pairs: Vec<(Vec<bool>, Vec<bool>)>,
    sender: Option<OtSender>,
    receiver: Option<OtReceiver>,
    k_r: Vec<bool>,
    key: Vec<u8>,
    /// Replies already emitted, per consumed message kind. Only populated
    /// when the retry policy is enabled: duplicate frames are re-answered
    /// from this cache without touching the RNG or the state.
    history: Vec<(MessageKind, Vec<Frame>)>,
    replays: u32,
}

impl ServerAgreement {
    /// Creates a machine over the server's key-seed `S_R` with the
    /// paper's deadline model (`M_{B,M}` budgeted at `2 + τ`).
    ///
    /// # Errors
    ///
    /// [`AgreementError::BadSeeds`] for an empty seed,
    /// [`AgreementError::Config`] for an invalid configuration.
    pub fn new(
        seed: &[bool],
        config: &AgreementConfig,
        rng: StdRng,
    ) -> Result<ServerAgreement, AgreementError> {
        ServerAgreement::with_budgets(seed, config, rng, DeadlineBudgets::server_paper(config))
    }

    /// [`ServerAgreement::new`] with caller-chosen deadline budgets.
    ///
    /// # Errors
    ///
    /// See [`ServerAgreement::new`].
    pub fn with_budgets(
        seed: &[bool],
        config: &AgreementConfig,
        rng: StdRng,
        budgets: DeadlineBudgets,
    ) -> Result<ServerAgreement, AgreementError> {
        if seed.is_empty() {
            return Err(AgreementError::BadSeeds);
        }
        let core = PartyCore::new(config, budgets, rng)?;
        let l_b = config.key_len_bits.div_ceil(2 * seed.len());
        Ok(ServerAgreement {
            core,
            seed: seed.to_vec(),
            l_b,
            y_pairs: Vec::new(),
            sender: None,
            receiver: None,
            k_r: Vec::new(),
            key: Vec::new(),
            history: Vec::new(),
            replays: 0,
        })
    }

    /// Binds a causal [`EventScope`]: every state transition from here on
    /// emits a timeline event under this scope's session id. Disabled
    /// scopes (the default) keep transitions allocation-free.
    pub fn bind_events(&mut self, scope: EventScope) {
        self.core.events = scope;
    }

    /// Generates the sequence pairs and the batched OT first message
    /// `M_{A,R}`; transitions `Init → OtRound(0)`.
    ///
    /// # Errors
    ///
    /// [`AgreementError::Wire`] if called in any state but `Init`.
    pub fn start(&mut self) -> Result<Frame, AgreementError> {
        if self.core.state != State::Init {
            return Err(AgreementError::Wire(format!(
                "start() in state {:?}",
                self.core.state
            )));
        }
        let t = Instant::now();
        self.y_pairs = random_pairs(self.seed.len(), self.l_b, &mut self.core.rng);
        let round_a = if self.core.config.batched_crypto {
            rounds::sender_round_a_batched
        } else {
            rounds::sender_round_a
        };
        let (sender, ma) = round_a(
            self.core.group.get(),
            payload_pairs(&self.y_pairs),
            &mut self.core.rng,
        );
        let d = self.core.spend(t);
        self.core.stages.ot_round_a += d;
        self.sender = Some(sender);
        self.core.transition(State::OtRound(0));
        Ok(Frame::new(MessageKind::OtA, ma))
    }

    /// Enqueue half of [`ServerAgreement::start`] for cross-session
    /// batching — the server-side twin of
    /// [`super::MobileAgreement::start_enqueue`].
    ///
    /// # Errors
    ///
    /// [`AgreementError::Wire`] outside `Init`; [`AgreementError::Config`]
    /// when the machine owns a private (tiny test) group.
    pub fn start_enqueue(
        &mut self,
        batch: &mut ModexpBatch<'static>,
    ) -> Result<StartPending, AgreementError> {
        if self.core.state != State::Init {
            return Err(AgreementError::Wire(format!(
                "start_enqueue() in state {:?}",
                self.core.state
            )));
        }
        let group = self.core.group.shared().ok_or_else(|| {
            AgreementError::Config("cross-session batching needs a shared group".into())
        })?;
        let t = Instant::now();
        self.y_pairs = random_pairs(self.seed.len(), self.l_b, &mut self.core.rng);
        let pending =
            OtSender::start_enqueue(group, payload_pairs(&self.y_pairs), &mut self.core.rng, batch);
        Ok(StartPending { pending, enqueue_s: t.elapsed().as_secs_f64() })
    }

    /// Commit half of [`ServerAgreement::start`]: redeems the executed
    /// batch into the sender state and `M_{A,R}`; `shared_s` is this
    /// session's amortized share of the batch execution wall time.
    ///
    /// # Errors
    ///
    /// [`AgreementError::Wire`] outside `Init`.
    pub fn start_commit(
        &mut self,
        pending: StartPending,
        results: &BatchResults,
        shared_s: f64,
    ) -> Result<Frame, AgreementError> {
        if self.core.state != State::Init {
            return Err(AgreementError::Wire(format!(
                "start_commit() in state {:?}",
                self.core.state
            )));
        }
        let t = Instant::now();
        let (sender, ma) = pending.pending.commit(results);
        let bytes = ma.encode(self.core.group.get());
        let d = pending.enqueue_s + shared_s + t.elapsed().as_secs_f64();
        self.core.spend_shared(d);
        self.core.stages.ot_round_a += d;
        self.sender = Some(sender);
        self.core.transition(State::OtRound(0));
        Ok(Frame::new(MessageKind::OtA, bytes))
    }

    /// Advances the machine with one received frame.
    ///
    /// `arrival` is the frame's logical arrival time in protocol seconds;
    /// deadline budgets are enforced against it before any processing.
    ///
    /// With retransmission enabled, a duplicate of an already-consumed
    /// message kind is answered idempotently: the cached reply frames are
    /// re-emitted without consuming RNG or advancing state (bounded; see
    /// [`super::replay_cap`]).
    ///
    /// # Errors
    ///
    /// The full [`AgreementError`] taxonomy; any error also moves the
    /// machine to [`State::Failed`].
    pub fn handle(
        &mut self,
        frame: &Frame,
        arrival: f64,
    ) -> Result<Vec<Frame>, AgreementError> {
        if let Some(reply) = self.replay(frame.kind) {
            return Ok(reply);
        }
        let result = self.dispatch(frame, arrival);
        match &result {
            Ok(frames) if self.core.config.retry.enabled() => {
                self.history.push((frame.kind, frames.clone()));
            }
            Err(_) => self.core.transition(State::Failed),
            _ => {}
        }
        result
    }

    /// The duplicate-idempotency path; `None` means dispatch normally.
    fn replay(&mut self, kind: MessageKind) -> Option<Vec<Frame>> {
        if !self.core.config.retry.enabled() || self.core.state == State::Failed {
            return None;
        }
        let reply = self.history.iter().find(|(k, _)| *k == kind)?.1.clone();
        if self.replays >= super::replay_cap(&self.core.config.retry) {
            return None;
        }
        self.replays += 1;
        Some(reply)
    }

    fn dispatch(
        &mut self,
        frame: &Frame,
        arrival: f64,
    ) -> Result<Vec<Frame>, AgreementError> {
        match self.core.state {
            State::OtRound(0) => {
                self.core.expect(frame, MessageKind::OtA)?;
                Ok(vec![self.respond_ot_a(frame, arrival)?])
            }
            State::OtRound(1) => {
                self.core.expect(frame, MessageKind::OtB)?;
                Ok(vec![self.encrypt_ot_e(frame, arrival)?])
            }
            State::OtRound(2) => {
                self.core.expect(frame, MessageKind::OtE)?;
                self.absorb_ot_e(frame, arrival)?;
                Ok(vec![])
            }
            State::Reconcile => {
                self.core.expect(frame, MessageKind::Challenge)?;
                Ok(vec![self.reconcile(frame, arrival)?])
            }
            state => Err(AgreementError::Wire(format!(
                "server cannot accept {:?} in state {state:?}",
                frame.kind
            ))),
        }
    }

    /// `M_{A,M}` received: answer with the blinded choices `M_{B,R}`.
    fn respond_ot_a(&mut self, frame: &Frame, arrival: f64) -> Result<Frame, AgreementError> {
        self.core.arrive(MessageKind::OtA, arrival)?;
        let t = Instant::now();
        let round_b = if self.core.config.batched_crypto {
            rounds::receiver_round_b_batched
        } else {
            rounds::receiver_round_b
        };
        let (receiver, mb) = round_b(
            self.core.group.get(),
            &self.seed,
            &frame.payload,
            &mut self.core.rng,
        )
        .map_err(ot_err)?;
        let d = self.core.spend(t);
        self.core.stages.ot_round_b += d;
        self.receiver = Some(receiver);
        self.core.transition(State::OtRound(1));
        Ok(Frame::new(MessageKind::OtB, mb))
    }

    /// `M_{B,M}` received (the server's `2 + τ` fence): encrypt the
    /// ciphertext batch `M_{E,R}`.
    fn encrypt_ot_e(&mut self, frame: &Frame, arrival: f64) -> Result<Frame, AgreementError> {
        self.core.arrive(MessageKind::OtB, arrival)?;
        let sender = self.sender.as_ref().expect("sender set in start()");
        let t = Instant::now();
        let round_e = if self.core.config.batched_crypto {
            rounds::sender_round_e_batched
        } else {
            rounds::sender_round_e
        };
        let me = round_e(sender, self.core.group.get(), &frame.payload).map_err(ot_err)?;
        let d = self.core.spend(t);
        self.core.stages.ot_round_e += d;
        self.core.transition(State::OtRound(2));
        Ok(Frame::new(MessageKind::OtE, me))
    }

    /// `M_{E,M}` received: decrypt the obliviously received sequences and
    /// assemble the preliminary key `K_R`; transitions to `Reconcile`.
    fn absorb_ot_e(&mut self, frame: &Frame, arrival: f64) -> Result<(), AgreementError> {
        self.core.arrive(MessageKind::OtE, arrival)?;
        let receiver = self.receiver.as_ref().expect("receiver set in respond_ot_a");
        let t = Instant::now();
        let finish = if self.core.config.batched_crypto {
            rounds::receiver_finish_batched
        } else {
            rounds::receiver_finish
        };
        let x_received =
            finish(receiver, self.core.group.get(), &frame.payload).map_err(ot_err)?;
        // K_R = x₁^{sr₁} ‖ y₁^{sr₁} ‖ … (the sequence obliviously
        // received, plus the own pair — both selected by own seed).
        let mut k_r: Vec<bool> = Vec::with_capacity(2 * self.seed.len() * self.l_b);
        for i in 0..self.seed.len() {
            k_r.extend(unpack_bits(&x_received[i], self.l_b));
            let own = if self.seed[i] { &self.y_pairs[i].1 } else { &self.y_pairs[i].0 };
            k_r.extend_from_slice(own);
        }
        let d = self.core.spend(t);
        self.core.stages.prelim_key += d;
        self.k_r = k_r;
        self.core.transition(State::Reconcile);
        Ok(())
    }

    /// `Challenge` received: snap `K_R` onto `K_M` with the code-offset
    /// helper, finalize the key, and answer with the HMAC `Response`.
    fn reconcile(&mut self, frame: &Frame, arrival: f64) -> Result<Frame, AgreementError> {
        self.core.arrive(MessageKind::Challenge, arrival)?;
        let k_len = 2 * self.seed.len() * self.l_b;
        let blocks = k_len.div_ceil(ECC_BLOCK);
        let helper_bytes_len = (blocks * ECC_BLOCK).div_ceil(8);
        if frame.payload.len() != helper_bytes_len + NONCE_LEN {
            return Err(AgreementError::ReconciliationFailed);
        }
        let bch = Bch::new(self.core.config.bch_t)
            .map_err(|e| AgreementError::Config(e.to_string()))?;
        let co = CodeOffset::new(bch);
        let t = Instant::now();
        let helper_rx = unpack_bits(&frame.payload[..helper_bytes_len], blocks * ECC_BLOCK);
        let nonce_rx = &frame.payload[helper_bytes_len..];
        let k_r_inter = interleave(&self.k_r, blocks, ECC_BLOCK);
        let Some(recovered_inter) = co.reconcile(&k_r_inter, &helper_rx, blocks * ECC_BLOCK)
        else {
            return Err(AgreementError::ReconciliationFailed);
        };
        let k_server = deinterleave(&recovered_inter, blocks, ECC_BLOCK, k_len);
        let key = finalize_key(&k_server, &self.core.config, nonce_rx);
        let response = hmac_sha256(&key, nonce_rx).to_vec();
        let d = self.core.spend(t);
        self.core.stages.ecc_reconcile += d;
        self.key = key;
        self.core.transition(State::Done);
        Ok(Frame::new(MessageKind::Response, response))
    }

    /// The current protocol state.
    pub fn state(&self) -> State {
        self.core.state
    }

    /// The logical clock (seconds since gesture start).
    pub fn clock(&self) -> f64 {
        self.core.clock
    }

    /// Advances the logical clock by `seconds` without booking compute.
    /// Drivers bill retransmission backoff here so retried messages
    /// depart later and deadline budgets stay honest.
    pub fn charge(&mut self, seconds: f64) {
        self.core.charge(seconds);
    }

    /// The message kind this machine is currently waiting for (`None`
    /// when it is not at rest waiting — `Init`, `Done`, or `Failed`).
    /// Schedulers use this to buffer reordered frames instead of feeding
    /// a future kind to the machine early.
    pub fn expected_kind(&self) -> Option<MessageKind> {
        match self.core.state {
            State::OtRound(0) => Some(MessageKind::OtA),
            State::OtRound(1) => Some(MessageKind::OtB),
            State::OtRound(2) => Some(MessageKind::OtE),
            State::Reconcile => Some(MessageKind::Challenge),
            _ => None,
        }
    }

    /// Duplicate frames answered from the reply cache so far.
    pub fn replays(&self) -> u32 {
        self.replays
    }

    /// Total compute seconds spent so far.
    pub fn compute(&self) -> f64 {
        self.core.compute
    }

    /// This party's share of the per-stage timings.
    pub fn stages(&self) -> &AgreementStages {
        &self.core.stages
    }

    /// Latest arrival time of any budgeted message.
    pub fn deadline_consumed(&self) -> f64 {
        self.core.deadline_consumed
    }

    /// The preliminary key `K_R` (empty before the OT completes).
    pub fn preliminary_key(&self) -> &[bool] {
        &self.k_r
    }

    /// The reconciled key bytes (empty unless [`State::Done`]).
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// The machine's RNG — the lockstep driver copies its end state back
    /// to the caller so chained runs draw the same stream the monolith
    /// would have.
    pub fn rng(&self) -> &StdRng {
        &self.core.rng
    }
}
