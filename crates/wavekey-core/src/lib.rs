//! The WaveKey scheme: cross-modal key establishment between a mobile
//! device and an RFID server.
//!
//! This crate is the paper's primary contribution, assembled from the
//! substrate crates:
//!
//! * [`config`] — every hyper-parameter of the scheme in one place
//!   (`l_f = 12`, `N_b = 9`, `τ = 120 ms`, `λ = 0.4`, …).
//! * [`model`] — the IMU-En / RF-En / De architectures of Fig. 5 and the
//!   tensor conversions from the processed sensor matrices.
//! * [`dataset`] — §IV-E-1 dataset generation: volunteers × devices ×
//!   gestures × overlapping two-second windows.
//! * [`training`] — joint training with the Eq. (3) loss and the
//!   variance-based `l_f` pruning study of §VI-C-1.
//! * [`seed`] — key-seed generation (§IV-C): encoder → equiprobable
//!   quantization → Gray coding.
//! * [`quantize`] — int8-encoder calibration gated on key-seed
//!   equivalence: quantized encoders are only used when they produce
//!   bit-identical seeds on the reference corpus, else the session
//!   falls back to f32 per model.
//! * [`agreement`] — the bidirectional-OT key agreement of Fig. 4 with
//!   the `2 + τ` arrival deadline, code-offset reconciliation, and HMAC
//!   confirmation.
//! * [`proto`] — sans-IO protocol state machines ([`MobileAgreement`],
//!   [`ServerAgreement`]) over a framed, versioned wire format; the
//!   [`agreement`] entry points are a lockstep driver over them.
//! * [`channel`] — the wire-frame channel with pluggable adversaries
//!   (eavesdropper, MitM, delayer, dropper, version spoofer).
//! * [`fault`] — seeded deterministic fault injection ([`FaultPlan`]):
//!   drop / corrupt / duplicate / reorder / truncate / delay schedules
//!   that compose with the adversary suite and drive the recovery layer
//!   (retransmission, duplicate idempotency, re-gesture fallback).
//! * [`session`] — end-to-end key establishment: gesture → both sensing
//!   pipelines → seeds → agreement.
//! * [`service`] — the multi-tenant backend of the paper's application
//!   contexts: ticket issuing, Gen2 discovery, per-ticket key binding,
//!   rotation/re-enrolment, request authentication — durably persisted
//!   through [`store`] (`wavekey-store`'s write-ahead journal).
//! * [`attack`] — the §V / §VI-E attack suite: random guessing (Eq. (4)),
//!   gesture mimicking, RFID signal spoofing, camera-aided data recovery
//!   (remote and in-situ), and MitM manipulation.
//! * [`bits`] — bit-vector packing helpers shared by the protocol.

pub mod agreement;
pub mod attack;
pub mod bits;
pub mod channel;
pub mod config;
pub mod dataset;
pub mod fault;
pub mod model;
pub mod proto;
pub mod quantize;
pub mod seed;
pub mod service;
pub mod session;
pub mod training;

pub use agreement::{
    run_agreement, run_agreement_with_obs, AgreementConfig, AgreementError, AgreementOutcome,
    AgreementStages, RetryPolicy,
};
pub use channel::{Adversary, Direction, MessageKind, PassiveChannel};
pub use config::WaveKeyConfig;
pub use fault::{FaultKind, FaultPlan, FaultProfile, ScheduledFault};
pub use model::WaveKeyModels;
pub use proto::link::{Endpoint, LinkDiscipline};
pub use proto::{Decoder, Frame, FrameError, MobileAgreement, ServerAgreement};
pub use quantize::{calibrate, QuantizeOutcome};
pub use seed::SeedGenerator;
pub use service::{AccessService, DegradePolicy, ManagedOutcome, ServiceTicket, SessionManager, DEFAULT_TENANT};
pub use session::{ConfigGuard, Session, SessionConfig, SessionOutcome};

/// The durable state layer under [`AccessService`] (re-exported so the
/// facade and integration tests reach it as `wavekey_core::store`).
pub use wavekey_store as store;

/// Unified error type of the WaveKey scheme.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The mobile-side pipeline failed.
    Imu(wavekey_imu::pipeline::PipelineError),
    /// The server-side pipeline failed.
    Rfid(wavekey_rfid::pipeline::RfidPipelineError),
    /// The key agreement failed.
    Agreement(AgreementError),
    /// Model training failed to converge or was misconfigured.
    Training(String),
    /// Invalid configuration.
    Config(String),
    /// The durable store failed (media error, quota, rate limit, …).
    Store(wavekey_store::StoreError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Imu(e) => write!(f, "imu pipeline: {e}"),
            Error::Rfid(e) => write!(f, "rfid pipeline: {e}"),
            Error::Agreement(e) => write!(f, "key agreement: {e}"),
            Error::Training(msg) => write!(f, "training: {msg}"),
            Error::Config(msg) => write!(f, "config: {msg}"),
            Error::Store(e) => write!(f, "durable store: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<wavekey_imu::pipeline::PipelineError> for Error {
    fn from(e: wavekey_imu::pipeline::PipelineError) -> Error {
        Error::Imu(e)
    }
}

impl From<wavekey_rfid::pipeline::RfidPipelineError> for Error {
    fn from(e: wavekey_rfid::pipeline::RfidPipelineError) -> Error {
        Error::Rfid(e)
    }
}

impl From<AgreementError> for Error {
    fn from(e: AgreementError) -> Error {
        Error::Agreement(e)
    }
}

impl From<wavekey_store::StoreError> for Error {
    fn from(e: wavekey_store::StoreError) -> Error {
        Error::Store(e)
    }
}
