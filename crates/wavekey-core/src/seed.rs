//! Key-seed generation (§IV-C).
//!
//! Encoder latent → equiprobable quantization (Eq. (1)) → Gray encoding →
//! the `l_s`-bit key-seed. Thanks to the encoders' final batch-norm the
//! latent elements are approximately standard normal, so one fixed bin
//! layout serves every element.

use crate::Error;
use wavekey_dsp::{EquiprobableQuantizer, GrayCode};
use wavekey_imu::pipeline::AccelMatrix;
use wavekey_nn::net::Sequential;
use wavekey_rfid::pipeline::RfidMatrix;

use crate::model::{imu_to_tensor, rfid_to_tensor};

/// Turns encoder latents into key-seed bit strings.
#[derive(Debug, Clone)]
pub struct SeedGenerator {
    quantizer: EquiprobableQuantizer,
    gray: GrayCode,
}

impl SeedGenerator {
    /// Creates a generator with `n_b` quantization bins.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when `n_b < 2`.
    pub fn new(n_b: usize) -> Result<SeedGenerator, Error> {
        let quantizer = EquiprobableQuantizer::new(n_b)
            .map_err(|e| Error::Config(format!("quantizer: {e}")))?;
        Ok(SeedGenerator { quantizer, gray: GrayCode::new(n_b) })
    }

    /// Bits produced per latent element.
    pub fn bits_per_symbol(&self) -> usize {
        self.gray.bits_per_symbol()
    }

    /// Seed length for a latent of `l_f` elements.
    pub fn seed_len(&self, l_f: usize) -> usize {
        l_f * self.bits_per_symbol()
    }

    /// Quantizes and Gray-encodes a latent vector.
    pub fn seed_from_latent(&self, latent: &[f32]) -> Vec<bool> {
        let symbols: Vec<usize> =
            latent.iter().map(|&x| self.quantizer.quantize(f64::from(x))).collect();
        self.gray.encode(&symbols)
    }

    /// Mobile side: `S_M` from the processed acceleration matrix.
    pub fn seed_imu(&self, encoder: &mut Sequential, a: &AccelMatrix) -> Vec<bool> {
        let t = imu_to_tensor(a);
        let latent = encoder.forward(&t, false);
        self.seed_from_latent(latent.data())
    }

    /// Server side: `S_R` from the processed RFID matrix.
    pub fn seed_rfid(&self, encoder: &mut Sequential, r: &RfidMatrix) -> Vec<bool> {
        let t = rfid_to_tensor(r);
        let latent = encoder.forward(&t, false);
        self.seed_from_latent(latent.data())
    }

    /// The bin index sequence (before Gray coding) — used by the
    /// randomness and hyper-parameter studies.
    pub fn symbols_from_latent(&self, latent: &[f32]) -> Vec<usize> {
        latent.iter().map(|&x| self.quantizer.quantize(f64::from(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_length_matches_config() {
        let sg = SeedGenerator::new(9).unwrap();
        assert_eq!(sg.bits_per_symbol(), 4);
        let latent = vec![0.0f32; 12];
        assert_eq!(sg.seed_from_latent(&latent).len(), 48);
        assert_eq!(sg.seed_len(12), 48);
    }

    #[test]
    fn close_latents_give_close_seeds() {
        let sg = SeedGenerator::new(9).unwrap();
        let a: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) / 4.0).collect();
        // Perturb by much less than a bin width.
        let b: Vec<f32> = a.iter().map(|x| x + 0.01).collect();
        let sa = sg.seed_from_latent(&a);
        let sb = sg.seed_from_latent(&b);
        let mismatch = crate::bits::hamming_distance(&sa, &sb);
        assert!(mismatch <= 2, "mismatch {mismatch}");
    }

    #[test]
    fn adjacent_bin_costs_one_bit() {
        let sg = SeedGenerator::new(9).unwrap();
        // Straddle a bin boundary: Φ⁻¹(4/9) ≈ −0.14 to Φ⁻¹(5/9) side.
        let a = vec![-0.01f32];
        let b = vec![0.01f32];
        let sa = sg.seed_from_latent(&a);
        let sb = sg.seed_from_latent(&b);
        let d = crate::bits::hamming_distance(&sa, &sb);
        assert!(d <= 1, "adjacent-bin distance {d}");
    }

    #[test]
    fn distant_latents_give_different_seeds() {
        let sg = SeedGenerator::new(9).unwrap();
        let a = vec![-2.0f32; 12];
        let b = vec![2.0f32; 12];
        assert!(crate::bits::hamming_distance(
            &sg.seed_from_latent(&a),
            &sg.seed_from_latent(&b)
        ) > 12);
    }

    #[test]
    fn rejects_single_bin() {
        assert!(SeedGenerator::new(1).is_err());
    }
}
