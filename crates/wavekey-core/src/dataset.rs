//! §IV-E-1 dataset generation.
//!
//! The paper collects 720 long gestures (6 volunteers × 4 devices × 30
//! gestures, each > 15 s, in two static environments and one dynamic one)
//! and slices 20 random, possibly overlapping two-second windows from
//! each, for 14,400 `(A, R)` samples. This module reproduces that process
//! on the simulators: each long gesture is recorded through both sensing
//! pipelines once, the full streams are processed with the §IV-B chain,
//! and windows are sliced from the processed streams (exactly how the
//! paper treats each window).

use crate::model::{
    imu_to_tensor, magnitude_target, rfid_to_tensor, IMU_SAMPLES, RFID_CHANNELS, RFID_SAMPLES,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wavekey_imu::gesture::{GestureConfig, GestureGenerator, VolunteerId};
use wavekey_imu::pipeline::{process_imu, AccelMatrix, ImuPipelineConfig};
use wavekey_imu::sensors::{sample_imu, DeviceModel};
use wavekey_math::Vec3;
use wavekey_nn::tensor::Tensor;
use wavekey_rfid::channel::TagModel;
use wavekey_rfid::environment::{Environment, UserPlacement};
use wavekey_rfid::pipeline::{process_rfid, RfidMatrix, RfidPipelineConfig};
use wavekey_rfid::reader::{record_rfid, ReaderSpec};

/// One training sample: the two modality tensors plus the decoder target.
#[derive(Debug, Clone)]
pub struct Sample {
    /// IMU-En input `[3, 200]` (un-batched).
    pub a: Tensor,
    /// RF-En input `[3, 400]` (un-batched).
    pub r: Tensor,
    /// Decoder target: standardized magnitudes `[400]`.
    pub mag: Tensor,
    /// Which volunteer produced the gesture.
    pub volunteer: VolunteerId,
    /// Which device recorded the IMU side.
    pub device: DeviceModel,
    /// Whether people were walking during the recording.
    pub dynamic: bool,
}

/// The generated dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// All samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Splits into `(train, validation)` with the given train fraction,
    /// deterministically shuffled by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `frac` is outside `(0, 1]`.
    pub fn split(mut self, frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(frac > 0.0 && frac <= 1.0, "train fraction must be in (0,1]");
        let mut rng = StdRng::seed_from_u64(seed);
        // Fisher-Yates.
        for i in (1..self.samples.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.samples.swap(i, j);
        }
        let cut = ((self.samples.len() as f64) * frac).round() as usize;
        let val = self.samples.split_off(cut.min(self.samples.len()));
        (Dataset { samples: self.samples }, Dataset { samples: val })
    }
}

/// Configuration of dataset generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of simulated volunteers.
    pub volunteers: u32,
    /// Mobile devices to record with.
    pub devices: Vec<DeviceModel>,
    /// Long gestures per volunteer × device combination.
    pub gestures_per_combo: usize,
    /// Random two-second windows sliced per gesture.
    pub windows_per_gesture: usize,
    /// Active duration of each long gesture (s); the paper uses > 15 s.
    pub active_duration: f64,
    /// Fraction of gestures recorded in the dynamic environment (the
    /// paper: 10 of 30).
    pub dynamic_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl DatasetConfig {
    /// The paper's full scale: 6 × 4 × 30 gestures × 20 windows = 14,400
    /// samples. Expensive; used by the full experiment harness.
    pub fn paper_scale() -> DatasetConfig {
        DatasetConfig {
            volunteers: 6,
            devices: DeviceModel::ALL.to_vec(),
            gestures_per_combo: 30,
            windows_per_gesture: 20,
            active_duration: 15.5,
            dynamic_fraction: 1.0 / 3.0,
            seed: 0x0da7a,
        }
    }

    /// A reduced scale that trains well in minutes (see DESIGN.md, D5).
    pub fn small() -> DatasetConfig {
        DatasetConfig {
            volunteers: 6,
            devices: vec![DeviceModel::GalaxyWatch, DeviceModel::Pixel8],
            gestures_per_combo: 30,
            windows_per_gesture: 12,
            active_duration: 15.5,
            dynamic_fraction: 1.0 / 3.0,
            seed: 0x0da7a,
        }
    }

    /// A tiny scale for unit tests.
    pub fn tiny() -> DatasetConfig {
        DatasetConfig {
            volunteers: 2,
            devices: vec![DeviceModel::GalaxyWatch],
            gestures_per_combo: 2,
            windows_per_gesture: 4,
            active_duration: 6.0,
            dynamic_fraction: 0.5,
            seed: 0x7e57,
        }
    }

    /// Total sample count this configuration will produce.
    pub fn total_samples(&self) -> usize {
        self.volunteers as usize
            * self.devices.len()
            * self.gestures_per_combo
            * self.windows_per_gesture
    }
}

/// Full-stream pipeline outputs for one long gesture.
#[derive(Debug, Clone)]
pub struct ProcessedGesture {
    /// World-frame linear accelerations over the whole active phase
    /// (100 Hz).
    pub accel: AccelMatrix,
    /// Processed RFID streams over the whole active phase (200 Hz).
    pub rfid: RfidMatrix,
}

/// Records one long gesture through both simulated pipelines.
///
/// Returns `None` when either pipeline rejects the recording (rare; e.g.
/// onset not detected), in which case the caller should draw another
/// gesture.
#[allow(clippy::too_many_arguments)]
pub fn record_long_gesture(
    generator: &mut GestureGenerator,
    active_duration: f64,
    device: DeviceModel,
    tag: TagModel,
    env: &Environment,
    placement: &UserPlacement,
    walkers: usize,
    seed: u64,
) -> Option<ProcessedGesture> {
    let gcfg = GestureConfig { active: active_duration, ..Default::default() };
    // The user faces the reader: rotate the body-forward axis toward the
    // antenna.
    let hand = placement.hand_position(env);
    let dir = env.antenna - hand;
    let gesture = generator.generate(&gcfg).rotated_yaw(dir.y.atan2(dir.x));

    // Process the full active stream: leave margin for onset-detection
    // latency (detection can fire up to ~0.3 s after the true onset).
    let imu_samples = ((active_duration - 0.8) * 100.0) as usize;
    let rfid_samples = ((active_duration - 0.8) * 200.0) as usize;

    let imu_rec = sample_imu(&gesture, &device.spec(), seed);
    let imu_cfg = ImuPipelineConfig { samples: imu_samples, ..Default::default() };
    let accel = process_imu(&imu_rec, &imu_cfg).ok()?;

    let channel = env.channel(tag, walkers, seed);
    let hand = placement.hand_position(env);
    let rfid_rec = record_rfid(
        &gesture,
        hand,
        Vec3::new(0.03, 0.0, 0.0),
        &channel,
        &ReaderSpec::default(),
        seed,
    );
    let rfid_cfg = RfidPipelineConfig { samples: rfid_samples, ..Default::default() };
    let rfid = process_rfid(&rfid_rec, &rfid_cfg).ok()?;

    Some(ProcessedGesture { accel, rfid })
}

/// Slices a two-second window starting `t_off` seconds into the processed
/// streams, producing a training sample's tensors.
///
/// Returns `None` when the window does not fit.
pub fn slice_window(
    processed: &ProcessedGesture,
    t_off: f64,
    volunteer: VolunteerId,
    device: DeviceModel,
    dynamic: bool,
) -> Option<Sample> {
    let ai = (t_off * 100.0).round() as usize;
    let ri = (t_off * 200.0).round() as usize;
    if ai + IMU_SAMPLES > processed.accel.len() || ri + RFID_SAMPLES > processed.rfid.len() {
        return None;
    }
    let a_rows = processed.accel.rows()[ai..ai + IMU_SAMPLES].to_vec();
    let a = AccelMatrix::from_rows(a_rows, processed.accel.start_time + t_off);
    let r = RfidMatrix {
        phase: processed.rfid.phase[ri..ri + RFID_SAMPLES].to_vec(),
        magnitude: processed.rfid.magnitude[ri..ri + RFID_SAMPLES].to_vec(),
        start_time: processed.rfid.start_time + t_off,
    };
    let a_t = imu_to_tensor(&a).reshaped(vec![3, IMU_SAMPLES]);
    let r_t = rfid_to_tensor(&r).reshaped(vec![RFID_CHANNELS, RFID_SAMPLES]);
    let mag = magnitude_target(&r).reshaped(vec![RFID_SAMPLES]);
    Some(Sample { a: a_t, r: r_t, mag, volunteer, device, dynamic })
}

/// Generates the full dataset per `config`.
pub fn generate(config: &DatasetConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut samples = Vec::with_capacity(config.total_samples());
    let placement = UserPlacement::default();
    let tag = TagModel::Alien9640A;

    for v in 0..config.volunteers {
        let volunteer = VolunteerId(v);
        for &device in &config.devices {
            let mut generator =
                GestureGenerator::new(volunteer, config.seed ^ (u64::from(v) << 16));
            for g in 0..config.gestures_per_combo {
                // The paper: 20 of 30 gestures in two static environments
                // (10 each), 10 in a dynamic environment.
                let dynamic =
                    (g as f64) < config.dynamic_fraction * config.gestures_per_combo as f64;
                let env = Environment::room(if g % 2 == 0 { 1 } else { 2 });
                let walkers = if dynamic { 5 } else { 0 };
                // Onset detection can occasionally miss (exactly as a
                // real data-collection session would re-record a failed
                // gesture); retry with fresh randomness a few times.
                let mut processed = None;
                for _ in 0..5 {
                    let seed = rng.gen();
                    processed = record_long_gesture(
                        &mut generator,
                        config.active_duration,
                        device,
                        tag,
                        &env,
                        &placement,
                        walkers,
                        seed,
                    );
                    if processed.is_some() {
                        break;
                    }
                }
                let Some(processed) = processed else {
                    continue;
                };
                let max_off = (processed.accel.len().saturating_sub(IMU_SAMPLES)) as f64 / 100.0;
                for _ in 0..config.windows_per_gesture {
                    let t_off = rng.gen_range(0.0..max_off.max(1e-6));
                    if let Some(s) =
                        slice_window(&processed, t_off, volunteer, device, dynamic)
                    {
                        samples.push(s);
                    }
                }
            }
        }
    }
    Dataset { samples }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_dataset_generates() {
        let config = DatasetConfig::tiny();
        let ds = generate(&config);
        // Nearly all windows should materialize.
        assert!(
            ds.len() as f64 > config.total_samples() as f64 * 0.8,
            "only {} of {} samples",
            ds.len(),
            config.total_samples()
        );
        for s in &ds.samples {
            assert_eq!(s.a.shape(), &[3, IMU_SAMPLES]);
            assert_eq!(s.r.shape(), &[RFID_CHANNELS, RFID_SAMPLES]);
            assert_eq!(s.mag.shape(), &[RFID_SAMPLES]);
        }
    }

    #[test]
    fn dataset_has_both_conditions() {
        let ds = generate(&DatasetConfig::tiny());
        assert!(ds.samples.iter().any(|s| s.dynamic));
        assert!(ds.samples.iter().any(|s| !s.dynamic));
    }

    #[test]
    fn paper_scale_counts() {
        let c = DatasetConfig::paper_scale();
        assert_eq!(c.total_samples(), 14_400);
    }

    #[test]
    fn split_partitions() {
        let ds = generate(&DatasetConfig::tiny());
        let n = ds.len();
        let (train, val) = ds.split(0.75, 1);
        assert_eq!(train.len() + val.len(), n);
        assert!(train.len() > val.len());
    }

    #[test]
    fn deterministic_generation() {
        let a = generate(&DatasetConfig::tiny());
        let b = generate(&DatasetConfig::tiny());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.samples[0].a.data(), b.samples[0].a.data());
    }

    #[test]
    fn cross_modal_tensors_are_correlated_in_time() {
        // Sanity: the same window of the same gesture drives both tensors;
        // the RFID phase channel must carry gesture-rate structure, not
        // white noise. Check lag-1 autocorrelation is high (smooth signal).
        let ds = generate(&DatasetConfig::tiny());
        let s = &ds.samples[0];
        let phase: Vec<f64> = s.r.data()[..RFID_SAMPLES].iter().map(|&x| x as f64).collect();
        let lag1 = wavekey_math::pearson_correlation(&phase[..RFID_SAMPLES - 1], &phase[1..]);
        assert!(lag1 > 0.9, "phase channel lag-1 autocorrelation {lag1}");
    }
}
