//! The WaveKey attack suite (§V and §VI-E).
//!
//! Per the paper's methodology, seed-level attacks are judged by whether
//! the attacker's key-seed guess lands within the ECC correction radius
//! of the victim's seed (`mismatch rate < η`): that is exactly the
//! condition under which device spoofing would let the attacker complete
//! the key agreement with the mobile device.
//!
//! * [`random_guess_probability`] — Eq. (4), the analytic success rate of
//!   guessing `S_M`.
//! * [`random_guess_monte_carlo`] — the same by simulation.
//! * [`mimic_accel`] — gesture mimicking (§VI-E-1): a watching attacker
//!   reproduces the victim's gesture through the human motor-error
//!   channel and derives a seed from their own device's IMU.
//! * [`camera_recover_accel`] — camera-aided data recovery (§VI-E-2):
//!   hand tracking at the camera's frame rate with pixel-level position
//!   noise, Savitzky-Golay smoothing, and double differentiation to
//!   estimate the linear accelerations.
//! * [`spoofing_gesture`] — RFID signal spoofing (§V-A): the injected
//!   signal is uncorrelated with the victim's IMU data.

use crate::model::IMU_SAMPLES;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use wavekey_dsp::savgol_second_derivative;
use wavekey_imu::gesture::{Gesture, GestureConfig, GestureGenerator, MimicConfig};
use wavekey_imu::pipeline::{process_imu, AccelMatrix, ImuPipelineConfig, PipelineError};
use wavekey_imu::sensors::{sample_imu, DeviceModel};
use wavekey_math::Vec3;

/// Eq. (4): the probability that a uniformly random `l_s`-bit guess lies
/// within mismatch ratio `η` of the victim's seed:
/// `P_g = Σ_{i=0}^{⌊l_s·η⌋} C(l_s, i) / 2^{l_s}`.
///
/// # Panics
///
/// Panics if `l_s == 0` or `eta` is negative.
pub fn random_guess_probability(l_s: usize, eta: f64) -> f64 {
    assert!(l_s > 0, "seed length must be positive");
    assert!(eta >= 0.0, "eta must be non-negative");
    let max_err = (l_s as f64 * eta).floor() as usize;
    // Work in log2 space to survive large l_s.
    let mut p = 0.0f64;
    for i in 0..=max_err.min(l_s) {
        p += (log2_binomial(l_s, i) - l_s as f64).exp2();
    }
    p.min(1.0)
}

/// log₂ of the binomial coefficient `C(n, k)`.
fn log2_binomial(n: usize, k: usize) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..k {
        acc += ((n - i) as f64).log2() - ((i + 1) as f64).log2();
    }
    acc
}

/// Monte-Carlo estimate of the random-guess success rate against a given
/// victim seed: the fraction of uniform guesses with mismatch rate below
/// `eta`.
pub fn random_guess_monte_carlo(
    victim_seed: &[bool],
    eta: f64,
    trials: usize,
    rng: &mut StdRng,
) -> f64 {
    assert!(!victim_seed.is_empty(), "empty victim seed");
    let threshold = (victim_seed.len() as f64 * eta).floor() as usize;
    let mut hits = 0usize;
    for _ in 0..trials {
        let mismatch = victim_seed.iter().filter(|_| rng.gen::<bool>()).count();
        // A uniform guess disagrees with each bit independently with
        // probability 1/2; counting random coin flips is equivalent and
        // cheaper than materializing the guess.
        if mismatch <= threshold {
            hits += 1;
        }
    }
    hits as f64 / trials as f64
}

/// Simulates one gesture-mimicking attack instance: the attacker watches
/// `victim_gesture`, reproduces it (motor-error channel), records their
/// own device's IMU, and processes it with the standard mobile pipeline.
///
/// Returns the attacker's recovered acceleration matrix, from which the
/// caller derives the spoofed seed with the (public) IMU-En.
///
/// # Errors
///
/// Propagates pipeline errors (e.g. the mimic moved too little).
pub fn mimic_accel(
    victim_gesture: &Gesture,
    attacker: &mut GestureGenerator,
    attacker_device: DeviceModel,
    gesture_config: &GestureConfig,
    mimic_config: &MimicConfig,
    noise_seed: u64,
) -> Result<AccelMatrix, PipelineError> {
    let mimic = attacker.mimic(victim_gesture, gesture_config, mimic_config);
    let rec = sample_imu(&mimic, &attacker_device.spec(), noise_seed);
    process_imu(&rec, &ImuPipelineConfig::default())
}

/// Camera model for the data-recovery attack (§VI-E-2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraConfig {
    /// Frames per second.
    pub fps: f64,
    /// Per-frame 3-D hand-position error (standard deviation, meters).
    pub position_noise: f64,
    /// `true` when only 2-D (image-plane) positions are observable — the
    /// in-situ strategy, which cannot run 3-D trackers in real time.
    pub two_d: bool,
    /// Length (seconds) of the local least-squares fit window the
    /// attacker estimates acceleration over. Longer windows suppress
    /// tracking noise but low-pass the gesture.
    pub fit_window: f64,
}

impl CameraConfig {
    /// The remote-recording strategy: an ALPCAM-class hidden camera
    /// (260 FPS, 1080p) plus Complexer-YOLO 3-D tracking. At 3 m, a
    /// 1080p pixel subtends ~3 mm; 3-D lifting roughly doubles that.
    pub fn remote() -> CameraConfig {
        CameraConfig { fps: 260.0, position_noise: 0.006, two_d: false, fit_window: 0.20 }
    }

    /// The in-situ strategy: a phone camera (30 FPS) running YOLOv5 in
    /// 2-D only, with coarser localization.
    pub fn in_situ() -> CameraConfig {
        CameraConfig { fps: 30.0, position_noise: 0.012, two_d: true, fit_window: 0.30 }
    }
}

/// Recovers an estimated linear-acceleration matrix from camera
/// observation of the victim's gesture.
///
/// The attacker samples hand positions at the camera frame rate with
/// Gaussian tracking noise and estimates acceleration by local
/// quadratic/cubic least-squares fits over `fit_window` seconds (the
/// Savitzky-Golay second-derivative filter) — the noise-optimal strategy
/// a competent attacker would use instead of naive double differencing.
/// The result is resampled onto the 100 Hz grid from `onset`.
pub fn camera_recover_accel(
    victim_gesture: &Gesture,
    camera: &CameraConfig,
    onset: f64,
    rng: &mut StdRng,
) -> AccelMatrix {
    let dt = 1.0 / camera.fps;
    let duration = victim_gesture.duration();
    let n_frames = (duration / dt).floor() as usize + 1;

    // Observe noisy positions.
    let mut obs: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for f in 0..n_frames {
        let t = f as f64 * dt;
        let p = victim_gesture.position_at(t);
        let noisy = [
            p.x + gaussian(rng) * camera.position_noise,
            p.y + gaussian(rng) * camera.position_noise,
            p.z + gaussian(rng) * camera.position_noise,
        ];
        for (axis, &v) in noisy.iter().enumerate() {
            obs[axis].push(v);
        }
    }
    if camera.two_d {
        // The image plane sees two axes; depth is unobservable.
        obs[1] = vec![0.0; n_frames];
    }

    // Acceleration via the SG second-derivative fit.
    let mut window = ((camera.fit_window * camera.fps).round() as usize).max(5) | 1;
    if window > n_frames {
        window = if n_frames % 2 == 0 { n_frames - 1 } else { n_frames };
    }
    let accel_axes: Vec<Vec<f64>> = obs
        .iter()
        .map(|series| {
            savgol_second_derivative(series, window, 3, dt)
                .unwrap_or_else(|_| vec![0.0; series.len()])
        })
        .collect();

    // Resample onto the 100 Hz grid from the onset.
    let rows: Vec<Vec3> = (0..IMU_SAMPLES)
        .map(|i| {
            let t = onset + i as f64 / 100.0;
            let idx = ((t / dt).round() as usize).min(n_frames.saturating_sub(1));
            Vec3::new(accel_axes[0][idx], accel_axes[1][idx], accel_axes[2][idx])
        })
        .collect();
    AccelMatrix::from_rows(rows, onset)
}

/// RFID signal spoofing (§V-A): the attacker overrides the backscatter
/// channel with a signal derived from an *unrelated* gesture of their
/// own. Returns that unrelated gesture for the caller to run through the
/// server pipeline — its seed cannot match the victim's IMU seed.
pub fn spoofing_gesture(attacker: &mut GestureGenerator, config: &GestureConfig) -> Gesture {
    attacker.generate(config)
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wavekey_imu::gesture::VolunteerId;
    use wavekey_math::pearson_correlation;

    #[test]
    fn eq4_small_cases_exact() {
        // l_s = 4, η = 0.25 → ⌊1⌋ error allowed: (C(4,0)+C(4,1))/16 = 5/16.
        let p = random_guess_probability(4, 0.25);
        assert!((p - 5.0 / 16.0).abs() < 1e-12);
        // η = 0 → only the exact guess: 1/2^l_s.
        let p = random_guess_probability(8, 0.0);
        assert!((p - 1.0 / 256.0).abs() < 1e-15);
    }

    #[test]
    fn eq4_matches_paper_parameters() {
        // The paper's operating point l_s = 38, η = 0.04 → ⌊1.52⌋ = 1
        // error allowed: (1 + 38)/2^38 ≈ 1.4e-10. (The paper quotes
        // 0.04 %, which Eq. (4) does not reproduce — see DESIGN.md D4.)
        let p = random_guess_probability(38, 0.04);
        let expected = 39.0 / 2f64.powi(38);
        assert!((p - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn eq4_monotone_in_eta() {
        let l_s = 48;
        let mut last = 0.0;
        for eta in [0.0, 0.02, 0.05, 0.1, 0.2, 0.5] {
            let p = random_guess_probability(l_s, eta);
            assert!(p >= last);
            last = p;
        }
        assert!((random_guess_probability(l_s, 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monte_carlo_agrees_with_eq4() {
        let mut rng = StdRng::seed_from_u64(1);
        let victim: Vec<bool> = (0..16).map(|_| rng.gen()).collect();
        // Large η so the Monte-Carlo estimate has mass: η = 0.3 → ≤4 errors.
        let analytic = random_guess_probability(16, 0.3);
        let mc = random_guess_monte_carlo(&victim, 0.3, 200_000, &mut rng);
        assert!(
            (mc - analytic).abs() < 0.01,
            "mc {mc} vs analytic {analytic}"
        );
    }

    #[test]
    fn mimic_accel_produces_matrix() {
        let config = GestureConfig::default();
        let mut victim = GestureGenerator::new(VolunteerId(0), 5);
        let gesture = victim.generate(&config);
        let mut attacker = GestureGenerator::new(VolunteerId(1), 6);
        let a = mimic_accel(
            &gesture,
            &mut attacker,
            DeviceModel::Pixel8,
            &config,
            &MimicConfig::default(),
            7,
        )
        .unwrap();
        assert_eq!(a.len(), IMU_SAMPLES);
    }

    #[test]
    fn remote_camera_tracks_low_frequency_motion() {
        // The 260 FPS camera with smoothing should recover acceleration
        // that clearly correlates with the truth (that is what makes the
        // remote attack nontrivial)…
        let config = GestureConfig::default();
        let mut gen = GestureGenerator::new(VolunteerId(0), 8);
        let gesture = gen.generate(&config);
        let mut rng = StdRng::seed_from_u64(9);
        let a = camera_recover_accel(&gesture, &CameraConfig::remote(), gesture.pause(), &mut rng);
        let recovered = a.column(0);
        let truth: Vec<f64> = (0..IMU_SAMPLES)
            .map(|i| gesture.acceleration_at(a.start_time + i as f64 / 100.0).x)
            .collect();
        let corr = pearson_correlation(&recovered, &truth);
        assert!(corr > 0.5, "remote camera correlation {corr}");
    }

    #[test]
    fn in_situ_camera_is_much_worse() {
        let config = GestureConfig::default();
        let mut gen = GestureGenerator::new(VolunteerId(0), 10);
        let gesture = gen.generate(&config);
        let mut rng = StdRng::seed_from_u64(11);
        let remote =
            camera_recover_accel(&gesture, &CameraConfig::remote(), gesture.pause(), &mut rng);
        let in_situ =
            camera_recover_accel(&gesture, &CameraConfig::in_situ(), gesture.pause(), &mut rng);
        let err = |a: &AccelMatrix| -> f64 {
            (0..IMU_SAMPLES)
                .map(|i| {
                    let t = a.start_time + i as f64 / 100.0;
                    (a.rows()[i] - gesture.acceleration_at(t)).norm()
                })
                .sum::<f64>()
                / IMU_SAMPLES as f64
        };
        assert!(
            err(&in_situ) > 1.5 * err(&remote),
            "in-situ {} vs remote {}",
            err(&in_situ),
            err(&remote)
        );
    }

    #[test]
    fn spoofing_gesture_is_unrelated() {
        let config = GestureConfig::default();
        let mut victim = GestureGenerator::new(VolunteerId(0), 20);
        let v = victim.generate(&config);
        let mut attacker = GestureGenerator::new(VolunteerId(3), 21);
        let s = spoofing_gesture(&mut attacker, &config);
        let vx: Vec<f64> = (0..200).map(|i| v.acceleration_at(0.5 + i as f64 / 100.0).x).collect();
        let sx: Vec<f64> = (0..200).map(|i| s.acceleration_at(0.5 + i as f64 / 100.0).x).collect();
        assert!(pearson_correlation(&vx, &sx).abs() < 0.5);
    }
}
