//! Int8-encoder calibration gated on key-seed equivalence.
//!
//! `wavekey-nn`'s [`QuantizedSequential`] keeps the quantized *latent*
//! within ~1e-2 of the f32 latent, but WaveKey does not consume latents —
//! it consumes the equiprobable-quantizer *bin indices* (§IV-C), and with
//! `N_b = 9` the central bins are only ~0.28σ wide. A per-channel latent
//! error of 1e-2 therefore crosses a bin boundary somewhere on any
//! realistic corpus, and a single crossed bin changes the key-seed. So a
//! quantized encoder is only usable when it lands every calibration
//! latent in the *same bin* as the f32 encoder.
//!
//! [`calibrate`] enforces exactly that, per encoder:
//!
//! 1. Build the int8 network ([`QuantizedSequential::from_sequential`])
//!    with the corpus as the activation-calibration set.
//! 2. **Boundary-aware bias nudge**: for every latent channel, intersect
//!    over the corpus the interval of output-bias corrections that keep
//!    each sample inside its f32 bin, and move the channel's f32 output
//!    bias to the mean f32−int8 gap clamped into that interval (interval
//!    midpoint when the mean falls outside). The nudge never exceeds a
//!    bin width, so it cannot manufacture agreement that the quantized
//!    network doesn't already almost have.
//! 3. **Drift check**: re-run the corpus and require bit-identical seeds
//!    ([`SeedGenerator::seed_from_latent`]) on every sample. On any
//!    mismatch — or an empty feasible interval, or an unsupported
//!    architecture — the encoder's quantized slot stays `None` and the
//!    session layer falls back to f32 for that model.
//!
//! The fallback is *per model*: a drifting IMU encoder does not disable
//! the quantized RF encoder.

use crate::dataset::Dataset;
use crate::model::WaveKeyModels;
use crate::seed::SeedGenerator;
use wavekey_dsp::EquiprobableQuantizer;
use wavekey_nn::net::Sequential;
use wavekey_nn::quant::QuantizedSequential;
use wavekey_nn::tensor::Tensor;

/// What [`calibrate`] did to each encoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizeOutcome {
    /// The IMU encoder now has a seed-equivalent quantized counterpart.
    pub imu_quantized: bool,
    /// The RF encoder now has a seed-equivalent quantized counterpart.
    pub rf_quantized: bool,
    /// Calibration samples checked per encoder.
    pub samples: usize,
}

impl QuantizeOutcome {
    /// Both encoders quantized successfully.
    pub fn all_quantized(&self) -> bool {
        self.imu_quantized && self.rf_quantized
    }
}

/// Builds, nudges, and verifies quantized encoders for `models` against
/// the reference `corpus`, populating `models.imu_en_q` / `models.rf_en_q`
/// only when the quantized key-seeds are bit-identical to the f32 seeds
/// on every corpus sample (with `n_b` quantization bins, the session
/// config's `N_b`).
pub fn calibrate(models: &mut WaveKeyModels, corpus: &Dataset, n_b: usize) -> QuantizeOutcome {
    let imu_inputs: Vec<Tensor> = corpus.samples.iter().map(|s| batched(&s.a)).collect();
    let rf_inputs: Vec<Tensor> = corpus.samples.iter().map(|s| batched(&s.r)).collect();
    models.imu_en_q = seed_equivalent_quantized(&mut models.imu_en, &imu_inputs, n_b);
    models.rf_en_q = seed_equivalent_quantized(&mut models.rf_en, &rf_inputs, n_b);
    QuantizeOutcome {
        imu_quantized: models.imu_en_q.is_some(),
        rf_quantized: models.rf_en_q.is_some(),
        samples: corpus.samples.len(),
    }
}

/// Dataset samples are un-batched `[C, L]`; the conv layers want
/// `[1, C, L]`.
fn batched(t: &Tensor) -> Tensor {
    let s = t.shape();
    t.reshaped(vec![1, s[0], s[1]])
}

/// Quantizes one encoder and returns it only if it passes the
/// seed-equivalence drift check on `inputs`.
fn seed_equivalent_quantized(
    net: &mut Sequential,
    inputs: &[Tensor],
    n_b: usize,
) -> Option<QuantizedSequential> {
    let quantizer = EquiprobableQuantizer::new(n_b).ok()?;
    let seed_gen = SeedGenerator::new(n_b).ok()?;
    let mut quantized = QuantizedSequential::from_sequential(net, inputs).ok()?;

    let f32_latents: Vec<Vec<f32>> =
        inputs.iter().map(|t| net.forward(t, false).into_vec()).collect();
    let q_latents: Vec<Vec<f32>> =
        inputs.iter().map(|t| quantized.forward(t).into_vec()).collect();

    // Per-channel feasible bias-correction interval: corrections that keep
    // every sample's quantized latent inside its f32 bin.
    let boundaries = quantizer.boundaries();
    let l_f = quantized.out_features();
    let bias = quantized.output_bias_mut();
    for ch in 0..l_f {
        let (mut lo, mut hi) = (f64::NEG_INFINITY, f64::INFINITY);
        let mut gap_sum = 0.0f64;
        for (f, q) in f32_latents.iter().zip(&q_latents) {
            let (fv, qv) = (f64::from(f[ch]), f64::from(q[ch]));
            let bin = quantizer.quantize(fv);
            // Bin `b` holds x with boundaries[b-1] ≤ x < boundaries[b]
            // (open-ended at the extremes).
            if bin > 0 {
                lo = lo.max(boundaries[bin - 1] - qv);
            }
            if bin < boundaries.len() {
                hi = hi.min(boundaries[bin] - qv);
            }
            gap_sum += fv - qv;
        }
        if lo >= hi {
            return None; // no single correction fixes every sample
        }
        let mean_gap = gap_sum / f32_latents.len() as f64;
        // Keep away from the interval edges: the correction is applied in
        // f32, so give the f32 rounding of `bias + corr` headroom.
        let corr = if lo.is_finite() && hi.is_finite() {
            let margin = ((hi - lo) * 1e-3).min(1e-5);
            mean_gap.clamp(lo + margin, hi - margin)
        } else {
            mean_gap.clamp(lo + 1e-5, hi - 1e-5)
        };
        bias[ch] += corr as f32;
    }

    // Exact drift check: the gated property itself, per sample.
    for (input, f32_latent) in inputs.iter().zip(&f32_latents) {
        let q_latent = quantized.forward(input).into_vec();
        if seed_gen.seed_from_latent(f32_latent) != seed_gen.seed_from_latent(&q_latent) {
            return None;
        }
    }
    Some(quantized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate, DatasetConfig};
    use crate::training::{train_autoencoders, TrainingConfig};

    fn trained_fixture() -> (WaveKeyModels, Dataset) {
        let dataset_config = DatasetConfig::tiny();
        let config = TrainingConfig { epochs: 3, ..TrainingConfig::default() };
        let models = train_autoencoders(&dataset_config, &config, 0x5eed).unwrap();
        let corpus = generate(&dataset_config);
        (models, corpus)
    }

    #[test]
    fn calibrate_yields_bit_identical_seeds_or_falls_back() {
        let (mut models, corpus) = trained_fixture();
        let n_b = crate::WaveKeyConfig::default().n_b;
        let outcome = calibrate(&mut models, &corpus, n_b);
        assert_eq!(outcome.samples, corpus.len());
        assert_eq!(outcome.imu_quantized, models.imu_en_q.is_some());
        assert_eq!(outcome.rf_quantized, models.rf_en_q.is_some());
        // Whatever was accepted must hold the seed-equivalence contract.
        let seed_gen = SeedGenerator::new(n_b).unwrap();
        if let Some(q) = &models.imu_en_q {
            let mut q = q.clone();
            for s in &corpus.samples {
                let input = batched(&s.a);
                let f = models.imu_en.forward(&input, false).into_vec();
                let qv = q.forward(&input).into_vec();
                assert_eq!(
                    seed_gen.seed_from_latent(&f),
                    seed_gen.seed_from_latent(&qv)
                );
            }
        }
    }

    #[test]
    fn calibrate_rejects_unsupported_decoder_shape() {
        let (mut models, corpus) = trained_fixture();
        // Swap IMU-En for the decoder (deconv — unquantizable): the IMU
        // slot must fall back while the RF slot is judged independently.
        models.imu_en = crate::model::build_decoder(models.l_f, 1);
        let inputs: Vec<Tensor> = corpus.samples.iter().map(|s| batched(&s.a)).collect();
        assert!(seed_equivalent_quantized(&mut models.imu_en, &inputs, 9).is_none());
    }

    #[test]
    fn drift_check_rejects_a_perturbed_encoder() {
        let (mut models, corpus) = trained_fixture();
        let inputs: Vec<Tensor> = corpus.samples.iter().map(|s| batched(&s.a)).collect();
        if let Some(mut q) =
            seed_equivalent_quantized(&mut models.imu_en, &inputs, 9)
        {
            // A bias shift of two bin widths must trip the drift check.
            q.output_bias_mut()[0] += 0.6;
            let seed_gen = SeedGenerator::new(9).unwrap();
            let drifted = inputs.iter().any(|t| {
                let f = models.imu_en.forward(t, false).into_vec();
                let qv = q.forward(t).into_vec();
                seed_gen.seed_from_latent(&f) != seed_gen.seed_from_latent(&qv)
            });
            assert!(drifted, "0.6σ bias shift must cross a bin somewhere");
        }
    }
}
