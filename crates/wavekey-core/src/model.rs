//! The WaveKey neural architectures (Fig. 5) and tensor conversions.
//!
//! * **IMU-En** — two `Conv1d` + ReLU stages over the 3×200 linear
//!   acceleration matrix, a fully-connected layer to the latent length
//!   `l_f`, and a final *non-affine* `BatchNorm1d` that standardizes every
//!   latent element (the property the equiprobable quantizer needs).
//! * **RF-En** — the same shape over the 2×400 RFID matrix.
//! * **De** — the auto-decoder: deconvolution → FC → deconvolution → FC
//!   (ReLU after the first three), reconstructing the 400 magnitude
//!   samples from `f_M` (the paper reconstructs magnitude only because
//!   phase is too environment-sensitive).

use wavekey_imu::pipeline::AccelMatrix;
use wavekey_math::{Mat3, Vec3};
use wavekey_nn::layer::{BatchNorm1d, Conv1d, ConvTranspose1d, Dense, Flatten, ReLU, Reshape};
use wavekey_nn::net::{ModelCodecError, Sequential};
use wavekey_nn::quant::QuantizedSequential;
use wavekey_nn::tensor::Tensor;
use wavekey_rfid::pipeline::RfidMatrix;

/// Number of IMU input channels (x/y/z linear acceleration).
pub const IMU_CHANNELS: usize = 3;
/// IMU samples per window (100 Hz × 2 s).
pub const IMU_SAMPLES: usize = 200;
/// Number of RFID input channels (phase, magnitude, and the phase's
/// second derivative — the radial-acceleration estimate; DESIGN.md D8).
pub const RFID_CHANNELS: usize = 3;
/// RFID samples per window (200 Hz × 2 s).
pub const RFID_SAMPLES: usize = 400;

/// The three jointly-trained networks.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveKeyModels {
    /// The mobile-side encoder.
    pub imu_en: Sequential,
    /// The server-side encoder.
    pub rf_en: Sequential,
    /// The training-time decoder (reconstructs RFID magnitude from `f_M`).
    pub de: Sequential,
    /// Latent length `l_f` the networks currently produce.
    pub l_f: usize,
    /// Int8-quantized IMU-En for the inference hot path, populated by
    /// `quantize::calibrate` when the quantized seeds match the f32 seeds
    /// on the calibration corpus (`None` ⇒ fall back to f32).
    pub imu_en_q: Option<QuantizedSequential>,
    /// Int8-quantized RF-En; same fallback contract as `imu_en_q`.
    pub rf_en_q: Option<QuantizedSequential>,
}

impl WaveKeyModels {
    /// Builds freshly initialized models with latent length `l_f`.
    ///
    /// # Panics
    ///
    /// Panics if `l_f == 0`.
    pub fn new(l_f: usize, seed: u64) -> WaveKeyModels {
        assert!(l_f > 0, "latent length must be positive");
        WaveKeyModels {
            imu_en: build_imu_encoder(l_f, seed),
            rf_en: build_rf_encoder(l_f, seed.wrapping_add(1)),
            de: build_decoder(l_f, seed.wrapping_add(2)),
            l_f,
            imu_en_q: None,
            rf_en_q: None,
        }
    }

    /// Whether both encoders carry a calibrated quantized counterpart.
    pub fn has_quantized(&self) -> bool {
        self.imu_en_q.is_some() && self.rf_en_q.is_some()
    }

    /// Runs IMU-En forward in inference mode. With `quantized` set the
    /// int8 path is used when `imu_en_q` is calibrated; otherwise (or when
    /// calibration fell back) the f32 network runs.
    pub fn imu_forward(&mut self, input: &Tensor, quantized: bool) -> Tensor {
        match (&mut self.imu_en_q, quantized) {
            (Some(q), true) => q.forward(input),
            _ => self.imu_en.forward(input, false),
        }
    }

    /// Runs RF-En forward in inference mode; see
    /// [`WaveKeyModels::imu_forward`].
    pub fn rf_forward(&mut self, input: &Tensor, quantized: bool) -> Tensor {
        match (&mut self.rf_en_q, quantized) {
            (Some(q), true) => q.forward(input),
            _ => self.rf_en.forward(input, false),
        }
    }

    /// Serializes all three networks to one binary blob, followed by a
    /// flags byte and the quantized encoder blobs for whichever slots are
    /// populated (bit 0 = IMU, bit 1 = RF).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.l_f as u32).to_le_bytes());
        for net in [&self.imu_en, &self.rf_en, &self.de] {
            let bytes = net.encode();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        let flags =
            u8::from(self.imu_en_q.is_some()) | (u8::from(self.rf_en_q.is_some()) << 1);
        out.push(flags);
        for q in [&self.imu_en_q, &self.rf_en_q].into_iter().flatten() {
            let bytes = q.encode();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Deserializes a blob produced by [`WaveKeyModels::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelCodecError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<WaveKeyModels, ModelCodecError> {
        let mut pos = 0usize;
        let take_u32 = |pos: &mut usize| -> Result<u32, ModelCodecError> {
            if *pos + 4 > bytes.len() {
                return Err(ModelCodecError::Truncated);
            }
            let v = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().unwrap());
            *pos += 4;
            Ok(v)
        };
        let l_f = take_u32(&mut pos)? as usize;
        let mut nets = Vec::with_capacity(3);
        for _ in 0..3 {
            let len = take_u32(&mut pos)? as usize;
            if pos + len > bytes.len() {
                return Err(ModelCodecError::Truncated);
            }
            nets.push(Sequential::decode(&bytes[pos..pos + len])?);
            pos += len;
        }
        // Quantized-encoder trailer. Blobs written before the int8 path
        // existed end here; treat that as "no quantized slots".
        let (mut imu_en_q, mut rf_en_q) = (None, None);
        if pos != bytes.len() {
            let flags = bytes[pos];
            pos += 1;
            for (bit, slot) in [(1u8, &mut imu_en_q), (2u8, &mut rf_en_q)] {
                if flags & bit == 0 {
                    continue;
                }
                let len = take_u32(&mut pos)? as usize;
                if pos + len > bytes.len() {
                    return Err(ModelCodecError::Truncated);
                }
                *slot = Some(QuantizedSequential::decode(&bytes[pos..pos + len])?);
                pos += len;
            }
        }
        if pos != bytes.len() {
            return Err(ModelCodecError::TrailingBytes);
        }
        let de = nets.pop().expect("three nets");
        let rf_en = nets.pop().expect("three nets");
        let imu_en = nets.pop().expect("three nets");
        Ok(WaveKeyModels { imu_en, rf_en, de, l_f, imu_en_q, rf_en_q })
    }

    /// Saves to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Loads from a file saved by [`WaveKeyModels::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed content becomes
    /// `io::ErrorKind::InvalidData`.
    pub fn load(path: &std::path::Path) -> std::io::Result<WaveKeyModels> {
        let bytes = std::fs::read(path)?;
        WaveKeyModels::decode(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// IMU-En: Conv1d(3→8, k7, s2) → ReLU → Conv1d(8→16, k5, s2) → ReLU →
/// Flatten → Dense(16·47 → l_f) → BatchNorm1d(l_f, non-affine).
pub fn build_imu_encoder(l_f: usize, seed: u64) -> Sequential {
    let mut net = Sequential::new();
    net.push(Conv1d::with_stride(IMU_CHANNELS, 8, 7, 2, 0, seed));
    net.push(ReLU::new());
    net.push(Conv1d::with_stride(8, 16, 5, 2, 0, seed.wrapping_add(10)));
    net.push(ReLU::new());
    net.push(Flatten::new());
    // (200−7)/2+1 = 97; (97−5)/2+1 = 47.
    net.push(Dense::new(16 * 47, l_f, seed.wrapping_add(20)));
    net.push(BatchNorm1d::new(l_f, false));
    net
}

/// RF-En: Conv1d(2→8, k9, s4) → ReLU → Conv1d(8→16, k5, s2) → ReLU →
/// Flatten → Dense(16·47 → l_f) → BatchNorm1d(l_f, non-affine).
pub fn build_rf_encoder(l_f: usize, seed: u64) -> Sequential {
    let mut net = Sequential::new();
    net.push(Conv1d::with_stride(RFID_CHANNELS, 8, 9, 4, 0, seed));
    net.push(ReLU::new());
    net.push(Conv1d::with_stride(8, 16, 5, 2, 0, seed.wrapping_add(10)));
    net.push(ReLU::new());
    net.push(Flatten::new());
    // (400−9)/4+1 = 98; (98−5)/2+1 = 47.
    net.push(Dense::new(16 * 47, l_f, seed.wrapping_add(20)));
    net.push(BatchNorm1d::new(l_f, false));
    net
}

/// De: ConvTranspose1d(l_f→16, k8, s4 over a length-1 "image") → ReLU →
/// Dense(16·8 → 256) → ReLU → ConvTranspose1d(8→4, k12, s3) → ReLU →
/// Dense(4·105 → 400). Deconv, FC, deconv, FC with ReLU after the first
/// three — the Fig. 5 decoder.
pub fn build_decoder(l_f: usize, seed: u64) -> Sequential {
    let mut net = Sequential::new();
    net.push(Reshape::new(l_f, 1));
    net.push(ConvTranspose1d::new(l_f, 16, 8, 4, seed));
    net.push(ReLU::new());
    net.push(Flatten::new());
    net.push(Dense::new(16 * 8, 256, seed.wrapping_add(10)));
    net.push(ReLU::new());
    net.push(Reshape::new(8, 32));
    net.push(ConvTranspose1d::new(8, 4, 12, 3, seed.wrapping_add(20)));
    net.push(ReLU::new());
    net.push(Flatten::new());
    // (32−1)·3+12 = 105.
    net.push(Dense::new(4 * 105, RFID_SAMPLES, seed.wrapping_add(30)));
    net
}

/// Converts a processed linear-acceleration matrix to the IMU-En input
/// tensor `[1, 3, 200]` in a *canonical gesture frame*.
///
/// The representation must not depend on which way the user faces: the
/// RFID phase observes only the radial motion component, so the IMU
/// window is rotated into its PCA frame (principal axes of the windowed
/// acceleration covariance, ordered by variance). Because users wave *at*
/// the reader, the dominant-variance axis is statistically the radial
/// direction — canonicalization hands both encoders the same geometry on
/// every gesture regardless of room, azimuth, or magnetometer heading.
/// Each canonical component's sign is fixed by making its
/// largest-magnitude sample positive; scale is normalized by the global
/// RMS. See DESIGN.md, deviation D7.
///
/// # Panics
///
/// Panics if the matrix does not have [`IMU_SAMPLES`] rows.
pub fn imu_to_tensor(a: &AccelMatrix) -> Tensor {
    assert_eq!(a.len(), IMU_SAMPLES, "accel matrix must have {IMU_SAMPLES} rows");
    let n = a.len() as f64;
    let mean_vec = a.rows().iter().fold(Vec3::ZERO, |s, &r| s + r) / n;
    let centered: Vec<Vec3> = a.rows().iter().map(|&r| r - mean_vec).collect();

    // Covariance (symmetric 3×3) and its principal axes.
    let mut cov = [[0.0f64; 3]; 3];
    for c in &centered {
        let v = c.to_array();
        for i in 0..3 {
            for j in 0..3 {
                cov[i][j] += v[i] * v[j];
            }
        }
    }
    for row in &mut cov {
        for cell in row.iter_mut() {
            *cell /= n;
        }
    }
    let (_, axes) = Mat3 { rows: cov }.symmetric_eigen();

    // Project onto the principal axes.
    let mut comps: [Vec<f64>; 3] = [
        Vec::with_capacity(a.len()),
        Vec::with_capacity(a.len()),
        Vec::with_capacity(a.len()),
    ];
    for c in &centered {
        for (k, comp) in comps.iter_mut().enumerate() {
            comp.push(axes.column(k).dot(*c));
        }
    }
    // Sign-free representation: each canonical component is rectified.
    // The component signs are arbitrary (eigenvectors are defined up to
    // ±1) and any per-window sign rule is fragile under the tens of
    // milliseconds of cross-modal window misalignment — a flip turns an
    // otherwise well-matched latent pair into a wholesale mismatch. The
    // rectified series keeps the energy envelope and the zero-crossing
    // structure, which is exactly what the RFID side can reproduce from
    // its rectified radial acceleration.
    for comp in &mut comps {
        for v in comp.iter_mut() {
            *v = v.abs();
        }
    }

    let rms = (comps
        .iter()
        .map(|c| c.iter().map(|v| v * v).sum::<f64>())
        .sum::<f64>()
        / n)
        .sqrt()
        .max(1e-9);
    let mut data = vec![0.0f32; IMU_CHANNELS * IMU_SAMPLES];
    for (k, comp) in comps.iter().enumerate() {
        for (i, &v) in comp.iter().enumerate() {
            data[k * IMU_SAMPLES + i] = (v / rms) as f32;
        }
    }
    Tensor::from_vec(data, vec![1, IMU_CHANNELS, IMU_SAMPLES])
}

/// Converts a processed RFID matrix to the RF-En input tensor
/// `[1, 3, 400]`, re-standardizing each channel over the window (a no-op
/// for freshly processed matrices, required for sliced training windows).
///
/// The third channel is the Savitzky-Golay second derivative of the
/// phase — the radial-acceleration estimate. The phase itself is
/// displacement-like (its window shape is dominated by low-frequency
/// drift), while the IMU side observes acceleration; handing the
/// derivative to RF-En explicitly puts both encoders in the same
/// physical domain instead of asking two small convolution layers to
/// discover a derivative filter (DESIGN.md, deviation D8).
///
/// # Panics
///
/// Panics if the matrix does not have [`RFID_SAMPLES`] samples.
pub fn rfid_to_tensor(r: &RfidMatrix) -> Tensor {
    assert_eq!(r.len(), RFID_SAMPLES, "rfid matrix must have {RFID_SAMPLES} samples");
    let mut radial_accel = wavekey_dsp::savgol_second_derivative(&r.phase, 41, 3, 1.0 / 200.0)
        .expect("window 41 fits 400 samples");
    // Rectified, matching the sign-free IMU representation (see
    // `imu_to_tensor`): |radial acceleration| is what |dominant canonical
    // component| can reproduce regardless of eigenvector sign ambiguity
    // or small window misalignment.
    for v in radial_accel.iter_mut() {
        *v = v.abs();
    }
    let mut data = vec![0.0f32; RFID_CHANNELS * RFID_SAMPLES];
    for (c, series) in [&r.phase, &r.magnitude, &radial_accel].iter().enumerate() {
        let mean = wavekey_math::mean(series);
        let std = wavekey_math::std_dev(series).max(1e-9);
        for (i, &v) in series.iter().enumerate() {
            data[c * RFID_SAMPLES + i] = ((v - mean) / std) as f32;
        }
    }
    Tensor::from_vec(data, vec![1, RFID_CHANNELS, RFID_SAMPLES])
}

/// The standardized magnitude column as the decoder target `[1, 400]`.
///
/// # Panics
///
/// Panics if the matrix does not have [`RFID_SAMPLES`] samples.
pub fn magnitude_target(r: &RfidMatrix) -> Tensor {
    assert_eq!(r.len(), RFID_SAMPLES, "rfid matrix must have {RFID_SAMPLES} samples");
    let mean = wavekey_math::mean(&r.magnitude);
    let std = wavekey_math::std_dev(&r.magnitude).max(1e-9);
    let data: Vec<f32> = r.magnitude.iter().map(|&v| ((v - mean) / std) as f32).collect();
    Tensor::from_vec(data, vec![1, RFID_SAMPLES])
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavekey_math::Vec3;

    fn dummy_accel() -> AccelMatrix {
        let rows = (0..IMU_SAMPLES)
            .map(|i| Vec3::new((i as f64 * 0.1).sin(), (i as f64 * 0.07).cos(), 0.5))
            .collect();
        AccelMatrix::from_rows(rows, 0.5)
    }

    fn dummy_rfid() -> RfidMatrix {
        RfidMatrix {
            phase: (0..RFID_SAMPLES).map(|i| (i as f64 * 0.05).sin()).collect(),
            magnitude: (0..RFID_SAMPLES).map(|i| (i as f64 * 0.03).cos()).collect(),
            start_time: 0.5,
        }
    }

    #[test]
    fn encoder_shapes() {
        let mut models = WaveKeyModels::new(12, 7);
        let a = imu_to_tensor(&dummy_accel());
        let f_m = models.imu_en.forward(&a, false);
        assert_eq!(f_m.shape(), &[1, 12]);
        let r = rfid_to_tensor(&dummy_rfid());
        let f_r = models.rf_en.forward(&r, false);
        assert_eq!(f_r.shape(), &[1, 12]);
        let rec = models.de.forward(&f_m, false);
        assert_eq!(rec.shape(), &[1, RFID_SAMPLES]);
    }

    #[test]
    fn encoders_train_mode_needs_batch() {
        // Forward with a batch of 4 in training mode exercises batch-norm.
        let mut models = WaveKeyModels::new(12, 8);
        let a = Tensor::stack(&(0..4)
            .map(|_| imu_to_tensor(&dummy_accel()).reshaped(vec![IMU_CHANNELS, IMU_SAMPLES]))
            .collect::<Vec<_>>());
        let f = models.imu_en.forward(&a, true);
        assert_eq!(f.shape(), &[4, 12]);
    }

    #[test]
    fn imu_tensor_rectified_and_scaled() {
        let t = imu_to_tensor(&dummy_accel());
        // The sign-free representation: all components non-negative…
        assert!(t.data().iter().all(|&v| v >= 0.0));
        // …with unit global RMS.
        let rms: f32 =
            (t.data().iter().map(|v| v * v).sum::<f32>() / IMU_SAMPLES as f32).sqrt();
        assert!((rms - 1.0).abs() < 1e-4, "rms = {rms}");
    }

    #[test]
    fn imu_tensor_is_rotation_invariant() {
        // The PCA canonicalization plus rectification must make the tensor
        // independent of the facing direction.
        let a = dummy_accel();
        let rot = wavekey_math::Quaternion::from_axis_angle(Vec3::Z, 1.1);
        let rotated = AccelMatrix::from_rows(
            a.rows().iter().map(|&r| rot.rotate(r)).collect(),
            a.start_time,
        );
        let t1 = imu_to_tensor(&a);
        let t2 = imu_to_tensor(&rotated);
        for (x, y) in t1.data().iter().zip(t2.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn rfid_tensor_channels_standardized() {
        let t = rfid_to_tensor(&dummy_rfid());
        for c in 0..2 {
            let ch = &t.data()[c * RFID_SAMPLES..(c + 1) * RFID_SAMPLES];
            let mean: f32 = ch.iter().sum::<f32>() / ch.len() as f32;
            assert!(mean.abs() < 1e-5, "channel {c}");
        }
    }

    #[test]
    fn models_codec_roundtrip() {
        let models = WaveKeyModels::new(12, 9);
        let bytes = models.encode();
        let decoded = WaveKeyModels::decode(&bytes).unwrap();
        assert_eq!(decoded.l_f, 12);
        assert_eq!(decoded.imu_en, models.imu_en);
        assert_eq!(decoded.rf_en, models.rf_en);
        assert_eq!(decoded.de, models.de);
    }

    #[test]
    fn models_codec_roundtrips_quantized_slots() {
        let mut models = WaveKeyModels::new(12, 9);
        let calib: Vec<Tensor> = (0..4)
            .map(|i| {
                let rows = (0..IMU_SAMPLES)
                    .map(|s| {
                        let t = s as f64 * (0.08 + 0.01 * i as f64);
                        Vec3::new(t.sin(), (1.3 * t).cos(), 0.2 * t.sin())
                    })
                    .collect();
                imu_to_tensor(&AccelMatrix::from_rows(rows, 0.0))
            })
            .collect();
        models.imu_en_q =
            Some(QuantizedSequential::from_sequential(&mut models.imu_en, &calib).unwrap());
        let decoded = WaveKeyModels::decode(&models.encode()).unwrap();
        assert_eq!(decoded.imu_en_q, models.imu_en_q);
        assert_eq!(decoded.rf_en_q, None);
        // Full-model comparison via re-encoding (the in-memory nets carry
        // forward caches PartialEq would see).
        assert_eq!(decoded.encode(), models.encode());
    }

    #[test]
    fn models_codec_accepts_pre_trailer_blobs() {
        // Blobs written before the quantized slots existed (three nets,
        // no flags byte) must still load, with empty slots.
        let models = WaveKeyModels::new(6, 13);
        let mut legacy = Vec::new();
        legacy.extend_from_slice(&(models.l_f as u32).to_le_bytes());
        for net in [&models.imu_en, &models.rf_en, &models.de] {
            let bytes = net.encode();
            legacy.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            legacy.extend_from_slice(&bytes);
        }
        let decoded = WaveKeyModels::decode(&legacy).unwrap();
        assert_eq!(decoded, models);
        assert!(!decoded.has_quantized());
    }

    #[test]
    fn forward_routing_falls_back_without_quantized_slots() {
        let mut models = WaveKeyModels::new(12, 7);
        let a = imu_to_tensor(&dummy_accel());
        let float = models.imu_en.forward(&a, false);
        // quantized=true with no calibrated slot must use the f32 path.
        let routed = models.imu_forward(&a, true);
        assert_eq!(float.data(), routed.data());
    }

    #[test]
    fn models_codec_rejects_truncation() {
        let models = WaveKeyModels::new(4, 10);
        let mut bytes = models.encode();
        bytes.truncate(bytes.len() / 2);
        assert!(WaveKeyModels::decode(&bytes).is_err());
    }

    #[test]
    fn save_load_roundtrip() {
        let models = WaveKeyModels::new(6, 11);
        let dir = std::env::temp_dir().join("wavekey_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.bin");
        models.save(&path).unwrap();
        let loaded = WaveKeyModels::load(&path).unwrap();
        assert_eq!(loaded, models);
        std::fs::remove_file(&path).ok();
    }
}
