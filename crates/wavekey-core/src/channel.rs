//! The wireless channel between mobile device and RFID server, with
//! pluggable adversaries.
//!
//! The paper's adversary model (§III) gives the attacker full control of
//! the WiFi/Bluetooth channel: they can observe (eavesdropping), modify
//! or relay (MitM), delay, or drop every message. The [`Adversary`] trait
//! is the hook through which the §VI-E security evaluation exercises each
//! capability.
//!
//! Adversaries operate on the wire layer: they intercept whole
//! [`Frame`]s — header fields (version, kind) and payload alike — rather
//! than in-memory protocol structs. Byte-offset attacks such as
//! [`BitFlipMitm`] index into the frame *payload*; header attacks rewrite
//! the frame fields directly (see [`VersionSpoofer`]).

use crate::proto::frame::Frame;

/// Which way a message is travelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Mobile device → RFID server.
    MobileToServer,
    /// RFID server → mobile device.
    ServerToMobile,
}

/// The protocol message types of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// The batched OT first message `M_A`.
    OtA,
    /// The batched OT response `M_B`.
    OtB,
    /// The batched OT ciphertexts `M_E`.
    OtE,
    /// The reconciliation challenge `ECC(K_M) ‖ N`.
    Challenge,
    /// The HMAC confirmation.
    Response,
}

impl MessageKind {
    /// Every kind, in protocol order.
    pub const ALL: [MessageKind; 5] = [
        MessageKind::OtA,
        MessageKind::OtB,
        MessageKind::OtE,
        MessageKind::Challenge,
        MessageKind::Response,
    ];

    /// The one-byte tag this kind is framed with on the wire.
    pub fn wire_tag(self) -> u8 {
        match self {
            MessageKind::OtA => 1,
            MessageKind::OtB => 2,
            MessageKind::OtE => 3,
            MessageKind::Challenge => 4,
            MessageKind::Response => 5,
        }
    }

    /// Stable lower-case label for metrics and causal event timelines.
    pub fn label(self) -> &'static str {
        match self {
            MessageKind::OtA => "ot_a",
            MessageKind::OtB => "ot_b",
            MessageKind::OtE => "ot_e",
            MessageKind::Challenge => "challenge",
            MessageKind::Response => "response",
        }
    }

    /// Parses a wire tag back into a kind (`None` for unknown tags).
    pub fn from_wire(tag: u8) -> Option<MessageKind> {
        match tag {
            1 => Some(MessageKind::OtA),
            2 => Some(MessageKind::OtB),
            3 => Some(MessageKind::OtE),
            4 => Some(MessageKind::Challenge),
            5 => Some(MessageKind::Response),
            _ => None,
        }
    }
}

/// What the adversary does with an intercepted message.
///
/// Every frame scheduler (the lockstep driver and the concurrent
/// [`crate::SessionManager`]) handles all five actions uniformly; in the
/// strictly alternating lockstep exchange `Duplicate` and `Reorder`
/// degenerate to `Forward` because at most one frame is ever in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdversaryAction {
    /// Deliver (possibly after modifying the frame).
    Forward,
    /// Swallow the message; without retransmission the run fails.
    Drop,
    /// Deliver the message twice — the receiver must be idempotent.
    Duplicate,
    /// Hold the message back and release it behind the next transmission.
    Reorder,
    /// Deliver after the given extra latency (seconds, added to the
    /// nominal channel delay).
    Delay(f64),
}

/// A channel-level adversary. The default implementations forward
/// unmodified; override `intercept` to attack.
pub trait Adversary {
    /// Called for every transmission. `frame` (header and payload alike)
    /// may be mutated before the returned action is applied.
    fn intercept(&mut self, direction: Direction, frame: &mut Frame) -> AdversaryAction;
}

/// The benign channel: forwards everything untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassiveChannel;

impl Adversary for PassiveChannel {
    fn intercept(&mut self, _direction: Direction, _frame: &mut Frame) -> AdversaryAction {
        AdversaryAction::Forward
    }
}

/// A passive eavesdropper: records a copy of every message (§V-A).
///
/// The transcript stores the fully *encoded* frame bytes — exactly what
/// a radio sniffer would capture, header included.
#[derive(Debug, Clone, Default)]
pub struct Eavesdropper {
    /// Everything observed on the channel, as encoded frames.
    pub transcript: Vec<(Direction, MessageKind, Vec<u8>)>,
}

impl Adversary for Eavesdropper {
    fn intercept(&mut self, direction: Direction, frame: &mut Frame) -> AdversaryAction {
        self.transcript.push((direction, frame.kind, frame.encode()));
        AdversaryAction::Forward
    }
}

/// A bit-flipping man-in-the-middle: XORs payload bytes of every message
/// of the targeted kind (§V-C).
///
/// A *single* flipped byte corrupts only one OT instance, whose damage
/// the reconciliation ECC absorbs (the established key is the mobile's
/// `K_M` either way, so the attacker gains nothing). To actually break a
/// run, corrupt pervasively with a small `stride`.
#[derive(Debug, Clone)]
pub struct BitFlipMitm {
    /// Which message type to corrupt.
    pub target: MessageKind,
    /// Which direction to corrupt (both if `None`).
    pub direction: Option<Direction>,
    /// Payload byte offset of the first flip (wrapped to the payload
    /// length).
    pub offset: usize,
    /// Flip every `stride`-th byte starting at `offset`; `None` flips a
    /// single byte.
    pub stride: Option<usize>,
    /// Number of messages corrupted so far.
    pub corrupted: usize,
}

impl BitFlipMitm {
    /// Corrupts `target` messages in both directions at payload byte
    /// `offset`.
    pub fn new(target: MessageKind, offset: usize) -> BitFlipMitm {
        BitFlipMitm { target, direction: None, offset, stride: None, corrupted: 0 }
    }

    /// Corrupts every `stride`-th payload byte of `target` messages —
    /// enough damage that reconciliation cannot repair it.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn pervasive(target: MessageKind, stride: usize) -> BitFlipMitm {
        assert!(stride > 0, "stride must be positive");
        BitFlipMitm { target, direction: None, offset: 0, stride: Some(stride), corrupted: 0 }
    }
}

impl Adversary for BitFlipMitm {
    fn intercept(&mut self, direction: Direction, frame: &mut Frame) -> AdversaryAction {
        let dir_match = self.direction.map_or(true, |d| d == direction);
        let payload = &mut frame.payload;
        if frame.kind == self.target && dir_match && !payload.is_empty() {
            match self.stride {
                None => {
                    let idx = self.offset % payload.len();
                    payload[idx] ^= 0x01;
                }
                Some(stride) => {
                    let mut idx = self.offset % payload.len();
                    while idx < payload.len() {
                        payload[idx] ^= 0x01;
                        idx += stride;
                    }
                }
            }
            self.corrupted += 1;
        }
        AdversaryAction::Forward
    }
}

/// Delays targeted messages — models the relay / remote-processing
/// latency that the `2 + τ` deadline defeats (§VI-C-3).
#[derive(Debug, Clone)]
pub struct Delayer {
    /// Which message type to delay (all if `None`).
    pub target: Option<MessageKind>,
    /// Added latency in seconds.
    pub extra: f64,
}

impl Adversary for Delayer {
    fn intercept(&mut self, _direction: Direction, frame: &mut Frame) -> AdversaryAction {
        if self.target.map_or(true, |t| t == frame.kind) {
            AdversaryAction::Delay(self.extra)
        } else {
            AdversaryAction::Forward
        }
    }
}

/// Drops every message of a given kind (jamming).
#[derive(Debug, Clone)]
pub struct Dropper {
    /// Which message type to drop.
    pub target: MessageKind,
}

impl Adversary for Dropper {
    fn intercept(&mut self, _direction: Direction, frame: &mut Frame) -> AdversaryAction {
        if frame.kind == self.target {
            AdversaryAction::Drop
        } else {
            AdversaryAction::Forward
        }
    }
}

/// Rewrites the frame header's version byte on targeted messages — a
/// wire-layer downgrade/confusion attack the codec must reject cleanly.
#[derive(Debug, Clone)]
pub struct VersionSpoofer {
    /// Which message type to re-version.
    pub target: MessageKind,
    /// The version byte to stamp on the frame.
    pub version: u8,
}

impl Adversary for VersionSpoofer {
    fn intercept(&mut self, _direction: Direction, frame: &mut Frame) -> AdversaryAction {
        if frame.kind == self.target {
            frame.version = self.version;
        }
        AdversaryAction::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: MessageKind, payload: Vec<u8>) -> Frame {
        Frame::new(kind, payload)
    }

    #[test]
    fn passive_forwards_untouched() {
        let mut ch = PassiveChannel;
        let mut f = frame(MessageKind::OtA, vec![1, 2, 3]);
        let action = ch.intercept(Direction::MobileToServer, &mut f);
        assert_eq!(action, AdversaryAction::Forward);
        assert_eq!(f, frame(MessageKind::OtA, vec![1, 2, 3]));
    }

    #[test]
    fn eavesdropper_records_encoded_frames_but_forwards() {
        let mut eve = Eavesdropper::default();
        let mut f = frame(MessageKind::OtE, vec![9, 9]);
        let encoded = f.encode();
        eve.intercept(Direction::ServerToMobile, &mut f);
        assert_eq!(f.payload, vec![9, 9]);
        assert_eq!(eve.transcript.len(), 1);
        assert_eq!(eve.transcript[0].0, Direction::ServerToMobile);
        assert_eq!(eve.transcript[0].1, MessageKind::OtE);
        assert_eq!(eve.transcript[0].2, encoded);
        // The recorded bytes are a valid frame capture.
        assert_eq!(Frame::decode(&eve.transcript[0].2).unwrap().payload, vec![9, 9]);
    }

    #[test]
    fn mitm_flips_targeted_kind_only() {
        let mut mitm = BitFlipMitm::new(MessageKind::OtB, 0);
        let mut f = frame(MessageKind::OtA, vec![0xF0]);
        mitm.intercept(Direction::MobileToServer, &mut f);
        assert_eq!(f.payload, vec![0xF0]);
        let mut f = frame(MessageKind::OtB, vec![0xF0]);
        mitm.intercept(Direction::MobileToServer, &mut f);
        assert_eq!(f.payload, vec![0xF1]);
        assert_eq!(mitm.corrupted, 1);
    }

    #[test]
    fn mitm_leaves_the_header_intact() {
        // Payload-offset flips must never land in the frame header: the
        // attack the tests model is payload corruption, not framing
        // corruption (VersionSpoofer covers that separately).
        let mut mitm = BitFlipMitm::pervasive(MessageKind::Challenge, 1);
        let mut f = frame(MessageKind::Challenge, vec![0u8; 16]);
        mitm.intercept(Direction::MobileToServer, &mut f);
        assert_eq!(f.version, crate::proto::frame::WIRE_VERSION);
        assert_eq!(f.kind, MessageKind::Challenge);
        assert!(f.payload.iter().all(|&b| b == 0x01));
    }

    #[test]
    fn delayer_returns_delay_for_targeted_kind() {
        let mut d = Delayer { target: Some(MessageKind::OtA), extra: 0.5 };
        let mut f = frame(MessageKind::OtA, vec![]);
        assert_eq!(
            d.intercept(Direction::MobileToServer, &mut f),
            AdversaryAction::Delay(0.5)
        );
        let mut f = frame(MessageKind::OtE, vec![]);
        assert_eq!(d.intercept(Direction::MobileToServer, &mut f), AdversaryAction::Forward);
    }

    #[test]
    fn dropper_drops() {
        let mut d = Dropper { target: MessageKind::Challenge };
        let mut f = frame(MessageKind::Challenge, vec![]);
        assert_eq!(d.intercept(Direction::MobileToServer, &mut f), AdversaryAction::Drop);
    }

    #[test]
    fn version_spoofer_rewrites_targeted_header() {
        let mut spoof = VersionSpoofer { target: MessageKind::OtA, version: 9 };
        let mut f = frame(MessageKind::OtA, vec![1]);
        assert_eq!(
            spoof.intercept(Direction::ServerToMobile, &mut f),
            AdversaryAction::Forward
        );
        assert_eq!(f.version, 9);
        // Re-encoding the spoofed frame yields bytes the codec rejects.
        assert!(Frame::decode(&f.encode()).is_err());
        let mut f = frame(MessageKind::OtB, vec![1]);
        spoof.intercept(Direction::ServerToMobile, &mut f);
        assert_eq!(f.version, crate::proto::frame::WIRE_VERSION);
    }
}
