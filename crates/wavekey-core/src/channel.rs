//! The wireless channel between mobile device and RFID server, with
//! pluggable adversaries.
//!
//! The paper's adversary model (§III) gives the attacker full control of
//! the WiFi/Bluetooth channel: they can observe (eavesdropping), modify
//! or relay (MitM), delay, or drop every message. The [`Adversary`] trait
//! is the hook through which the §VI-E security evaluation exercises each
//! capability.

/// Which way a message is travelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Mobile device → RFID server.
    MobileToServer,
    /// RFID server → mobile device.
    ServerToMobile,
}

/// The protocol message types of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// The batched OT first message `M_A`.
    OtA,
    /// The batched OT response `M_B`.
    OtB,
    /// The batched OT ciphertexts `M_E`.
    OtE,
    /// The reconciliation challenge `ECC(K_M) ‖ N`.
    Challenge,
    /// The HMAC confirmation.
    Response,
}

/// What the adversary does with an intercepted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryAction {
    /// Deliver (possibly after modifying payload / adding delay).
    Forward,
    /// Swallow the message; the protocol run fails.
    Drop,
}

/// A channel-level adversary. The default implementations forward
/// unmodified; override `intercept` to attack.
pub trait Adversary {
    /// Called for every transmission. `payload` and `extra_delay`
    /// (seconds, added to the nominal channel latency) may be mutated.
    fn intercept(
        &mut self,
        direction: Direction,
        kind: MessageKind,
        payload: &mut Vec<u8>,
        extra_delay: &mut f64,
    ) -> AdversaryAction;
}

/// The benign channel: forwards everything untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassiveChannel;

impl Adversary for PassiveChannel {
    fn intercept(
        &mut self,
        _direction: Direction,
        _kind: MessageKind,
        _payload: &mut Vec<u8>,
        _extra_delay: &mut f64,
    ) -> AdversaryAction {
        AdversaryAction::Forward
    }
}

/// A passive eavesdropper: records a copy of every message (§V-A).
#[derive(Debug, Clone, Default)]
pub struct Eavesdropper {
    /// Everything observed on the channel.
    pub transcript: Vec<(Direction, MessageKind, Vec<u8>)>,
}

impl Adversary for Eavesdropper {
    fn intercept(
        &mut self,
        direction: Direction,
        kind: MessageKind,
        payload: &mut Vec<u8>,
        _extra_delay: &mut f64,
    ) -> AdversaryAction {
        self.transcript.push((direction, kind, payload.clone()));
        AdversaryAction::Forward
    }
}

/// A bit-flipping man-in-the-middle: XORs bytes of every message of the
/// targeted kind (§V-C).
///
/// A *single* flipped byte corrupts only one OT instance, whose damage
/// the reconciliation ECC absorbs (the established key is the mobile's
/// `K_M` either way, so the attacker gains nothing). To actually break a
/// run, corrupt pervasively with a small `stride`.
#[derive(Debug, Clone)]
pub struct BitFlipMitm {
    /// Which message type to corrupt.
    pub target: MessageKind,
    /// Which direction to corrupt (both if `None`).
    pub direction: Option<Direction>,
    /// Byte offset of the first flip (wrapped to the payload length).
    pub offset: usize,
    /// Flip every `stride`-th byte starting at `offset`; `None` flips a
    /// single byte.
    pub stride: Option<usize>,
    /// Number of messages corrupted so far.
    pub corrupted: usize,
}

impl BitFlipMitm {
    /// Corrupts `target` messages in both directions at byte `offset`.
    pub fn new(target: MessageKind, offset: usize) -> BitFlipMitm {
        BitFlipMitm { target, direction: None, offset, stride: None, corrupted: 0 }
    }

    /// Corrupts every `stride`-th byte of `target` messages — enough
    /// damage that reconciliation cannot repair it.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    pub fn pervasive(target: MessageKind, stride: usize) -> BitFlipMitm {
        assert!(stride > 0, "stride must be positive");
        BitFlipMitm { target, direction: None, offset: 0, stride: Some(stride), corrupted: 0 }
    }
}

impl Adversary for BitFlipMitm {
    fn intercept(
        &mut self,
        direction: Direction,
        kind: MessageKind,
        payload: &mut Vec<u8>,
        _extra_delay: &mut f64,
    ) -> AdversaryAction {
        let dir_match = self.direction.map_or(true, |d| d == direction);
        if kind == self.target && dir_match && !payload.is_empty() {
            match self.stride {
                None => {
                    let idx = self.offset % payload.len();
                    payload[idx] ^= 0x01;
                }
                Some(stride) => {
                    let mut idx = self.offset % payload.len();
                    while idx < payload.len() {
                        payload[idx] ^= 0x01;
                        idx += stride;
                    }
                }
            }
            self.corrupted += 1;
        }
        AdversaryAction::Forward
    }
}

/// Delays targeted messages — models the relay / remote-processing
/// latency that the `2 + τ` deadline defeats (§VI-C-3).
#[derive(Debug, Clone)]
pub struct Delayer {
    /// Which message type to delay (all if `None`).
    pub target: Option<MessageKind>,
    /// Added latency in seconds.
    pub extra: f64,
}

impl Adversary for Delayer {
    fn intercept(
        &mut self,
        _direction: Direction,
        kind: MessageKind,
        _payload: &mut Vec<u8>,
        extra_delay: &mut f64,
    ) -> AdversaryAction {
        if self.target.map_or(true, |t| t == kind) {
            *extra_delay += self.extra;
        }
        AdversaryAction::Forward
    }
}

/// Drops the n-th message of a given kind (jamming).
#[derive(Debug, Clone)]
pub struct Dropper {
    /// Which message type to drop.
    pub target: MessageKind,
}

impl Adversary for Dropper {
    fn intercept(
        &mut self,
        _direction: Direction,
        kind: MessageKind,
        _payload: &mut Vec<u8>,
        _extra_delay: &mut f64,
    ) -> AdversaryAction {
        if kind == self.target {
            AdversaryAction::Drop
        } else {
            AdversaryAction::Forward
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_forwards_untouched() {
        let mut ch = PassiveChannel;
        let mut payload = vec![1, 2, 3];
        let mut delay = 0.0;
        let action = ch.intercept(
            Direction::MobileToServer,
            MessageKind::OtA,
            &mut payload,
            &mut delay,
        );
        assert_eq!(action, AdversaryAction::Forward);
        assert_eq!(payload, vec![1, 2, 3]);
        assert_eq!(delay, 0.0);
    }

    #[test]
    fn eavesdropper_records_but_forwards() {
        let mut eve = Eavesdropper::default();
        let mut payload = vec![9, 9];
        let mut delay = 0.0;
        eve.intercept(Direction::ServerToMobile, MessageKind::OtE, &mut payload, &mut delay);
        assert_eq!(payload, vec![9, 9]);
        assert_eq!(eve.transcript.len(), 1);
        assert_eq!(eve.transcript[0].2, vec![9, 9]);
    }

    #[test]
    fn mitm_flips_targeted_kind_only() {
        let mut mitm = BitFlipMitm::new(MessageKind::OtB, 0);
        let mut payload = vec![0xF0];
        let mut delay = 0.0;
        mitm.intercept(Direction::MobileToServer, MessageKind::OtA, &mut payload, &mut delay);
        assert_eq!(payload, vec![0xF0]);
        mitm.intercept(Direction::MobileToServer, MessageKind::OtB, &mut payload, &mut delay);
        assert_eq!(payload, vec![0xF1]);
        assert_eq!(mitm.corrupted, 1);
    }

    #[test]
    fn delayer_adds_latency() {
        let mut d = Delayer { target: Some(MessageKind::OtA), extra: 0.5 };
        let mut payload = vec![];
        let mut delay = 0.001;
        d.intercept(Direction::MobileToServer, MessageKind::OtA, &mut payload, &mut delay);
        assert!((delay - 0.501).abs() < 1e-12);
        d.intercept(Direction::MobileToServer, MessageKind::OtE, &mut payload, &mut delay);
        assert!((delay - 0.501).abs() < 1e-12);
    }

    #[test]
    fn dropper_drops() {
        let mut d = Dropper { target: MessageKind::Challenge };
        let mut payload = vec![];
        let mut delay = 0.0;
        assert_eq!(
            d.intercept(Direction::MobileToServer, MessageKind::Challenge, &mut payload, &mut delay),
            AdversaryAction::Drop
        );
    }
}
