//! End-to-end key establishment: gesture → both sensing pipelines →
//! key-seeds → OT key agreement.
//!
//! A [`Session`] owns the trained models and all environment
//! configuration; every call to [`Session::establish_key`] simulates one
//! fresh user gesture and runs the complete WaveKey workflow of Fig. 2.

use crate::agreement::{run_agreement, AgreementConfig, AgreementOutcome};
use crate::bits::hamming_distance;
use crate::channel::{Adversary, PassiveChannel};
use crate::config::WaveKeyConfig;
use crate::model::WaveKeyModels;
use crate::seed::SeedGenerator;
use crate::Error;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wavekey_imu::gesture::{Gesture, GestureConfig, GestureGenerator, VolunteerId};
use wavekey_imu::pipeline::{process_imu, ImuPipelineConfig};
use wavekey_imu::sensors::{sample_imu, DeviceModel};
use wavekey_math::Vec3;
use wavekey_rfid::channel::TagModel;
use wavekey_rfid::environment::{Environment, UserPlacement};
use wavekey_rfid::pipeline::{process_rfid, RfidPipelineConfig};
use wavekey_rfid::reader::{record_rfid, ReaderSpec};

/// Everything a key-establishment session needs to know about the world.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Scheme hyper-parameters.
    pub wavekey: WaveKeyConfig,
    /// Gesture dynamics.
    pub gesture: GestureConfig,
    /// Who is waving.
    pub volunteer: VolunteerId,
    /// The mobile device in the hand.
    pub device: DeviceModel,
    /// The RFID tag in the same hand.
    pub tag: TagModel,
    /// Which emulated room (1–4).
    pub environment_id: u32,
    /// Where the user stands relative to the antenna.
    pub placement: UserPlacement,
    /// Number of people walking around (0 = the paper's static
    /// condition, 5 = its dynamic condition).
    pub walkers: usize,
    /// Use the tiny test group for the OT (tests only; no security).
    pub use_tiny_group: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        // §VI-B defaults: Galaxy Watch, Alien 9640 tag, 5 m at 0°,
        // static laboratory room.
        SessionConfig {
            wavekey: WaveKeyConfig::default(),
            gesture: GestureConfig::default(),
            volunteer: VolunteerId(0),
            device: DeviceModel::GalaxyWatch,
            tag: TagModel::Alien9640A,
            environment_id: 1,
            placement: UserPlacement::default(),
            walkers: 0,
            use_tiny_group: false,
        }
    }
}

/// The result of one successful key establishment.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The established key (packed bits).
    pub key: Vec<u8>,
    /// Bits by which the two key-seeds disagreed.
    pub seed_mismatch_bits: usize,
    /// Key-seed length `l_s`.
    pub seed_len: usize,
    /// The mobile device's key-seed `S_M`.
    pub s_m: Vec<bool>,
    /// The RFID server's key-seed `S_R`.
    pub s_r: Vec<bool>,
    /// Protocol-level diagnostics.
    pub agreement: AgreementOutcome,
}

/// A key-establishment session bound to trained models and a physical
/// configuration.
#[derive(Debug, Clone)]
pub struct Session {
    config: SessionConfig,
    models: WaveKeyModels,
    seed_gen: SeedGenerator,
    rng: StdRng,
}

impl Session {
    /// Creates a session.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (e.g. `N_b < 2`); call
    /// [`WaveKeyConfig::validate`] first to check programmatically.
    pub fn new(config: SessionConfig, models: WaveKeyModels, seed: u64) -> Session {
        config.wavekey.validate().expect("invalid WaveKey config");
        let seed_gen = SeedGenerator::new(config.wavekey.n_b).expect("valid N_b");
        Session { config, models, seed_gen, rng: StdRng::seed_from_u64(seed) }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to move the user between
    /// gestures).
    pub fn config_mut(&mut self) -> &mut SessionConfig {
        &mut self.config
    }

    /// Simulates one fresh gesture and establishes a key over a benign
    /// channel.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when either pipeline or the agreement fails —
    /// the per-instance failures counted by the Table I/II success rates.
    pub fn establish_key(&mut self) -> Result<SessionOutcome, Error> {
        self.establish_key_with_adversary(&mut PassiveChannel)
    }

    /// Simulates one fresh gesture with an adversary on the channel.
    ///
    /// # Errors
    ///
    /// See [`Session::establish_key`].
    pub fn establish_key_with_adversary(
        &mut self,
        adversary: &mut dyn Adversary,
    ) -> Result<SessionOutcome, Error> {
        let gesture = self.new_gesture();
        self.establish_key_from_gesture(&gesture, adversary)
    }

    /// The yaw (radians) that turns the gesture generator's body-forward
    /// axis toward the antenna — users face the reader they interact
    /// with.
    pub fn facing_yaw(&self) -> f64 {
        let env = Environment::room(self.config.environment_id);
        let hand = self.config.placement.hand_position(&env);
        let dir = env.antenna - hand;
        dir.y.atan2(dir.x)
    }

    /// Generates one fresh gesture for this session's volunteer, already
    /// rotated to face the antenna. Attack evaluations use this so the
    /// victim's observable trajectory matches what the pipelines see.
    pub fn new_gesture(&mut self) -> Gesture {
        let gesture_seed = self.rng.gen();
        let mut generator = GestureGenerator::new(self.config.volunteer, gesture_seed);
        generator.generate(&self.config.gesture).rotated_yaw(self.facing_yaw())
    }

    /// Runs the workflow on a caller-supplied gesture (used by the attack
    /// evaluations, which need victim and attacker to share one gesture).
    ///
    /// # Errors
    ///
    /// See [`Session::establish_key`].
    pub fn establish_key_from_gesture(
        &mut self,
        gesture: &Gesture,
        adversary: &mut dyn Adversary,
    ) -> Result<SessionOutcome, Error> {
        let (s_m, s_r) = self.derive_seeds_from_gesture(gesture)?;
        self.agree(&s_m, &s_r, adversary)
    }

    /// Derives the two key-seeds from one simulated gesture without
    /// running the agreement (used by the hyper-parameter studies).
    ///
    /// # Errors
    ///
    /// Returns pipeline errors.
    pub fn derive_seeds(&mut self) -> Result<(Vec<bool>, Vec<bool>), Error> {
        let gesture = self.new_gesture();
        self.derive_seeds_from_gesture(&gesture)
    }

    /// Seed derivation for a given gesture.
    ///
    /// # Errors
    ///
    /// Returns pipeline errors.
    pub fn derive_seeds_from_gesture(
        &mut self,
        gesture: &Gesture,
    ) -> Result<(Vec<bool>, Vec<bool>), Error> {
        let (f_m, f_r) = self.derive_latents_from_gesture(gesture)?;
        Ok((
            self.seed_gen.seed_from_latent(&f_m),
            self.seed_gen.seed_from_latent(&f_r),
        ))
    }

    /// Runs both sensing pipelines and the encoders, returning the raw
    /// latent vectors `(f_M, f_R)` before quantization — the
    /// hyper-parameter studies (Fig. 7) re-quantize one set of latents at
    /// many `N_b` values.
    ///
    /// # Errors
    ///
    /// Returns pipeline errors.
    pub fn derive_latents_from_gesture(
        &mut self,
        gesture: &Gesture,
    ) -> Result<(Vec<f32>, Vec<f32>), Error> {
        let noise_seed: u64 = self.rng.gen();

        // Mobile side.
        let imu_rec = sample_imu(gesture, &self.config.device.spec(), noise_seed);
        let a = process_imu(&imu_rec, &ImuPipelineConfig::default())?;

        // Server side.
        let env = Environment::room(self.config.environment_id);
        let channel = env.channel(self.config.tag, self.config.walkers, noise_seed);
        let hand = self.config.placement.hand_position(&env);
        let rfid_rec = record_rfid(
            gesture,
            hand,
            Vec3::new(0.03, 0.0, 0.0),
            &channel,
            &ReaderSpec::default(),
            noise_seed,
        );
        let r = process_rfid(&rfid_rec, &RfidPipelineConfig::default())?;

        let f_m = self
            .models
            .imu_en
            .forward(&crate::model::imu_to_tensor(&a), false)
            .into_vec();
        let f_r = self
            .models
            .rf_en
            .forward(&crate::model::rfid_to_tensor(&r), false)
            .into_vec();
        Ok((f_m, f_r))
    }

    /// The mobile-side encoder latent for an externally supplied
    /// acceleration matrix (used by the device-spoofing attacks, which
    /// run the public IMU-En on attacker-recovered data).
    pub fn latent_from_accel(&mut self, a: &wavekey_imu::pipeline::AccelMatrix) -> Vec<f32> {
        self.models
            .imu_en
            .forward(&crate::model::imu_to_tensor(a), false)
            .into_vec()
    }

    /// The seed generator this session quantizes with.
    pub fn seed_generator(&self) -> &SeedGenerator {
        &self.seed_gen
    }

    /// Fast-path key establishment for the large-scale success-rate
    /// experiments: one fresh gesture, both pipelines, and the agreement
    /// *information layer* (identical key logic and verdicts; the OT
    /// group arithmetic, which cannot change a benign run's outcome, is
    /// skipped — see
    /// [`run_agreement_information_layer`](crate::agreement::run_agreement_information_layer)).
    ///
    /// # Errors
    ///
    /// Same failure taxonomy as [`Session::establish_key`].
    pub fn establish_key_fast(&mut self) -> Result<SessionOutcome, Error> {
        let gesture = self.new_gesture();
        let (s_m, s_r) = self.derive_seeds_from_gesture(&gesture)?;
        let wk = &self.config.wavekey;
        let agreement_config = AgreementConfig {
            key_len_bits: wk.key_len_bits,
            bch_t: wk.bch_t,
            tau: wk.tau,
            gesture_window: wk.gesture_window,
            channel_delay: 0.001,
            use_tiny_group: self.config.use_tiny_group,
            privacy_amplification: false,
        };
        let mut rng_server = StdRng::seed_from_u64(self.rng.gen());
        let outcome = crate::agreement::run_agreement_information_layer(
            &s_m,
            &s_r,
            &agreement_config,
            &mut self.rng,
            &mut rng_server,
        )?;
        Ok(SessionOutcome {
            key: outcome.key.clone(),
            seed_mismatch_bits: hamming_distance(&s_m, &s_r),
            seed_len: s_m.len(),
            s_m,
            s_r,
            agreement: outcome,
        })
    }

    /// Runs the key agreement on externally supplied seeds (exposed for
    /// tests and attack simulations).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Agreement`] on protocol failure.
    pub fn agree(
        &mut self,
        s_m: &[bool],
        s_r: &[bool],
        adversary: &mut dyn Adversary,
    ) -> Result<SessionOutcome, Error> {
        let wk = &self.config.wavekey;
        let agreement_config = AgreementConfig {
            key_len_bits: wk.key_len_bits,
            bch_t: wk.bch_t,
            tau: wk.tau,
            gesture_window: wk.gesture_window,
            channel_delay: 0.001,
            use_tiny_group: self.config.use_tiny_group,
            privacy_amplification: false,
        };
        let mut rng_server = StdRng::seed_from_u64(self.rng.gen());
        let outcome = run_agreement(
            s_m,
            s_r,
            &agreement_config,
            &mut self.rng,
            &mut rng_server,
            adversary,
        )?;
        Ok(SessionOutcome {
            key: outcome.key.clone(),
            seed_mismatch_bits: hamming_distance(s_m, s_r),
            seed_len: s_m.len(),
            s_m: s_m.to_vec(),
            s_r: s_r.to_vec(),
            agreement: outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BitFlipMitm, MessageKind};

    fn test_session() -> Session {
        let models = WaveKeyModels::new(12, 1);
        let config = SessionConfig {
            use_tiny_group: true,
            wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
            ..Default::default()
        };
        Session::new(config, models, 7)
    }

    #[test]
    fn seeds_derive_with_untrained_models() {
        // Untrained models still produce structurally valid seeds.
        let mut session = test_session();
        let (s_m, s_r) = session.derive_seeds().unwrap();
        assert_eq!(s_m.len(), 48);
        assert_eq!(s_r.len(), 48);
    }

    #[test]
    fn agree_succeeds_on_equal_seeds() {
        let mut session = test_session();
        let seed: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
        let out = session.agree(&seed, &seed, &mut PassiveChannel).unwrap();
        assert_eq!(out.seed_mismatch_bits, 0);
        assert_eq!(out.key.len(), 32);
    }

    #[test]
    fn agree_fails_under_mitm() {
        let mut session = test_session();
        let seed: Vec<bool> = (0..48).map(|i| i % 2 == 0).collect();
        let mut mitm = BitFlipMitm::pervasive(MessageKind::OtB, 8);
        let err = session.agree(&seed, &seed, &mut mitm).unwrap_err();
        assert!(matches!(err, Error::Agreement(_)));
    }

    #[test]
    fn full_establishment_runs_with_untrained_models() {
        // With untrained encoders the seeds usually disagree wildly, so
        // the run should complete as either success (lucky) or a clean
        // agreement failure — never a panic or pipeline error.
        let mut session = test_session();
        match session.establish_key() {
            Ok(out) => assert_eq!(out.key.len(), 32),
            Err(Error::Agreement(_)) => {}
            Err(other) => panic!("unexpected failure: {other:?}"),
        }
    }

    #[test]
    fn config_accessors() {
        let mut session = test_session();
        assert_eq!(session.config().environment_id, 1);
        session.config_mut().environment_id = 3;
        assert_eq!(session.config().environment_id, 3);
    }

    #[test]
    #[should_panic(expected = "invalid WaveKey config")]
    fn invalid_config_panics() {
        let models = WaveKeyModels::new(12, 1);
        let config = SessionConfig {
            wavekey: WaveKeyConfig { n_b: 1, ..Default::default() },
            ..Default::default()
        };
        Session::new(config, models, 1);
    }
}
