//! End-to-end key establishment: gesture → both sensing pipelines →
//! key-seeds → OT key agreement.
//!
//! A [`Session`] owns the trained models and all environment
//! configuration; every call to [`Session::establish_key`] simulates one
//! fresh user gesture and runs the complete WaveKey workflow of Fig. 2.

use crate::agreement::{AgreementConfig, AgreementError, AgreementOutcome};
use crate::bits::hamming_distance;
use crate::channel::{Adversary, PassiveChannel};
use crate::config::WaveKeyConfig;
use crate::model::WaveKeyModels;
use crate::seed::SeedGenerator;
use crate::Error;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use wavekey_obs::{stage, Obs, SessionTrace};
use wavekey_imu::gesture::{Gesture, GestureConfig, GestureGenerator, VolunteerId};
use wavekey_imu::pipeline::{process_imu, ImuPipelineConfig};
use wavekey_imu::sensors::{sample_imu, DeviceModel};
use wavekey_math::Vec3;
use wavekey_rfid::channel::TagModel;
use wavekey_rfid::environment::{Environment, UserPlacement};
use wavekey_rfid::pipeline::{process_rfid, RfidPipelineConfig};
use wavekey_rfid::reader::{record_rfid, ReaderSpec};

/// Everything a key-establishment session needs to know about the world.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionConfig {
    /// Scheme hyper-parameters.
    pub wavekey: WaveKeyConfig,
    /// Gesture dynamics.
    pub gesture: GestureConfig,
    /// Who is waving.
    pub volunteer: VolunteerId,
    /// The mobile device in the hand.
    pub device: DeviceModel,
    /// The RFID tag in the same hand.
    pub tag: TagModel,
    /// Which emulated room (1–4).
    pub environment_id: u32,
    /// Where the user stands relative to the antenna.
    pub placement: UserPlacement,
    /// Number of people walking around (0 = the paper's static
    /// condition, 5 = its dynamic condition).
    pub walkers: usize,
    /// Use the tiny test group for the OT (tests only; no security).
    pub use_tiny_group: bool,
    /// Run the encoder forwards on the int8 path when the models carry
    /// seed-equivalent quantized encoders (see [`crate::quantize`]);
    /// models without a calibrated slot fall back to f32 per encoder.
    pub quantized_inference: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        // §VI-B defaults: Galaxy Watch, Alien 9640 tag, 5 m at 0°,
        // static laboratory room.
        SessionConfig {
            wavekey: WaveKeyConfig::default(),
            gesture: GestureConfig::default(),
            volunteer: VolunteerId(0),
            device: DeviceModel::GalaxyWatch,
            tag: TagModel::Alien9640A,
            environment_id: 1,
            placement: UserPlacement::default(),
            walkers: 0,
            use_tiny_group: false,
            quantized_inference: false,
        }
    }
}

/// The result of one successful key establishment.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The established key (packed bits).
    pub key: Vec<u8>,
    /// Bits by which the two key-seeds disagreed.
    pub seed_mismatch_bits: usize,
    /// Key-seed length `l_s`.
    pub seed_len: usize,
    /// The mobile device's key-seed `S_M`.
    pub s_m: Vec<bool>,
    /// The RFID server's key-seed `S_R`.
    pub s_r: Vec<bool>,
    /// Protocol-level diagnostics.
    pub agreement: AgreementOutcome,
}

/// A key-establishment session bound to trained models and a physical
/// configuration.
#[derive(Debug, Clone)]
pub struct Session {
    config: SessionConfig,
    models: WaveKeyModels,
    seed_gen: SeedGenerator,
    rng: StdRng,
    obs: Obs,
    sessions_started: u64,
    /// The seed pair of the most recent derivation, kept so recovery
    /// flows (BCH escalation in [`crate::AccessService::enroll`]) can
    /// re-run the agreement on the *same* gesture's seeds.
    last_seeds: Option<(Vec<bool>, Vec<bool>)>,
}

impl Session {
    /// Creates a session.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (e.g. `N_b < 2`); call
    /// [`WaveKeyConfig::validate`] first to check programmatically.
    pub fn new(config: SessionConfig, models: WaveKeyModels, seed: u64) -> Session {
        config.wavekey.validate().expect("invalid WaveKey config");
        let seed_gen = SeedGenerator::new(config.wavekey.n_b).expect("valid N_b");
        Session {
            config,
            models,
            seed_gen,
            rng: StdRng::seed_from_u64(seed),
            obs: Obs::disabled(),
            sessions_started: 0,
            last_seeds: None,
        }
    }

    /// Attaches an observability handle: every subsequent establishment
    /// call records per-stage spans, metrics, and a [`SessionTrace`]
    /// through it. The default handle is disabled (zero overhead); attach
    /// `Obs::new(Arc::new(NullCollector))` and you get the same disabled
    /// path back.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The attached observability handle (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Mutable access to the configuration (e.g. to move the user between
    /// gestures), behind an RAII guard: releasing the guard re-validates
    /// the configuration and rebuilds the quantizer if `N_b` changed.
    /// Without the guard, a mid-experiment `N_b` mutation would leave
    /// this session quantizing with stale bins while a freshly built peer
    /// uses the new ones — the seeds would silently desynchronize.
    ///
    /// # Panics
    ///
    /// Dropping the guard panics if the mutated configuration is invalid
    /// (the same contract as [`Session::new`]).
    pub fn config_mut(&mut self) -> ConfigGuard<'_> {
        ConfigGuard { prior_n_b: self.config.wavekey.n_b, session: self }
    }

    /// Simulates one fresh gesture and establishes a key over a benign
    /// channel.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when either pipeline or the agreement fails —
    /// the per-instance failures counted by the Table I/II success rates.
    pub fn establish_key(&mut self) -> Result<SessionOutcome, Error> {
        self.establish_key_with_adversary(&mut PassiveChannel)
    }

    /// Simulates one fresh gesture with an adversary on the channel.
    ///
    /// # Errors
    ///
    /// See [`Session::establish_key`].
    pub fn establish_key_with_adversary(
        &mut self,
        adversary: &mut dyn Adversary,
    ) -> Result<SessionOutcome, Error> {
        let mut trace = self.begin_trace();
        let t = Instant::now();
        let gesture = self.new_gesture();
        let d = t.elapsed().as_secs_f64();
        trace.record_stage(stage::GESTURE_SYNTH, d);
        self.obs.record_duration(stage::GESTURE_SYNTH, d);
        let result = self.establish_traced(&gesture, adversary, &mut trace);
        self.finish_trace(trace, &result);
        result
    }

    /// The yaw (radians) that turns the gesture generator's body-forward
    /// axis toward the antenna — users face the reader they interact
    /// with.
    pub fn facing_yaw(&self) -> f64 {
        let env = Environment::room(self.config.environment_id);
        let hand = self.config.placement.hand_position(&env);
        let dir = env.antenna - hand;
        dir.y.atan2(dir.x)
    }

    /// Generates one fresh gesture for this session's volunteer, already
    /// rotated to face the antenna. Attack evaluations use this so the
    /// victim's observable trajectory matches what the pipelines see.
    pub fn new_gesture(&mut self) -> Gesture {
        let gesture_seed = self.rng.gen();
        let mut generator = GestureGenerator::new(self.config.volunteer, gesture_seed);
        generator.generate(&self.config.gesture).rotated_yaw(self.facing_yaw())
    }

    /// Runs the workflow on a caller-supplied gesture (used by the attack
    /// evaluations, which need victim and attacker to share one gesture).
    ///
    /// # Errors
    ///
    /// See [`Session::establish_key`].
    pub fn establish_key_from_gesture(
        &mut self,
        gesture: &Gesture,
        adversary: &mut dyn Adversary,
    ) -> Result<SessionOutcome, Error> {
        let mut trace = self.begin_trace();
        let result = self.establish_traced(gesture, adversary, &mut trace);
        self.finish_trace(trace, &result);
        result
    }

    /// One full seed-derivation + agreement attempt, recording per-stage
    /// timings into `trace` as it goes.
    fn establish_traced(
        &mut self,
        gesture: &Gesture,
        adversary: &mut dyn Adversary,
        trace: &mut SessionTrace,
    ) -> Result<SessionOutcome, Error> {
        let (s_m, s_r) = self.derive_seeds_traced(gesture, trace)?;
        trace.seed_len = s_m.len();
        trace.seed_mismatch_bits = Some(hamming_distance(&s_m, &s_r));
        self.agree_traced(&s_m, &s_r, adversary, trace)
    }

    /// Allocates the next session id and opens its trace.
    fn begin_trace(&mut self) -> SessionTrace {
        self.sessions_started += 1;
        SessionTrace::new(self.sessions_started)
    }

    /// Stamps the outcome on `trace` and hands it to the collector (no-op
    /// on a disabled handle).
    fn finish_trace(&self, mut trace: SessionTrace, result: &Result<SessionOutcome, Error>) {
        if !self.obs.is_enabled() {
            return;
        }
        trace.outcome = match result {
            Ok(_) => "success".to_string(),
            Err(e) => outcome_label(e),
        };
        self.obs.session(&trace);
    }

    /// Derives the two key-seeds from one simulated gesture without
    /// running the agreement (used by the hyper-parameter studies).
    ///
    /// # Errors
    ///
    /// Returns pipeline errors.
    pub fn derive_seeds(&mut self) -> Result<(Vec<bool>, Vec<bool>), Error> {
        let gesture = self.new_gesture();
        self.derive_seeds_from_gesture(&gesture)
    }

    /// Seed derivation for a given gesture.
    ///
    /// # Errors
    ///
    /// Returns pipeline errors.
    pub fn derive_seeds_from_gesture(
        &mut self,
        gesture: &Gesture,
    ) -> Result<(Vec<bool>, Vec<bool>), Error> {
        let mut scratch = SessionTrace::default();
        self.derive_seeds_traced(gesture, &mut scratch)
    }

    /// Seed derivation with stage timings recorded into `trace`.
    fn derive_seeds_traced(
        &mut self,
        gesture: &Gesture,
        trace: &mut SessionTrace,
    ) -> Result<(Vec<bool>, Vec<bool>), Error> {
        let (f_m, f_r) = self.derive_latents_traced(gesture, trace)?;
        let t = Instant::now();
        let seeds = (
            self.seed_gen.seed_from_latent(&f_m),
            self.seed_gen.seed_from_latent(&f_r),
        );
        let d = t.elapsed().as_secs_f64();
        trace.record_stage(stage::QUANTIZATION, d);
        self.obs.record_duration(stage::QUANTIZATION, d);
        self.last_seeds = Some(seeds.clone());
        Ok(seeds)
    }

    /// The seed pair of the most recent derivation, if any (recovery
    /// flows re-run the agreement on these without a new gesture).
    pub fn last_seeds(&self) -> Option<&(Vec<bool>, Vec<bool>)> {
        self.last_seeds.as_ref()
    }

    /// Runs both sensing pipelines and the encoders, returning the raw
    /// latent vectors `(f_M, f_R)` before quantization — the
    /// hyper-parameter studies (Fig. 7) re-quantize one set of latents at
    /// many `N_b` values.
    ///
    /// # Errors
    ///
    /// Returns pipeline errors.
    pub fn derive_latents_from_gesture(
        &mut self,
        gesture: &Gesture,
    ) -> Result<(Vec<f32>, Vec<f32>), Error> {
        let mut scratch = SessionTrace::default();
        self.derive_latents_traced(gesture, &mut scratch)
    }

    /// Both pipelines + encoder forwards with stage timings recorded into
    /// `trace`.
    fn derive_latents_traced(
        &mut self,
        gesture: &Gesture,
        trace: &mut SessionTrace,
    ) -> Result<(Vec<f32>, Vec<f32>), Error> {
        let noise_seed: u64 = self.rng.gen();

        // Mobile side.
        let t = Instant::now();
        let imu_rec = sample_imu(gesture, &self.config.device.spec(), noise_seed);
        let a = process_imu(&imu_rec, &ImuPipelineConfig::default())?;
        let d = t.elapsed().as_secs_f64();
        trace.record_stage(stage::IMU_PIPELINE, d);
        self.obs.record_duration(stage::IMU_PIPELINE, d);

        // Server side.
        let t = Instant::now();
        let env = Environment::room(self.config.environment_id);
        let channel = env.channel(self.config.tag, self.config.walkers, noise_seed);
        let hand = self.config.placement.hand_position(&env);
        let rfid_rec = record_rfid(
            gesture,
            hand,
            Vec3::new(0.03, 0.0, 0.0),
            &channel,
            &ReaderSpec::default(),
            noise_seed,
        );
        let r = process_rfid(&rfid_rec, &RfidPipelineConfig::default())?;
        let d = t.elapsed().as_secs_f64();
        trace.record_stage(stage::RFID_PIPELINE, d);
        self.obs.record_duration(stage::RFID_PIPELINE, d);

        let t = Instant::now();
        let quantized = self.config.quantized_inference;
        let f_m = self
            .models
            .imu_forward(&crate::model::imu_to_tensor(&a), quantized)
            .into_vec();
        let f_r = self
            .models
            .rf_forward(&crate::model::rfid_to_tensor(&r), quantized)
            .into_vec();
        let d = t.elapsed().as_secs_f64();
        trace.record_stage(stage::ENCODER_FORWARD, d);
        self.obs.record_duration(stage::ENCODER_FORWARD, d);
        Ok((f_m, f_r))
    }

    /// The mobile-side encoder latent for an externally supplied
    /// acceleration matrix (used by the device-spoofing attacks, which
    /// run the public IMU-En on attacker-recovered data).
    pub fn latent_from_accel(&mut self, a: &wavekey_imu::pipeline::AccelMatrix) -> Vec<f32> {
        let quantized = self.config.quantized_inference;
        self.models
            .imu_forward(&crate::model::imu_to_tensor(a), quantized)
            .into_vec()
    }

    /// The seed generator this session quantizes with.
    pub fn seed_generator(&self) -> &SeedGenerator {
        &self.seed_gen
    }

    /// Fast-path key establishment for the large-scale success-rate
    /// experiments: one fresh gesture, both pipelines, and the agreement
    /// *information layer* (identical key logic and verdicts; the OT
    /// group arithmetic, which cannot change a benign run's outcome, is
    /// skipped — see
    /// [`run_agreement_information_layer`](crate::agreement::run_agreement_information_layer)).
    ///
    /// # Errors
    ///
    /// Same failure taxonomy as [`Session::establish_key`].
    pub fn establish_key_fast(&mut self) -> Result<SessionOutcome, Error> {
        let mut trace = self.begin_trace();
        let t = Instant::now();
        let gesture = self.new_gesture();
        let d = t.elapsed().as_secs_f64();
        trace.record_stage(stage::GESTURE_SYNTH, d);
        self.obs.record_duration(stage::GESTURE_SYNTH, d);
        let result = self.establish_fast_traced(&gesture, &mut trace);
        self.finish_trace(trace, &result);
        result
    }

    fn establish_fast_traced(
        &mut self,
        gesture: &Gesture,
        trace: &mut SessionTrace,
    ) -> Result<SessionOutcome, Error> {
        let (s_m, s_r) = self.derive_seeds_traced(gesture, trace)?;
        trace.seed_len = s_m.len();
        trace.seed_mismatch_bits = Some(hamming_distance(&s_m, &s_r));
        let agreement_config = self.agreement_config();
        let mut rng_server = StdRng::seed_from_u64(self.rng.gen());
        let outcome = crate::agreement::run_agreement_information_layer(
            &s_m,
            &s_r,
            &agreement_config,
            &mut self.rng,
            &mut rng_server,
        )?;
        trace.key_bits = outcome.key_bits.len();
        trace.preliminary_mismatch_bits = Some(outcome.preliminary_mismatch_bits);
        trace.preliminary_len_bits = Some(preliminary_len_bits(&agreement_config, s_m.len()));
        trace.elapsed_s = Some(outcome.elapsed);
        Ok(SessionOutcome {
            key: outcome.key.clone(),
            seed_mismatch_bits: hamming_distance(&s_m, &s_r),
            seed_len: s_m.len(),
            s_m,
            s_r,
            agreement: outcome,
        })
    }

    /// The [`AgreementConfig`] this session runs the protocol with.
    fn agreement_config(&self) -> AgreementConfig {
        let wk = &self.config.wavekey;
        AgreementConfig {
            key_len_bits: wk.key_len_bits,
            bch_t: wk.bch_t,
            tau: wk.tau,
            gesture_window: wk.gesture_window,
            channel_delay: 0.001,
            use_tiny_group: self.config.use_tiny_group,
            fleet_group: false,
            batched_crypto: false,
            privacy_amplification: false,
            retry: crate::agreement::RetryPolicy::none(),
        }
    }

    /// Fast-path (information-layer) agreement on externally supplied
    /// seeds — the recovery counterpart of [`Session::establish_key_fast`]:
    /// re-runs the key logic on an already-derived seed pair, so BCH
    /// escalation can retry the *same* gesture with more correction
    /// capacity instead of demanding a new wave.
    ///
    /// # Errors
    ///
    /// Same failure taxonomy as [`Session::establish_key_fast`].
    pub fn agree_fast(&mut self, s_m: &[bool], s_r: &[bool]) -> Result<SessionOutcome, Error> {
        let agreement_config = self.agreement_config();
        let mut rng_server = StdRng::seed_from_u64(self.rng.gen());
        let outcome = crate::agreement::run_agreement_information_layer(
            s_m,
            s_r,
            &agreement_config,
            &mut self.rng,
            &mut rng_server,
        )?;
        Ok(SessionOutcome {
            key: outcome.key.clone(),
            seed_mismatch_bits: hamming_distance(s_m, s_r),
            seed_len: s_m.len(),
            s_m: s_m.to_vec(),
            s_r: s_r.to_vec(),
            agreement: outcome,
        })
    }

    /// Runs the key agreement on externally supplied seeds (exposed for
    /// tests and attack simulations).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Agreement`] on protocol failure.
    pub fn agree(
        &mut self,
        s_m: &[bool],
        s_r: &[bool],
        adversary: &mut dyn Adversary,
    ) -> Result<SessionOutcome, Error> {
        let mut scratch = SessionTrace::default();
        self.agree_traced(s_m, s_r, adversary, &mut scratch)
    }

    /// The agreement step, recording protocol stage timings into `trace`
    /// (and as spans on the attached handle).
    fn agree_traced(
        &mut self,
        s_m: &[bool],
        s_r: &[bool],
        adversary: &mut dyn Adversary,
        trace: &mut SessionTrace,
    ) -> Result<SessionOutcome, Error> {
        let agreement_config = self.agreement_config();
        trace.deadline_s = Some(agreement_config.gesture_window + agreement_config.tau);
        let mut rng_server = StdRng::seed_from_u64(self.rng.gen());
        let outcome = crate::agreement::run_agreement_observed(
            s_m,
            s_r,
            &agreement_config,
            &mut self.rng,
            &mut rng_server,
            adversary,
            &self.obs,
            trace.session_id,
        )?;
        for (name, seconds) in outcome.stages.timings() {
            trace.record_stage(name, seconds);
        }
        outcome.stages.record_to(&self.obs);
        trace.deadline_consumed_s = Some(outcome.stages.deadline_consumed_s);
        trace.elapsed_s = Some(outcome.elapsed);
        trace.key_bits = outcome.key_bits.len();
        trace.preliminary_mismatch_bits = Some(outcome.preliminary_mismatch_bits);
        trace.preliminary_len_bits = Some(preliminary_len_bits(&agreement_config, s_m.len()));
        Ok(SessionOutcome {
            key: outcome.key.clone(),
            seed_mismatch_bits: hamming_distance(s_m, s_r),
            seed_len: s_m.len(),
            s_m: s_m.to_vec(),
            s_r: s_r.to_vec(),
            agreement: outcome,
        })
    }
}

/// RAII view returned by [`Session::config_mut`]: dereferences to the
/// [`SessionConfig`] and, on release, re-validates the configuration and
/// keeps the session's quantizer in sync with `N_b`.
#[derive(Debug)]
pub struct ConfigGuard<'a> {
    prior_n_b: usize,
    session: &'a mut Session,
}

impl std::ops::Deref for ConfigGuard<'_> {
    type Target = SessionConfig;

    fn deref(&self) -> &SessionConfig {
        &self.session.config
    }
}

impl std::ops::DerefMut for ConfigGuard<'_> {
    fn deref_mut(&mut self) -> &mut SessionConfig {
        &mut self.session.config
    }
}

impl Drop for ConfigGuard<'_> {
    fn drop(&mut self) {
        self.session.config.wavekey.validate().expect("invalid WaveKey config");
        if self.session.config.wavekey.n_b != self.prior_n_b {
            self.session.seed_gen =
                SeedGenerator::new(self.session.config.wavekey.n_b).expect("valid N_b");
        }
    }
}

/// Preliminary key length `2·l_s·l_b` for a seed length and config.
fn preliminary_len_bits(config: &AgreementConfig, l_s: usize) -> usize {
    if l_s == 0 {
        return 0;
    }
    2 * l_s * config.key_len_bits.div_ceil(2 * l_s)
}

/// Short failure label for session traces (e.g. `"timeout_ota"`,
/// `"reconciliation_failed"`), keyed off [`Error`]'s taxonomy.
fn outcome_label(err: &Error) -> String {
    match err {
        Error::Imu(_) => "imu_pipeline_error".to_string(),
        Error::Rfid(_) => "rfid_pipeline_error".to_string(),
        Error::Agreement(e) => agreement_outcome_label(e),
        Error::Training(_) => "training_error".to_string(),
        Error::Config(_) => "config_error".to_string(),
        Error::Store(_) => "store_error".to_string(),
    }
}

/// Short failure label for an [`AgreementError`] (e.g. `"timeout_ota"`),
/// shared by session traces and the session manager's flight records.
pub(crate) fn agreement_outcome_label(e: &AgreementError) -> String {
    match e {
        AgreementError::BadSeeds => "bad_seeds".to_string(),
        AgreementError::Timeout(k) => format!("timeout_{k:?}").to_lowercase(),
        AgreementError::Dropped(k) => format!("dropped_{k:?}").to_lowercase(),
        AgreementError::Ot(_) => "ot_error".to_string(),
        AgreementError::ReconciliationFailed => "reconciliation_failed".to_string(),
        AgreementError::ConfirmationFailed => "confirmation_failed".to_string(),
        AgreementError::Config(_) => "bad_config".to_string(),
        AgreementError::Wire(_) => "wire_error".to_string(),
        AgreementError::Evicted => "evicted".to_string(),
        AgreementError::Worker(_) => "worker_panic".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{BitFlipMitm, MessageKind};

    fn test_session() -> Session {
        let models = WaveKeyModels::new(12, 1);
        let config = SessionConfig {
            use_tiny_group: true,
            wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
            ..Default::default()
        };
        Session::new(config, models, 7)
    }

    #[test]
    fn quantized_flag_without_calibrated_slots_changes_nothing() {
        // quantized_inference=true on models without quantized slots must
        // be a bit-exact no-op: every encoder falls back to f32 and the
        // deterministic session produces the same seeds.
        let models = WaveKeyModels::new(12, 1);
        let base = SessionConfig {
            use_tiny_group: true,
            wavekey: WaveKeyConfig { tau: 10.0, ..Default::default() },
            ..Default::default()
        };
        let quant_config =
            SessionConfig { quantized_inference: true, ..base.clone() };
        let mut plain = Session::new(base, models.clone(), 7);
        let mut routed = Session::new(quant_config, models, 7);
        let (s_m_a, s_r_a) = plain.derive_seeds().unwrap();
        let (s_m_b, s_r_b) = routed.derive_seeds().unwrap();
        assert_eq!(s_m_a, s_m_b);
        assert_eq!(s_r_a, s_r_b);
    }

    #[test]
    fn seeds_derive_with_untrained_models() {
        // Untrained models still produce structurally valid seeds.
        let mut session = test_session();
        let (s_m, s_r) = session.derive_seeds().unwrap();
        assert_eq!(s_m.len(), 48);
        assert_eq!(s_r.len(), 48);
    }

    #[test]
    fn agree_succeeds_on_equal_seeds() {
        let mut session = test_session();
        let seed: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
        let out = session.agree(&seed, &seed, &mut PassiveChannel).unwrap();
        assert_eq!(out.seed_mismatch_bits, 0);
        assert_eq!(out.key.len(), 32);
    }

    #[test]
    fn agree_fails_under_mitm() {
        let mut session = test_session();
        let seed: Vec<bool> = (0..48).map(|i| i % 2 == 0).collect();
        let mut mitm = BitFlipMitm::pervasive(MessageKind::OtB, 8);
        let err = session.agree(&seed, &seed, &mut mitm).unwrap_err();
        assert!(matches!(err, Error::Agreement(_)));
    }

    #[test]
    fn full_establishment_runs_with_untrained_models() {
        // With untrained encoders the seeds usually disagree wildly, so
        // the run should complete as either success (lucky) or a clean
        // agreement failure — never a panic or pipeline error.
        let mut session = test_session();
        match session.establish_key() {
            Ok(out) => assert_eq!(out.key.len(), 32),
            Err(Error::Agreement(_)) => {}
            Err(other) => panic!("unexpected failure: {other:?}"),
        }
    }

    #[test]
    fn config_accessors() {
        let mut session = test_session();
        assert_eq!(session.config().environment_id, 1);
        session.config_mut().environment_id = 3;
        assert_eq!(session.config().environment_id, 3);
    }

    #[test]
    fn config_guard_rebuilds_quantizer_on_n_b_change() {
        let mut session = test_session();
        let before = session.seed_generator().bits_per_symbol();
        let (s_m, _) = session.derive_seeds().unwrap();
        assert_eq!(s_m.len(), 12 * before);
        session.config_mut().wavekey.n_b = 4;
        // The quantizer tracked the mutation: seeds derived after the
        // change use the new bin count on both parties.
        let after = session.seed_generator().bits_per_symbol();
        assert_eq!(after, 2);
        assert_ne!(before, after);
        let (s_m, s_r) = session.derive_seeds().unwrap();
        assert_eq!(s_m.len(), 12 * after);
        assert_eq!(s_r.len(), 12 * after);
    }

    #[test]
    fn config_guard_changes_flow_into_the_next_agreement() {
        let mut session = test_session();
        session.config_mut().wavekey.tau = 4.5;
        let seed: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
        let out = session.agree(&seed, &seed, &mut PassiveChannel).unwrap();
        assert!((out.agreement.stages.deadline_s - 6.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid WaveKey config")]
    fn config_guard_rejects_invalid_mutation() {
        let mut session = test_session();
        session.config_mut().wavekey.n_b = 1;
    }

    #[test]
    fn traces_flow_to_attached_collector() {
        let mut session = test_session();
        let (obs, mem) = Obs::with_memory();
        session.set_obs(obs);
        assert!(session.obs().is_enabled());

        let _ = session.establish_key(); // success or clean failure both trace
        let _ = session.establish_key_fast();
        let sessions = mem.sessions();
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0].session_id, 1);
        assert_eq!(sessions[1].session_id, 2);
        for trace in &sessions {
            assert!(!trace.outcome.is_empty());
            assert_eq!(trace.seed_len, 48);
            assert!(trace.seed_mismatch_bits.is_some());
            for s in [stage::GESTURE_SYNTH, stage::IMU_PIPELINE, stage::RFID_PIPELINE,
                      stage::ENCODER_FORWARD, stage::QUANTIZATION] {
                assert!(trace.stage_seconds(s).is_some(), "missing stage {s}");
            }
        }
        // The full protocol attempt also times the agreement stages when
        // it reaches them (success or reconciliation failure both do).
        let full = &sessions[0];
        if full.is_success() {
            assert!(full.stage_seconds(stage::OT_ROUND_A).is_some());
            assert!(full.deadline_consumed_s.is_some());
            assert_eq!(full.key_bits, 256);
        }
        let text = session.obs().prometheus_text();
        assert!(text.contains("sessions_total 2"));
    }

    #[test]
    fn disabled_obs_records_nothing_and_still_works() {
        let mut session = test_session();
        assert!(!session.obs().is_enabled());
        let seed: Vec<bool> = (0..48).map(|i| i % 3 == 0).collect();
        let out = session.agree(&seed, &seed, &mut PassiveChannel).unwrap();
        assert_eq!(out.key.len(), 32);
        assert_eq!(session.obs().prometheus_text(), "");
    }

    #[test]
    #[should_panic(expected = "invalid WaveKey config")]
    fn invalid_config_panics() {
        let models = WaveKeyModels::new(12, 1);
        let config = SessionConfig {
            wavekey: WaveKeyConfig { n_b: 1, ..Default::default() },
            ..Default::default()
        };
        Session::new(config, models, 1);
    }
}
