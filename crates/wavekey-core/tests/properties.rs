//! Property-based tests for the protocol-facing core utilities.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wavekey_core::agreement::{run_agreement_information_layer, AgreementConfig};
use wavekey_core::bits::{
    deinterleave, hamming_distance, interleave, mismatch_rate, pack_bits, unpack_bits,
};
use wavekey_core::channel::MessageKind;
use wavekey_core::proto::frame::{Decoder, FrameError, HEADER_LEN, MAGIC, WIRE_VERSION};
use wavekey_core::Frame;

/// Feeds `stream` to a fresh [`Decoder`] cut at `cuts`-chosen split
/// points, returning the Ok frames (errors tolerated) and the decoder.
fn decode_at_splits(
    stream: &[u8],
    cuts: &[proptest::sample::Index],
) -> (Vec<Frame>, Decoder) {
    let mut points: Vec<usize> = cuts.iter().map(|c| c.index(stream.len() + 1)).collect();
    points.push(0);
    points.push(stream.len());
    points.sort_unstable();
    points.dedup();
    let mut dec = Decoder::new();
    let mut got = Vec::new();
    for pair in points.windows(2) {
        dec.push(&stream[pair[0]..pair[1]]);
        while let Some(item) = dec.next_frame() {
            if let Ok(frame) = item {
                got.push(frame);
            }
        }
    }
    (got, dec)
}

fn any_kind() -> impl Strategy<Value = MessageKind> {
    proptest::sample::select(MessageKind::ALL.to_vec())
}

proptest! {
    #[test]
    fn frame_encode_decode_roundtrip(
        kind in any_kind(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let frame = Frame::new(kind, payload);
        let bytes = frame.encode();
        prop_assert_eq!(bytes.len(), HEADER_LEN + frame.payload.len());
        prop_assert_eq!(Frame::peek_kind(&bytes), Some(kind));
        prop_assert_eq!(Frame::decode(&bytes), Ok(frame));
    }

    #[test]
    fn frame_decode_rejects_every_truncation(
        kind in any_kind(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut_frac in 0.0f64..1.0
    ) {
        let bytes = Frame::new(kind, payload).encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize; // < bytes.len()
        prop_assert_eq!(Frame::decode(&bytes[..cut]), Err(FrameError::Truncated));
    }

    #[test]
    fn frame_decode_rejects_trailing_garbage(
        kind in any_kind(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        junk in proptest::collection::vec(any::<u8>(), 1..64)
    ) {
        let mut bytes = Frame::new(kind, payload).encode();
        let declared = bytes.len() - HEADER_LEN;
        bytes.extend_from_slice(&junk);
        prop_assert_eq!(
            Frame::decode(&bytes),
            Err(FrameError::LengthMismatch {
                declared,
                actual: declared + junk.len(),
            })
        );
    }

    #[test]
    fn frame_decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        // Total decoding: any byte string yields Ok or a typed error. A
        // successful decode must re-encode to the exact input.
        if let Ok(frame) = Frame::decode(&bytes) {
            prop_assert_eq!(frame.encode(), bytes);
        }
    }

    #[test]
    fn frame_decode_rejects_foreign_headers(
        kind in any_kind(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        version in any::<u8>(),
        magic0 in any::<u8>()
    ) {
        let good = Frame::new(kind, payload).encode();
        // Any non-WIRE_VERSION version byte is refused...
        let mut reversioned = good.clone();
        reversioned[2] = version;
        if version != WIRE_VERSION {
            prop_assert_eq!(
                Frame::decode(&reversioned),
                Err(FrameError::UnknownVersion(version))
            );
        }
        // ...and any non-magic leading byte never decodes.
        let mut remagicked = good;
        remagicked[0] = magic0;
        if magic0 != MAGIC[0] {
            prop_assert_eq!(Frame::decode(&remagicked), Err(FrameError::BadMagic));
        }
    }

    #[test]
    fn frame_decode_survives_random_mutation(
        kind in any_kind(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), 1u8..=255), 1..8)
    ) {
        // Twin of frame.rs's seeded `random_mutations_never_panic_the_decoder`:
        // XOR-damage a valid frame anywhere; decode must stay total, and a
        // mutation the codec accepts must re-encode byte-identically.
        let mut bytes = Frame::new(kind, payload).encode();
        for (idx, mask) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= mask;
        }
        if let Ok(frame) = Frame::decode(&bytes) {
            prop_assert_eq!(frame.encode(), bytes);
        }
    }

    #[test]
    fn decoder_split_points_do_not_change_frames(
        kinds in proptest::collection::vec(any_kind(), 1..10),
        payload_lens in proptest::collection::vec(0usize..300, 1..10),
        cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..24)
    ) {
        // Proptest twin of frame.rs's seeded
        // `streaming_decoder_is_split_point_invariant`: a clean stream
        // yields the same frames under any chunking, with no resyncs and
        // no residue.
        let frames: Vec<Frame> = kinds
            .iter()
            .zip(payload_lens.iter().cycle())
            .map(|(&kind, &len)| Frame::new(kind, vec![0x5A; len]))
            .collect();
        let stream: Vec<u8> = frames.iter().flat_map(Frame::encode).collect();
        let (got, dec) = decode_at_splits(&stream, &cuts);
        prop_assert_eq!(got, frames);
        prop_assert_eq!(dec.buffered(), 0);
        prop_assert_eq!(dec.resyncs(), 0);
    }

    #[test]
    fn decoder_resyncs_through_garbage_runs(
        kinds in proptest::collection::vec(any_kind(), 1..6),
        junk in proptest::collection::vec(
            proptest::collection::vec(any::<u8>().prop_filter("not magic", |b| *b != MAGIC[0]), 1..32),
            1..6
        ),
        cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..16)
    ) {
        // Junk runs (never containing MAGIC[0], so they cannot fake a
        // header) interleaved between frames: every frame is recovered
        // in order and the decoder records the losses of sync.
        let frames: Vec<Frame> = kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| Frame::new(kind, vec![i as u8; 7]))
            .collect();
        let mut stream = Vec::new();
        let mut runs = 0u64;
        for (i, frame) in frames.iter().enumerate() {
            if let Some(j) = junk.get(i % junk.len()) {
                stream.extend_from_slice(j);
                runs += 1;
            }
            stream.extend(frame.encode());
        }
        let (got, dec) = decode_at_splits(&stream, &cuts);
        prop_assert_eq!(got, frames);
        prop_assert!(dec.resyncs() >= runs);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_streams(
        stream in proptest::collection::vec(any::<u8>(), 0..768),
        cuts in proptest::collection::vec(any::<proptest::sample::Index>(), 0..16)
    ) {
        // Totality under arbitrary bytes and arbitrary chunking; any Ok
        // frame must re-encode to a decodable image of itself.
        let (got, dec) = decode_at_splits(&stream, &cuts);
        prop_assert!(dec.buffered() <= stream.len());
        for frame in got {
            prop_assert_eq!(frame.version, WIRE_VERSION);
            let bytes = frame.encode();
            prop_assert_eq!(Frame::decode(&bytes), Ok(frame));
        }
    }

    #[test]
    fn bits_pack_unpack_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let bytes = pack_bits(&bits);
        prop_assert_eq!(unpack_bits(&bytes, bits.len()), bits);
    }

    #[test]
    fn interleave_roundtrip(
        bits in proptest::collection::vec(any::<bool>(), 1..300),
        blocks in 1usize..6
    ) {
        let block_len = bits.len().div_ceil(blocks);
        let inter = interleave(&bits, blocks, block_len);
        prop_assert_eq!(inter.len(), blocks * block_len);
        prop_assert_eq!(deinterleave(&inter, blocks, block_len, bits.len()), bits);
    }

    #[test]
    fn interleave_spreads_bursts(
        burst_start in 0usize..250,
        burst_len in 1usize..12
    ) {
        // A contiguous burst lands with at most ⌈burst/blocks⌉ bits in any
        // single block.
        let blocks = 3usize;
        let block_len = 100usize;
        let mut bits = vec![false; 300];
        let start = burst_start.min(300 - burst_len);
        for b in bits.iter_mut().skip(start).take(burst_len) {
            *b = true;
        }
        let inter = interleave(&bits, blocks, block_len);
        let cap = burst_len.div_ceil(blocks);
        for blk in 0..blocks {
            let count = inter[blk * block_len..(blk + 1) * block_len]
                .iter()
                .filter(|&&b| b)
                .count();
            prop_assert!(count <= cap, "block {blk}: {count} > {cap}");
        }
    }

    #[test]
    fn hamming_is_a_metric(
        a in proptest::collection::vec(any::<bool>(), 1..64),
        seed in any::<u64>()
    ) {
        // Symmetry, identity, triangle inequality against a third string.
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<bool> = a.iter().map(|_| rand::Rng::gen(&mut rng)).collect();
        let c: Vec<bool> = a.iter().map(|_| rand::Rng::gen(&mut rng)).collect();
        prop_assert_eq!(hamming_distance(&a, &a), 0);
        prop_assert_eq!(hamming_distance(&a, &b), hamming_distance(&b, &a));
        prop_assert!(
            hamming_distance(&a, &c)
                <= hamming_distance(&a, &b) + hamming_distance(&b, &c)
        );
        prop_assert!(mismatch_rate(&a, &b) <= 1.0);
    }

    #[test]
    fn identical_seeds_always_agree(seed_bits in proptest::collection::vec(any::<bool>(), 24..64), rng_seed in any::<u64>()) {
        let config = AgreementConfig { use_tiny_group: true, tau: 10.0, ..Default::default() };
        let mut rm = StdRng::seed_from_u64(rng_seed);
        let mut rs = StdRng::seed_from_u64(rng_seed.wrapping_add(1));
        let out = run_agreement_information_layer(&seed_bits, &seed_bits, &config, &mut rm, &mut rs);
        prop_assert!(out.is_ok());
        let out = out.unwrap();
        prop_assert_eq!(out.key_bits.len(), 256);
        prop_assert_eq!(out.preliminary_mismatch_bits, 0);
    }

    #[test]
    fn wildly_different_seeds_never_agree(len in 32usize..64, rng_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let s_m: Vec<bool> = (0..len).map(|_| rand::Rng::gen(&mut rng)).collect();
        let s_r: Vec<bool> = s_m.iter().map(|b| !b).collect();
        let config = AgreementConfig { use_tiny_group: true, tau: 10.0, ..Default::default() };
        let mut rm = StdRng::seed_from_u64(rng_seed.wrapping_add(2));
        let mut rs = StdRng::seed_from_u64(rng_seed.wrapping_add(3));
        let out = run_agreement_information_layer(&s_m, &s_r, &config, &mut rm, &mut rs);
        prop_assert!(out.is_err());
    }
}

// --------------------------------------------------------------------------
// Durable-store journal codec: the cargo/proptest twin of the in-module
// seeded mutation fuzz in `wavekey-store/src/record.rs`. Same contract,
// adversarial inputs drawn by proptest instead of splitmix64: decoding is
// total (no panic on any byte soup), and every *accepted* record
// re-encodes bit-identically — the property the recovery soak's byte-wise
// journal comparisons rest on.

use wavekey_core::store::journal::replay;
use wavekey_core::store::record::{decode_record, encode_record, RecordBody};

fn any_record_body() -> impl Strategy<Value = RecordBody> {
    let epc = proptest::array::uniform12(any::<u8>());
    let key = proptest::collection::vec(any::<u8>(), 0..80);
    prop_oneof![
        (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
            |(tenant, max_tickets, enroll_burst, enroll_refill)| RecordBody::TenantCreated {
                tenant,
                max_tickets,
                enroll_burst,
                enroll_refill,
            }
        ),
        (any::<u64>(), epc.clone(), any::<u8>(), any::<u32>()).prop_map(
            |(tenant, epc, model, serial)| RecordBody::TicketIssued { tenant, epc, model, serial }
        ),
        (any::<u64>(), epc.clone(), any::<u32>(), key.clone()).prop_map(
            |(tenant, epc, generation, key)| RecordBody::KeyBound { tenant, epc, generation, key }
        ),
        (any::<u64>(), epc.clone(), any::<u32>(), key.clone()).prop_map(
            |(tenant, epc, generation, key)| RecordBody::KeyRotated { tenant, epc, generation, key }
        ),
        (any::<u64>(), epc.clone(), any::<u32>(), key).prop_map(
            |(tenant, epc, generation, key)| RecordBody::ReEnrolled { tenant, epc, generation, key }
        ),
        (any::<u64>(), epc).prop_map(|(tenant, epc)| RecordBody::TicketRevoked { tenant, epc }),
    ]
}

proptest! {
    #[test]
    fn journal_record_roundtrip_is_canonical(seq in any::<u64>(), body in any_record_body()) {
        let bytes = encode_record(seq, &body);
        let (rec, used) = decode_record(&bytes).expect("own encoding decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(rec.seq, seq);
        prop_assert_eq!(&rec.body, &body);
        prop_assert_eq!(encode_record(rec.seq, &rec.body), bytes);
    }

    #[test]
    fn mutated_journal_records_never_panic_and_survivors_reencode(
        seq in any::<u64>(),
        body in any_record_body(),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), 1u8..=255), 1..8),
        cut in any::<proptest::sample::Index>()
    ) {
        let mut bytes = encode_record(seq, &body);
        for (at, mask) in &flips {
            let i = at.index(bytes.len());
            bytes[i] ^= mask;
        }
        bytes.truncate(cut.index(bytes.len() + 1));
        // Total decoding: typed error or a valid record, never a panic —
        // and anything accepted re-encodes to exactly the bytes read.
        if let Ok((rec, used)) = decode_record(&bytes) {
            prop_assert_eq!(encode_record(rec.seq, &rec.body), bytes[..used].to_vec());
        }
    }

    #[test]
    fn journal_replay_is_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048)
    ) {
        let rep = replay(&bytes);
        // The clean prefix re-encodes to exactly the consumed bytes.
        let mut reenc = Vec::new();
        for rec in &rep.records {
            reenc.extend_from_slice(&encode_record(rec.seq, &rec.body));
        }
        prop_assert_eq!(reenc.len(), rep.consumed);
        prop_assert_eq!(reenc.as_slice(), &bytes[..rep.consumed]);
    }
}
