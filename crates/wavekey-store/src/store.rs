//! [`DurableStore`] — the recoverable store `AccessService` sits on.
//!
//! Write path: every mutation encodes one journal record, appends it to the
//! volume *first*, and only then folds it into the in-memory state — the
//! classic WAL invariant (nothing is acknowledged that is not persisted).
//! If the append errors (real media failure or an injected storage fault),
//! the store truncates the journal back to its pre-append length so the
//! on-media image never holds a half-acknowledged record, and the caller
//! may simply retry.
//!
//! Read path: `key_for` stamps LRU clocks and transparently reloads keys
//! that were evicted under the memory ceiling, via a targeted
//! snapshot+journal scan.
//!
//! Recovery: `open` loads the snapshot (if any), replays the journal tail,
//! repairs torn tails by truncation, and — only in salvage mode — truncates
//! away corrupted history, keeping the intact prefix.

use crate::faults;
use crate::journal::{self, TailStatus, JOURNAL_FILE};
use crate::media::Volume;
use crate::record::{encode_record, RecordBody};
use crate::snapshot::{decode_snapshot, encode_snapshot, SNAPSHOT_FILE, SNAPSHOT_TMP};
use crate::state::{StoreState, TenantQuota};
use crate::StoreError;

/// Store tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Resident-key memory ceiling in bytes; 0 = unlimited (no eviction).
    pub memory_ceiling_bytes: usize,
    /// Auto-snapshot after this many appends; 0 = manual snapshots only.
    pub snapshot_every: u64,
    /// On mid-journal corruption, keep the intact prefix instead of
    /// refusing to open. Default off: losing acknowledged history should
    /// be an explicit operator decision.
    pub salvage_corruption: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            memory_ceiling_bytes: 0,
            snapshot_every: 0,
            salvage_corruption: false,
        }
    }
}

/// Counters the service pumps into `wavekey-obs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Full recoveries performed (`open` calls that replayed state).
    pub replays: u64,
    /// Journal records folded during recoveries.
    pub records_replayed: u64,
    /// Torn tails repaired by truncation at open.
    pub torn_tails_repaired: u64,
    /// Corrupted-history salvages performed at open.
    pub salvaged: u64,
    /// Keys evicted under the memory ceiling.
    pub evictions_memory: u64,
    /// Evicted keys reloaded on demand.
    pub reloads: u64,
    /// Snapshots installed.
    pub snapshots: u64,
    /// Snapshot installs that failed at the rename step.
    pub rename_failures: u64,
    /// Appends rolled back after a media error (torn/short writes).
    pub append_repairs: u64,
    /// Ticket-quota denials.
    pub quota_denials: u64,
    /// Enrolment rate-limit denials.
    pub rate_denials: u64,
}

/// The durable store. Owns the volume; all reads and writes of the
/// journal/snapshot files go through it.
pub struct DurableStore {
    volume: Box<dyn Volume>,
    state: StoreState,
    config: StoreConfig,
    /// Sequence number the next appended record will carry.
    next_seq: u64,
    /// Highest seq folded into the installed snapshot (0 = none).
    snapshot_seq: u64,
    appends_since_snapshot: u64,
    access_clock: u64,
    stats: StoreStats,
}

impl core::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("DurableStore")
            .field("tenants", &self.state.tenants.len())
            .field("next_seq", &self.next_seq)
            .field("snapshot_seq", &self.snapshot_seq)
            .field("resident_bytes", &self.state.resident_bytes())
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl DurableStore {
    /// Open (or create) a store on `volume`, recovering any existing state.
    pub fn open(volume: Box<dyn Volume>, config: StoreConfig) -> Result<Self, StoreError> {
        let mut store = DurableStore {
            volume,
            state: StoreState::new(),
            config,
            next_seq: 1,
            snapshot_seq: 0,
            appends_since_snapshot: 0,
            access_clock: 0,
            stats: StoreStats::default(),
        };
        store.recover()?;
        Ok(store)
    }

    fn recover(&mut self) -> Result<(), StoreError> {
        // A leftover tmp snapshot means a crash before the install rename;
        // the journal is authoritative, the tmp is garbage.
        self.volume.remove(SNAPSHOT_TMP)?;

        let mut state = StoreState::new();
        let mut snapshot_seq = 0u64;
        if let Some(snap) = self.volume.read(SNAPSHOT_FILE)? {
            let (seq, state_bytes) =
                decode_snapshot(&snap).map_err(StoreError::SnapshotCorrupted)?;
            state = StoreState::deserialize(&state_bytes)
                .map_err(StoreError::SnapshotCorrupted)?;
            snapshot_seq = seq;
        }

        let journal_bytes = self.volume.read(JOURNAL_FILE)?.unwrap_or_default();
        let replayed = journal::replay(&journal_bytes);
        match replayed.tail {
            TailStatus::Clean => {}
            TailStatus::TornTail { .. } => {
                // The torn suffix was never acknowledged; cut it off.
                self.volume.truncate(JOURNAL_FILE, replayed.consumed)?;
                self.stats.torn_tails_repaired += 1;
            }
            TailStatus::Corrupted { offset } => {
                if self.config.salvage_corruption {
                    self.volume.truncate(JOURNAL_FILE, replayed.consumed)?;
                    self.stats.salvaged += 1;
                } else {
                    return Err(StoreError::Corrupted { offset });
                }
            }
        }

        let mut last_seq = snapshot_seq;
        for rec in &replayed.records {
            // Records at or below the snapshot seq were already folded into
            // the snapshot (crash between install-rename and journal
            // truncate); applying them again would be wrong for rotations.
            if rec.seq <= snapshot_seq {
                continue;
            }
            state.apply(&rec.body);
            last_seq = rec.seq;
            self.stats.records_replayed += 1;
        }

        self.state = state;
        self.snapshot_seq = snapshot_seq;
        self.next_seq = last_seq + 1;
        self.appends_since_snapshot = 0;
        self.stats.replays += 1;
        Ok(())
    }

    /// Append one record durably, then fold it into memory. On a media
    /// error the journal is rolled back to its pre-append length and the
    /// state is untouched — the operation simply did not happen.
    fn append(&mut self, body: RecordBody) -> Result<(), StoreError> {
        let bytes = encode_record(self.next_seq, &body);
        let before = self.volume.len(JOURNAL_FILE)?;
        if let Err(e) = self.volume.append(JOURNAL_FILE, &bytes) {
            // Best-effort rollback of whatever prefix a torn write left.
            let _ = self.volume.truncate(JOURNAL_FILE, before);
            self.stats.append_repairs += 1;
            return Err(e);
        }
        self.state.apply(&body);
        // Writing a key counts as using it: without a stamp, a freshly
        // bound key would be the LRU victim of its own append.
        if let RecordBody::KeyBound { tenant, epc, .. }
        | RecordBody::KeyRotated { tenant, epc, .. }
        | RecordBody::ReEnrolled { tenant, epc, .. } = &body
        {
            self.access_clock += 1;
            let clock = self.access_clock;
            if let Some(t) = self.state.ticket_mut(*tenant, epc) {
                t.last_access = clock;
            }
        }
        self.next_seq += 1;
        self.appends_since_snapshot += 1;
        if self.config.snapshot_every > 0
            && self.appends_since_snapshot >= self.config.snapshot_every
        {
            // Auto-compaction failure must not fail the append that
            // triggered it: the record is already durable in the journal.
            // rename_failures counts what happened.
            let _ = self.snapshot();
        }
        self.enforce_ceiling(None)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Public mutation API (validating; replay via `apply` stays lenient).
    // ------------------------------------------------------------------

    /// Create a tenant with the given quota, returning its id.
    pub fn create_tenant(&mut self, quota: TenantQuota) -> Result<u64, StoreError> {
        let id = self.state.tenants.keys().max().copied().unwrap_or(0) + 1;
        self.append(RecordBody::TenantCreated {
            tenant: id,
            max_tickets: quota.max_tickets,
            enroll_burst: quota.enroll_burst,
            enroll_refill: quota.enroll_refill,
        })?;
        Ok(id)
    }

    /// Create tenant `id` with `quota` if it does not exist yet (used by
    /// the access service to pin its default tenant to a fixed id across
    /// recoveries). No-op when the tenant already exists.
    pub fn ensure_tenant(&mut self, id: u64, quota: TenantQuota) -> Result<(), StoreError> {
        if self.state.tenant(id).is_some() {
            return Ok(());
        }
        self.append(RecordBody::TenantCreated {
            tenant: id,
            max_tickets: quota.max_tickets,
            enroll_burst: quota.enroll_burst,
            enroll_refill: quota.enroll_refill,
        })
    }

    /// Serial the next issued ticket for `tenant` will get.
    pub fn peek_serial(&self, tenant: u64) -> Result<u32, StoreError> {
        Ok(self
            .state
            .tenant(tenant)
            .ok_or(StoreError::UnknownTenant(tenant))?
            .next_serial)
    }

    /// Issue a ticket (EPC) under `tenant`. Enforces the ticket quota.
    pub fn issue(&mut self, tenant: u64, epc: [u8; 12], model: u8) -> Result<u32, StoreError> {
        let t = self
            .state
            .tenant(tenant)
            .ok_or(StoreError::UnknownTenant(tenant))?;
        if t.live_tickets() >= t.quota.max_tickets as usize {
            self.stats.quota_denials += 1;
            return Err(StoreError::QuotaExceeded { tenant });
        }
        let serial = t.next_serial;
        self.append(RecordBody::TicketIssued {
            tenant,
            epc,
            model,
            serial,
        })?;
        Ok(serial)
    }

    /// Bind the first key to a ticket (initial enrolment). Returns the new
    /// generation.
    pub fn bind_key(&mut self, tenant: u64, epc: [u8; 12], key: &[u8]) -> Result<u32, StoreError> {
        let gen = self.require_ticket(tenant, &epc)?.generation + 1;
        self.append(RecordBody::KeyBound {
            tenant,
            epc,
            generation: gen,
            key: key.to_vec(),
        })?;
        Ok(gen)
    }

    /// Rotate an existing key server-side. Returns the new generation.
    pub fn rotate_key(&mut self, tenant: u64, epc: [u8; 12], key: &[u8]) -> Result<u32, StoreError> {
        let gen = self.require_ticket(tenant, &epc)?.generation + 1;
        self.append(RecordBody::KeyRotated {
            tenant,
            epc,
            generation: gen,
            key: key.to_vec(),
        })?;
        Ok(gen)
    }

    /// Record a fresh over-the-air re-enrolment. Returns the new
    /// generation.
    pub fn re_enroll(&mut self, tenant: u64, epc: [u8; 12], key: &[u8]) -> Result<u32, StoreError> {
        let gen = self.require_ticket(tenant, &epc)?.generation + 1;
        self.append(RecordBody::ReEnrolled {
            tenant,
            epc,
            generation: gen,
            key: key.to_vec(),
        })?;
        Ok(gen)
    }

    /// Revoke a ticket; its key is gone for good.
    pub fn revoke(&mut self, tenant: u64, epc: [u8; 12]) -> Result<(), StoreError> {
        self.require_ticket(tenant, &epc)?;
        self.append(RecordBody::TicketRevoked { tenant, epc })
    }

    fn require_ticket(
        &self,
        tenant: u64,
        epc: &[u8; 12],
    ) -> Result<&crate::state::TicketState, StoreError> {
        self.state
            .tenant(tenant)
            .ok_or(StoreError::UnknownTenant(tenant))?
            .ticket(epc)
            .ok_or(StoreError::UnknownTicket)
    }

    // ------------------------------------------------------------------
    // Rate limiting
    // ------------------------------------------------------------------

    /// Take one enrolment token for `tenant`, or fail with `RateLimited`.
    pub fn take_enroll_token(&mut self, tenant: u64) -> Result<(), StoreError> {
        let t = self
            .state
            .tenant_mut(tenant)
            .ok_or(StoreError::UnknownTenant(tenant))?;
        if t.tokens == 0 {
            self.stats.rate_denials += 1;
            return Err(StoreError::RateLimited { tenant });
        }
        // Unlimited buckets never drain (the single-tenant default).
        if t.tokens != u32::MAX {
            t.tokens -= 1;
        }
        Ok(())
    }

    /// Advance the rate-limit clock: refill every tenant's tokens.
    pub fn tick(&mut self) {
        self.state.tick();
    }

    // ------------------------------------------------------------------
    // Key access, eviction, reload
    // ------------------------------------------------------------------

    /// Look up the current key for `(tenant, epc)`, stamping the LRU clock
    /// and transparently reloading it if it was evicted. `Ok(None)` means
    /// the ticket is unknown, unbound, or revoked.
    pub fn key_for(&mut self, tenant: u64, epc: [u8; 12]) -> Result<Option<&[u8]>, StoreError> {
        self.access_clock += 1;
        let clock = self.access_clock;
        let needs_reload = matches!(
            self.state.ticket(tenant, &epc),
            Some(t) if t.evicted && !t.revoked
        );
        if needs_reload {
            self.reload_key(tenant, epc)?;
            // The reloaded key is the most recently used — protect it while
            // re-enforcing the ceiling.
            self.enforce_ceiling(Some((tenant, epc)))?;
        }
        match self.state.ticket_mut(tenant, &epc) {
            Some(t) => {
                t.last_access = clock;
                Ok(t.key.as_deref())
            }
            None => Ok(None),
        }
    }

    /// Non-mutating peek: returns the resident key only (an evicted key
    /// reads as `None`). For the reloading path use `key_for`.
    pub fn peek_key(&self, tenant: u64, epc: [u8; 12]) -> Option<&[u8]> {
        self.state
            .ticket(tenant, &epc)
            .and_then(|t| t.key.as_deref())
    }

    /// Reload one evicted key by scanning snapshot + journal for the last
    /// key event of this (tenant, epc).
    fn reload_key(&mut self, tenant: u64, epc: [u8; 12]) -> Result<(), StoreError> {
        let mut found: Option<(u32, Vec<u8>)> = None;
        if let Some(snap) = self.volume.read(SNAPSHOT_FILE)? {
            let (_, state_bytes) =
                decode_snapshot(&snap).map_err(StoreError::SnapshotCorrupted)?;
            let snap_state =
                StoreState::deserialize(&state_bytes).map_err(StoreError::SnapshotCorrupted)?;
            if let Some(t) = snap_state.ticket(tenant, &epc) {
                if let Some(k) = &t.key {
                    found = Some((t.generation, k.clone()));
                }
            }
        }
        let journal_bytes = self.volume.read(JOURNAL_FILE)?.unwrap_or_default();
        let replayed = journal::replay(&journal_bytes);
        for rec in &replayed.records {
            if rec.seq <= self.snapshot_seq {
                continue;
            }
            match &rec.body {
                RecordBody::KeyBound {
                    tenant: t,
                    epc: e,
                    generation,
                    key,
                }
                | RecordBody::KeyRotated {
                    tenant: t,
                    epc: e,
                    generation,
                    key,
                }
                | RecordBody::ReEnrolled {
                    tenant: t,
                    epc: e,
                    generation,
                    key,
                } if *t == tenant && *e == epc => {
                    found = Some((*generation, key.clone()));
                }
                RecordBody::TicketRevoked { tenant: t, epc: e } if *t == tenant && *e == epc => {
                    found = None;
                }
                _ => {}
            }
        }
        if let Some((_, key)) = found {
            self.state.set_key(tenant, &epc, Some(key), false);
            self.stats.reloads += 1;
        } else if let Some(t) = self.state.ticket_mut(tenant, &epc) {
            // Nothing reloadable (e.g. revoked meanwhile): clear the flag.
            t.evicted = false;
        }
        Ok(())
    }

    /// Evict least-recently-used resident keys until under the ceiling.
    fn enforce_ceiling(&mut self, protect: Option<(u64, [u8; 12])>) -> Result<(), StoreError> {
        if self.config.memory_ceiling_bytes == 0 {
            return Ok(());
        }
        while self.state.resident_bytes() > self.config.memory_ceiling_bytes {
            let Some((tenant, epc)) = self.state.lru_resident(protect) else {
                break;
            };
            self.state.set_key(tenant, &epc, None, true);
            self.stats.evictions_memory += 1;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Snapshots
    // ------------------------------------------------------------------

    /// Install a compacted snapshot and truncate the journal.
    ///
    /// Evicted keys are hydrated first: the journal is about to be
    /// truncated, so a snapshot with holes would lose them forever.
    pub fn snapshot(&mut self) -> Result<(), StoreError> {
        self.hydrate_all()?;
        let seq_through = self.next_seq - 1;
        let state_bytes = self.state.serialize();
        let snap = encode_snapshot(seq_through, &state_bytes);
        self.volume.write(SNAPSHOT_TMP, &snap)?;
        if let Err(e) = self.volume.rename(SNAPSHOT_TMP, SNAPSHOT_FILE) {
            // Old snapshot and journal remain authoritative; drop the tmp.
            self.stats.rename_failures += 1;
            let _ = self.volume.remove(SNAPSHOT_TMP);
            // Hydration may have pushed us over the ceiling; re-evict.
            self.enforce_ceiling(None)?;
            return Err(StoreError::SnapshotRename(match e {
                StoreError::Io(m) => m,
                other => other.to_string(),
            }));
        }
        // Commit point passed: journal records ≤ seq_through are redundant.
        self.volume.truncate(JOURNAL_FILE, 0)?;
        self.snapshot_seq = seq_through;
        self.appends_since_snapshot = 0;
        self.stats.snapshots += 1;
        self.enforce_ceiling(None)?;
        Ok(())
    }

    /// Reload every evicted key (used before snapshots and full-state
    /// comparisons).
    pub fn hydrate_all(&mut self) -> Result<(), StoreError> {
        for (tenant, epc) in self.state.evicted_epcs() {
            self.reload_key(tenant, epc)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Canonical bytes of the *fully hydrated* durable state — the
    /// bit-identical comparison basis the recovery soak uses.
    pub fn full_state_bytes(&mut self) -> Result<Vec<u8>, StoreError> {
        self.hydrate_all()?;
        Ok(self.state.serialize())
    }

    /// Stable digest of the fully hydrated durable state.
    pub fn full_digest(&mut self) -> Result<u64, StoreError> {
        Ok(crate::mix(crate::fnv_mix(&self.full_state_bytes()?)))
    }

    pub fn state(&self) -> &StoreState {
        &self.state
    }

    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Seq of the last acknowledged record.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Current journal length in bytes (for boundary-enumeration tests).
    pub fn journal_len(&self) -> Result<usize, StoreError> {
        self.volume.len(JOURNAL_FILE)
    }
}

/// Convenience: open a faulted in-memory store for soak harnesses.
pub fn open_faulted_mem(
    media: crate::media::MemVolume,
    plan: faults::StorageFaults,
    config: StoreConfig,
) -> Result<DurableStore, StoreError> {
    DurableStore::open(Box::new(faults::FaultedVolume::new(media, plan)), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{
        ScheduledStorageFault, StorageFaultKind, StorageFaults, StorageOp,
    };
    use crate::media::MemVolume;
    use crate::state::TICKET_OVERHEAD_BYTES;

    fn epc(i: u8) -> [u8; 12] {
        let mut e = [0u8; 12];
        e[0] = i;
        e[11] = i.wrapping_mul(7);
        e
    }

    fn key(i: u8) -> Vec<u8> {
        vec![i; 32]
    }

    #[test]
    fn kill_and_recover_is_bit_identical() {
        let media = MemVolume::new();
        let mut store =
            DurableStore::open(Box::new(media.clone()), StoreConfig::default()).unwrap();
        let t = store.create_tenant(TenantQuota::unlimited()).unwrap();
        for i in 0..10u8 {
            store.issue(t, epc(i), 1).unwrap();
            store.bind_key(t, epc(i), &key(i)).unwrap();
        }
        store.rotate_key(t, epc(3), &key(0xB3)).unwrap();
        store.revoke(t, epc(7)).unwrap();
        let want = store.full_state_bytes().unwrap();

        // "Kill": drop the store, reopen on a crash image of the media.
        drop(store);
        let mut back =
            DurableStore::open(Box::new(media.deep_clone()), StoreConfig::default()).unwrap();
        assert_eq!(back.full_state_bytes().unwrap(), want);
        assert_eq!(back.stats().replays, 1);
        assert!(back.stats().records_replayed >= 23);
        assert_eq!(back.key_for(t, epc(3)).unwrap(), Some(&key(0xB3)[..]));
        assert_eq!(back.key_for(t, epc(7)).unwrap(), None); // revoked
    }

    #[test]
    fn snapshot_compacts_and_recovery_is_equivalent() {
        let media = MemVolume::new();
        let mut store =
            DurableStore::open(Box::new(media.clone()), StoreConfig::default()).unwrap();
        let t = store.create_tenant(TenantQuota::unlimited()).unwrap();
        for i in 0..8u8 {
            store.issue(t, epc(i), 2).unwrap();
            store.bind_key(t, epc(i), &key(i)).unwrap();
        }
        store.snapshot().unwrap();
        assert_eq!(store.journal_len().unwrap(), 0, "journal truncated");
        // Post-snapshot tail.
        store.rotate_key(t, epc(1), &key(0xC1)).unwrap();
        store.issue(t, epc(20), 2).unwrap();
        let want = store.full_state_bytes().unwrap();

        let mut back =
            DurableStore::open(Box::new(media.deep_clone()), StoreConfig::default()).unwrap();
        assert_eq!(back.full_state_bytes().unwrap(), want);
        // Only the 2 tail records replay; the other 17 came from the snapshot.
        assert_eq!(back.stats().records_replayed, 2);
    }

    #[test]
    fn crash_between_rename_and_truncate_replays_idempotently() {
        let media = MemVolume::new();
        let mut store =
            DurableStore::open(Box::new(media.clone()), StoreConfig::default()).unwrap();
        let t = store.create_tenant(TenantQuota::unlimited()).unwrap();
        store.issue(t, epc(1), 1).unwrap();
        store.bind_key(t, epc(1), &key(1)).unwrap();
        store.rotate_key(t, epc(1), &key(2)).unwrap();
        let want = store.full_state_bytes().unwrap();

        // Simulate the torn protocol: install the snapshot by hand but
        // "crash" before the journal truncate — journal still holds all
        // records, snapshot covers them too.
        let seq = store.last_seq();
        let state_bytes = store.full_state_bytes().unwrap();
        let mut m = media.deep_clone();
        m.write(SNAPSHOT_FILE, &encode_snapshot(seq, &state_bytes))
            .unwrap();
        let mut back = DurableStore::open(Box::new(m), StoreConfig::default()).unwrap();
        assert_eq!(back.full_state_bytes().unwrap(), want);
        // All journal records were ≤ snapshot seq → skipped, not re-applied.
        assert_eq!(back.stats().records_replayed, 0);
        // Generation must not have double-advanced.
        assert_eq!(back.state().ticket(t, &epc(1)).unwrap().generation, 2);
    }

    #[test]
    fn torn_append_rolls_back_and_retry_succeeds() {
        let media = MemVolume::new();
        let plan = StorageFaults::scripted(
            3,
            vec![ScheduledStorageFault {
                op: StorageOp::Append,
                occurrence: 2,
                fault: StorageFaultKind::TornAppend,
            }],
        );
        let mut store = open_faulted_mem(media.clone(), plan, StoreConfig::default()).unwrap();
        let t = store.create_tenant(TenantQuota::unlimited()).unwrap();
        store.issue(t, epc(1), 1).unwrap();
        let before = store.journal_len().unwrap();
        let err = store.bind_key(t, epc(1), &key(1)).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        // Rollback: journal unchanged, state unchanged.
        assert_eq!(store.journal_len().unwrap(), before);
        assert_eq!(store.state().ticket(t, &epc(1)).unwrap().key, None);
        assert_eq!(store.stats().append_repairs, 1);
        // Retry lands.
        store.bind_key(t, epc(1), &key(1)).unwrap();
        assert_eq!(store.key_for(t, epc(1)).unwrap(), Some(&key(1)[..]));
        // And the media image is recoverable right now.
        let mut back =
            DurableStore::open(Box::new(media.deep_clone()), StoreConfig::default()).unwrap();
        assert_eq!(back.key_for(t, epc(1)).unwrap(), Some(&key(1)[..]));
    }

    #[test]
    fn failed_snapshot_rename_leaves_old_snapshot_and_journal_authoritative() {
        let media = MemVolume::new();
        let plan = StorageFaults::scripted(
            5,
            vec![ScheduledStorageFault {
                op: StorageOp::Rename,
                occurrence: 1, // the *second* snapshot fails
                fault: StorageFaultKind::RenameFail,
            }],
        );
        let mut store = open_faulted_mem(media.clone(), plan, StoreConfig::default()).unwrap();
        let t = store.create_tenant(TenantQuota::unlimited()).unwrap();
        store.issue(t, epc(1), 1).unwrap();
        store.bind_key(t, epc(1), &key(1)).unwrap();
        store.snapshot().unwrap(); // first snapshot installs

        store.rotate_key(t, epc(1), &key(2)).unwrap();
        let jlen = store.journal_len().unwrap();
        let err = store.snapshot().unwrap_err();
        assert!(matches!(err, StoreError::SnapshotRename(_)));
        assert_eq!(store.stats().rename_failures, 1);
        // Journal untouched by the failed install.
        assert_eq!(store.journal_len().unwrap(), jlen);
        let want = store.full_state_bytes().unwrap();
        // Recovery uses old snapshot + journal tail and agrees.
        let mut back =
            DurableStore::open(Box::new(media.deep_clone()), StoreConfig::default()).unwrap();
        assert_eq!(back.full_state_bytes().unwrap(), want);
        assert_eq!(back.state().ticket(t, &epc(1)).unwrap().generation, 2);
    }

    #[test]
    fn lru_eviction_under_ceiling_reloads_on_demand() {
        let media = MemVolume::new();
        // Room for ~3 keys of 32 bytes (overhead 64 + 32 = 96 each).
        let config = StoreConfig {
            memory_ceiling_bytes: 3 * (TICKET_OVERHEAD_BYTES + 32),
            snapshot_every: 0,
            salvage_corruption: false,
        };
        let mut store = DurableStore::open(Box::new(media.clone()), config).unwrap();
        let t = store.create_tenant(TenantQuota::unlimited()).unwrap();
        for i in 0..6u8 {
            store.issue(t, epc(i), 1).unwrap();
            store.bind_key(t, epc(i), &key(i)).unwrap();
        }
        assert_eq!(store.stats().evictions_memory, 3);
        assert!(store.state().resident_bytes() <= config.memory_ceiling_bytes);
        // Three keys were evicted; peek shows them gone...
        let evicted: Vec<u8> = (0..6u8).filter(|&i| store.peek_key(t, epc(i)).is_none()).collect();
        assert_eq!(evicted.len(), 3);
        // ...but key_for transparently reloads them from the journal.
        let victim = evicted[0];
        assert_eq!(store.key_for(t, epc(victim)).unwrap(), Some(&key(victim)[..]));
        assert_eq!(store.stats().reloads, 1);
        // Ceiling still holds after the reload (something else got evicted).
        assert!(store.state().resident_bytes() <= config.memory_ceiling_bytes);
        // Hydration + snapshot preserves every key even with evictions.
        store.snapshot().unwrap();
        let mut back = DurableStore::open(Box::new(media.deep_clone()), config).unwrap();
        for i in 0..6u8 {
            assert_eq!(
                back.key_for(t, epc(i)).unwrap(),
                Some(&key(i)[..]),
                "key {i} survived eviction + snapshot + recovery"
            );
        }
    }

    #[test]
    fn reload_sees_rotations_that_happened_after_eviction() {
        let media = MemVolume::new();
        let config = StoreConfig {
            memory_ceiling_bytes: TICKET_OVERHEAD_BYTES + 32, // exactly 1 key
            snapshot_every: 0,
            salvage_corruption: false,
        };
        let mut store = DurableStore::open(Box::new(media), config).unwrap();
        let t = store.create_tenant(TenantQuota::unlimited()).unwrap();
        store.issue(t, epc(1), 1).unwrap();
        store.issue(t, epc(2), 1).unwrap();
        store.bind_key(t, epc(1), &key(1)).unwrap();
        store.bind_key(t, epc(2), &key(2)).unwrap(); // evicts epc(1)
        assert_eq!(store.peek_key(t, epc(1)), None);
        // Rotate the *evicted* ticket: journal gains a newer generation.
        store.rotate_key(t, epc(1), &key(0xEE)).unwrap();
        assert_eq!(store.key_for(t, epc(1)).unwrap(), Some(&key(0xEE)[..]));
    }

    #[test]
    fn quotas_and_rate_limits_enforce_and_survive_recovery() {
        let media = MemVolume::new();
        let mut store =
            DurableStore::open(Box::new(media.clone()), StoreConfig::default()).unwrap();
        let quota = TenantQuota {
            max_tickets: 2,
            enroll_burst: 2,
            enroll_refill: 1,
        };
        let t = store.create_tenant(quota).unwrap();
        store.issue(t, epc(1), 1).unwrap();
        store.issue(t, epc(2), 1).unwrap();
        assert!(matches!(
            store.issue(t, epc(3), 1),
            Err(StoreError::QuotaExceeded { .. })
        ));
        assert_eq!(store.stats().quota_denials, 1);
        // Revoking frees a quota slot.
        store.revoke(t, epc(2)).unwrap();
        store.issue(t, epc(3), 1).unwrap();

        store.take_enroll_token(t).unwrap();
        store.take_enroll_token(t).unwrap();
        assert!(matches!(
            store.take_enroll_token(t),
            Err(StoreError::RateLimited { .. })
        ));
        store.tick();
        store.take_enroll_token(t).unwrap();

        // Quota config survives recovery (tokens reset to burst).
        let mut back =
            DurableStore::open(Box::new(media.deep_clone()), StoreConfig::default()).unwrap();
        assert_eq!(back.state().tenant(t).unwrap().quota, quota);
        assert!(matches!(
            back.issue(t, epc(9), 1),
            Err(StoreError::QuotaExceeded { .. })
        ));
        back.take_enroll_token(t).unwrap();
    }

    #[test]
    fn corruption_refuses_to_open_unless_salvage() {
        let media = MemVolume::new();
        let mut store =
            DurableStore::open(Box::new(media.clone()), StoreConfig::default()).unwrap();
        let t = store.create_tenant(TenantQuota::unlimited()).unwrap();
        for i in 0..5u8 {
            store.issue(t, epc(i), 1).unwrap();
        }
        // Rot a byte in the middle of the journal (record 2's payload).
        let mut image = media.deep_clone();
        let mut j = image.read(JOURNAL_FILE).unwrap().unwrap();
        let pos = j.len() / 2;
        j[pos] ^= 0x08;
        image.write(JOURNAL_FILE, &j).unwrap();

        let strict = DurableStore::open(Box::new(image.clone()), StoreConfig::default());
        assert!(matches!(strict, Err(StoreError::Corrupted { .. })));

        let salvage_cfg = StoreConfig {
            salvage_corruption: true,
            ..StoreConfig::default()
        };
        let salvaged = DurableStore::open(Box::new(image), salvage_cfg).unwrap();
        assert_eq!(salvaged.stats().salvaged, 1);
        // Salvage keeps an intact prefix — strictly fewer tickets, none wrong.
        let n = salvaged.state().tenant(t).map(|t| t.ticket_count()).unwrap_or(0);
        assert!(n < 5);
        for (e, ticket) in salvaged.state().tenant(t).unwrap().tickets() {
            assert_eq!(*e, epc(ticket.serial as u8), "salvaged ticket is genuine");
        }
    }

    #[test]
    fn auto_snapshot_fires_on_cadence() {
        let media = MemVolume::new();
        let config = StoreConfig {
            snapshot_every: 10,
            ..StoreConfig::default()
        };
        let mut store = DurableStore::open(Box::new(media.clone()), config).unwrap();
        let t = store.create_tenant(TenantQuota::unlimited()).unwrap();
        for i in 0..30u8 {
            store.issue(t, epc(i), 1).unwrap();
        }
        assert!(store.stats().snapshots >= 2);
        // Journal stays short because compaction keeps truncating it.
        let back = DurableStore::open(Box::new(media.deep_clone()), config).unwrap();
        assert!(back.stats().records_replayed < 11);
        assert_eq!(back.state().tenant(t).unwrap().ticket_count(), 30);
    }
}
