//! Storage media abstraction.
//!
//! [`Volume`] is the small set of primitives the store needs: whole-file
//! read, truncating write, append, truncate-to-length, atomic-ish rename,
//! remove, and length. [`MemVolume`] is the default for tests and benches —
//! cloning it yields a *shared handle* (the recovery soak holds one handle
//! while the store owns the other, and `deep_clone` freezes a crash image).
//! [`FileVolume`] maps the same primitives onto a directory of real files.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::StoreError;

/// Byte-level storage primitives under the journal and snapshot files.
pub trait Volume {
    /// Read a whole file. `Ok(None)` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError>;
    /// Create-or-replace a file with exactly `bytes`.
    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;
    /// Append to a file, creating it if missing.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;
    /// Shrink a file to `len` bytes (no-op if already shorter or missing).
    fn truncate(&mut self, name: &str, len: usize) -> Result<(), StoreError>;
    /// Rename `from` onto `to`, replacing `to`. The install step of the
    /// snapshot protocol; fault injection targets this.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError>;
    /// Delete a file; missing is not an error.
    fn remove(&mut self, name: &str) -> Result<(), StoreError>;
    /// Current length in bytes; 0 if missing.
    fn len(&self, name: &str) -> Result<usize, StoreError>;
}

/// In-memory volume. `Clone` shares the underlying files (a handle), so a
/// test can keep a handle while the store owns a `Box<dyn Volume>` of the
/// same media; `deep_clone` takes an independent crash image.
#[derive(Clone, Default)]
pub struct MemVolume {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemVolume {
    pub fn new() -> Self {
        Self::default()
    }

    /// Independent copy of the current media contents — "what would be on
    /// disk if the process died right now".
    pub fn deep_clone(&self) -> MemVolume {
        let files = self.files.lock().unwrap().clone();
        MemVolume {
            files: Arc::new(Mutex::new(files)),
        }
    }

    /// Snapshot of the file map, for byte-level assertions in tests.
    pub fn dump(&self) -> BTreeMap<String, Vec<u8>> {
        self.files.lock().unwrap().clone()
    }
}

impl core::fmt::Debug for MemVolume {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let files = self.files.lock().unwrap();
        let mut d = f.debug_map();
        for (name, bytes) in files.iter() {
            d.entry(name, &bytes.len());
        }
        d.finish()
    }
}

impl Volume for MemVolume {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.files.lock().unwrap().get(name).cloned())
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.files
            .lock()
            .unwrap()
            .insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.files
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: usize) -> Result<(), StoreError> {
        if let Some(f) = self.files.lock().unwrap().get_mut(name) {
            if f.len() > len {
                f.truncate(len);
            }
        }
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        let mut files = self.files.lock().unwrap();
        match files.remove(from) {
            Some(bytes) => {
                files.insert(to.to_string(), bytes);
                Ok(())
            }
            None => Err(StoreError::Io(format!("rename: no such file {from}"))),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        self.files.lock().unwrap().remove(name);
        Ok(())
    }

    fn len(&self, name: &str) -> Result<usize, StoreError> {
        Ok(self
            .files
            .lock()
            .unwrap()
            .get(name)
            .map(|f| f.len())
            .unwrap_or(0))
    }
}

/// Directory-backed volume over `std::fs`. Rename maps to `fs::rename`,
/// which is atomic on POSIX filesystems — the property the snapshot
/// protocol leans on.
#[derive(Debug, Clone)]
pub struct FileVolume {
    dir: PathBuf,
}

impl FileVolume {
    /// Open (creating if needed) a directory as a volume.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::Io(e.to_string()))?;
        Ok(FileVolume { dir })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Volume for FileVolume {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        std::fs::write(self.path(name), bytes).map_err(|e| StoreError::Io(e.to_string()))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| StoreError::Io(e.to_string()))?;
        f.write_all(bytes).map_err(|e| StoreError::Io(e.to_string()))
    }

    fn truncate(&mut self, name: &str, len: usize) -> Result<(), StoreError> {
        let path = self.path(name);
        match std::fs::OpenOptions::new().write(true).open(&path) {
            Ok(f) => {
                let cur = f
                    .metadata()
                    .map_err(|e| StoreError::Io(e.to_string()))?
                    .len();
                if cur > len as u64 {
                    f.set_len(len as u64)
                        .map_err(|e| StoreError::Io(e.to_string()))?;
                }
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        std::fs::rename(self.path(from), self.path(to))
            .map_err(|e| StoreError::Io(e.to_string()))
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }

    fn len(&self, name: &str) -> Result<usize, StoreError> {
        match std::fs::metadata(self.path(name)) {
            Ok(m) => Ok(m.len() as usize),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(StoreError::Io(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_volume_clone_is_shared_deep_clone_is_not() {
        let mut a = MemVolume::new();
        let handle = a.clone();
        a.append("j", b"one").unwrap();
        assert_eq!(handle.read("j").unwrap().unwrap(), b"one");

        let frozen = handle.deep_clone();
        a.append("j", b"two").unwrap();
        assert_eq!(frozen.read("j").unwrap().unwrap(), b"one");
        assert_eq!(handle.read("j").unwrap().unwrap(), b"onetwo");
    }

    #[test]
    fn mem_volume_primitives() {
        let mut v = MemVolume::new();
        assert_eq!(v.read("x").unwrap(), None);
        assert_eq!(v.len("x").unwrap(), 0);
        v.write("x", b"hello").unwrap();
        v.truncate("x", 2).unwrap();
        assert_eq!(v.read("x").unwrap().unwrap(), b"he");
        v.truncate("x", 100).unwrap(); // no-op growth
        assert_eq!(v.len("x").unwrap(), 2);
        v.rename("x", "y").unwrap();
        assert_eq!(v.read("x").unwrap(), None);
        assert_eq!(v.read("y").unwrap().unwrap(), b"he");
        assert!(v.rename("missing", "z").is_err());
        v.remove("y").unwrap();
        v.remove("y").unwrap(); // missing is fine
        assert_eq!(v.read("y").unwrap(), None);
    }

    #[test]
    fn file_volume_primitives() {
        let dir = std::env::temp_dir().join(format!(
            "wavekey-store-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut v = FileVolume::open(&dir).unwrap();
        assert_eq!(v.read("j").unwrap(), None);
        v.append("j", b"abc").unwrap();
        v.append("j", b"def").unwrap();
        assert_eq!(v.read("j").unwrap().unwrap(), b"abcdef");
        v.truncate("j", 4).unwrap();
        assert_eq!(v.len("j").unwrap(), 4);
        v.write("tmp", b"snap").unwrap();
        v.rename("tmp", "snap").unwrap();
        assert_eq!(v.read("snap").unwrap().unwrap(), b"snap");
        v.remove("snap").unwrap();
        assert_eq!(v.read("snap").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
