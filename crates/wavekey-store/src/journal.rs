//! Write-ahead journal framing and replay.
//!
//! The journal file is a plain concatenation of records
//! ([`crate::record::encode_record`]); append-only media means only the
//! tail can be damaged by a crash, and anything *before* a later valid
//! record that fails to decode must be bit rot. Replay turns a byte image
//! into the decodable record prefix plus a [`TailStatus`] that classifies
//! what stopped it:
//!
//! * [`TailStatus::Clean`] — the image ends exactly on a record boundary.
//! * [`TailStatus::TornTail`] — the tail is a torn write (truncated record,
//!   or damage with no valid record after it). Recovery truncates the file
//!   at `offset` and carries on: the torn record was never acknowledged.
//! * [`TailStatus::Corrupted`] — damage *followed by* a later decodable
//!   record, or a sequence-number discontinuity. This cannot be a torn
//!   tail; it is bit rot inside acknowledged history and is only repaired
//!   when the store is explicitly opened in salvage mode.

use crate::record::{decode_record, RecordError, HEADER_LEN};
use crate::record::{Record, MAGIC0, MAGIC1};

/// File name of the journal inside a volume.
pub const JOURNAL_FILE: &str = "journal.wal";

/// How replay's forward progress ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// Image ends exactly at a record boundary.
    Clean,
    /// Torn write at `offset`; bytes from there on were never a complete,
    /// acknowledged record. Safe to truncate.
    TornTail { offset: usize },
    /// Damage at `offset` with valid history after it (or a seq
    /// discontinuity): acknowledged records are unreadable.
    Corrupted { offset: usize },
}

/// Result of replaying a journal image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Records decoded, in order, up to the damage (if any).
    pub records: Vec<Record>,
    /// Tail classification.
    pub tail: TailStatus,
    /// Bytes consumed by `records` — the clean prefix length, which is the
    /// truncation point for torn-tail repair.
    pub consumed: usize,
}

/// Replay a journal byte image. Total: never panics on any input.
pub fn replay(bytes: &[u8]) -> Replay {
    let mut records: Vec<Record> = Vec::new();
    let mut offset = 0usize;
    loop {
        if offset == bytes.len() {
            return Replay {
                records,
                tail: TailStatus::Clean,
                consumed: offset,
            };
        }
        match decode_record(&bytes[offset..]) {
            Ok((rec, used)) => {
                if let Some(prev) = records.last() {
                    if rec.seq != prev.seq + 1 {
                        // Sequence discontinuity inside a decodable stream:
                        // records were lost or resurrected — not a tail
                        // condition, history is damaged.
                        return Replay {
                            records,
                            tail: TailStatus::Corrupted { offset },
                            consumed: offset,
                        };
                    }
                }
                records.push(rec);
                offset += used;
            }
            Err(err) => {
                let tail = classify_damage(bytes, offset, &err);
                return Replay {
                    records,
                    tail,
                    consumed: offset,
                };
            }
        }
    }
}

/// Distinguish a torn tail from mid-journal corruption: damage is only
/// "corruption" if a later, valid record proves acknowledged history
/// continues past it.
fn classify_damage(bytes: &[u8], offset: usize, err: &RecordError) -> TailStatus {
    // A truncation that reaches EOF is the canonical torn tail; no bytes
    // exist after it to scan.
    if let RecordError::Truncated { .. } = err {
        return TailStatus::TornTail { offset };
    }
    // Otherwise scan forward for a plausible record start that decodes.
    let mut p = offset + 1;
    while p + HEADER_LEN <= bytes.len() {
        if bytes[p] == MAGIC0 && bytes[p + 1] == MAGIC1 {
            if decode_record(&bytes[p..]).is_ok() {
                return TailStatus::Corrupted { offset };
            }
        }
        p += 1;
    }
    TailStatus::TornTail { offset }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_record, RecordBody};

    fn body(i: u32) -> RecordBody {
        RecordBody::TicketIssued {
            tenant: 1,
            epc: [i as u8; 12],
            model: 2,
            serial: i,
        }
    }

    fn journal_of(n: u64) -> (Vec<u8>, Vec<usize>) {
        let mut bytes = Vec::new();
        let mut boundaries = vec![0];
        for seq in 0..n {
            bytes.extend_from_slice(&encode_record(seq, &body(seq as u32)));
            boundaries.push(bytes.len());
        }
        (bytes, boundaries)
    }

    #[test]
    fn clean_journal_replays_fully() {
        let (bytes, _) = journal_of(20);
        let r = replay(&bytes);
        assert_eq!(r.tail, TailStatus::Clean);
        assert_eq!(r.records.len(), 20);
        assert_eq!(r.consumed, bytes.len());
        for (i, rec) in r.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
        }
    }

    #[test]
    fn truncation_at_every_byte_is_a_torn_tail_with_prefix_records() {
        let (bytes, boundaries) = journal_of(6);
        for cut in 0..bytes.len() {
            let r = replay(&bytes[..cut]);
            // The records recovered are exactly those fully before the cut.
            let full = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            assert_eq!(r.records.len(), full, "cut at {cut}");
            if boundaries.contains(&cut) {
                assert_eq!(r.tail, TailStatus::Clean, "cut at {cut} is a boundary");
            } else {
                let start = *boundaries.iter().filter(|&&b| b <= cut).max().unwrap();
                assert_eq!(
                    r.tail,
                    TailStatus::TornTail { offset: start },
                    "cut at {cut}"
                );
                assert_eq!(r.consumed, start);
            }
        }
    }

    #[test]
    fn mid_journal_bit_rot_is_corruption_not_a_torn_tail() {
        let (mut bytes, boundaries) = journal_of(8);
        // Flip a payload bit in record 3.
        let pos = boundaries[3] + HEADER_LEN + 2;
        bytes[pos] ^= 0x10;
        let r = replay(&bytes);
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.tail, TailStatus::Corrupted { offset: boundaries[3] });
        assert_eq!(r.consumed, boundaries[3]);
    }

    #[test]
    fn rot_in_the_final_record_reads_as_a_torn_tail() {
        // Damage with no valid record after it cannot be distinguished from
        // a torn write — and treating it as one is safe: the final record is
        // the only unacknowledgeable one.
        let (mut bytes, boundaries) = journal_of(4);
        let last = boundaries[3];
        bytes[last + HEADER_LEN + 1] ^= 0x40;
        let r = replay(&bytes);
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.tail, TailStatus::TornTail { offset: last });
    }

    #[test]
    fn seq_discontinuity_is_corruption() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(0, &body(0)));
        bytes.extend_from_slice(&encode_record(1, &body(1)));
        let gap_at = bytes.len();
        bytes.extend_from_slice(&encode_record(5, &body(5)));
        let r = replay(&bytes);
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.tail, TailStatus::Corrupted { offset: gap_at });
    }

    #[test]
    fn garbage_between_records_never_panics() {
        let (bytes, _) = journal_of(3);
        // Prepend garbage, inject garbage, append garbage — replay must
        // classify, not panic.
        let mut g1 = vec![0xDE, 0xAD, 0xBE, 0xEF];
        g1.extend_from_slice(&bytes);
        let r1 = replay(&g1);
        assert_eq!(r1.records.len(), 0);
        assert_eq!(r1.tail, TailStatus::Corrupted { offset: 0 });

        let mut g2 = bytes.clone();
        g2.extend_from_slice(&[0x57, 0x4A, 0xFF]); // magic then junk, truncated
        let r2 = replay(&g2);
        assert_eq!(r2.records.len(), 3);
        assert!(matches!(r2.tail, TailStatus::TornTail { .. }));
    }

    #[test]
    fn empty_journal_is_clean() {
        let r = replay(&[]);
        assert_eq!(r.records.len(), 0);
        assert_eq!(r.tail, TailStatus::Clean);
        assert_eq!(r.consumed, 0);
    }
}
