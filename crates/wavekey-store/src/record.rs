//! Journal record codec.
//!
//! One record on the wire (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0x57 0x4A ("WJ")
//! 2       1     version (JOURNAL_VERSION)
//! 3       1     kind tag
//! 4       8     seq  — monotonic sequence number
//! 12      4     payload length
//! 16      8     checksum over version ‖ kind ‖ seq ‖ payload
//! 24      n     payload (kind-specific)
//! ```
//!
//! Decoding is *total*: every malformed input maps to a [`RecordError`],
//! never a panic, mirroring the `proto::frame` discipline. Encoding is
//! canonical — `decode(encode(r)) == r` and re-encoding an accepted record
//! reproduces the input bytes bit-for-bit, which is what lets the recovery
//! soak compare journals byte-wise.

use crate::fnv_mix;

/// Journal format version; bump on any layout change.
pub const JOURNAL_VERSION: u8 = 1;

/// First magic byte, 'W'.
pub const MAGIC0: u8 = 0x57;
/// Second magic byte, 'J' — distinguishes journal records from wire frames
/// ("WK") and snapshots ("WS") when staring at hexdumps.
pub const MAGIC1: u8 = 0x4A;

/// Fixed header size preceding the payload.
pub const HEADER_LEN: usize = 24;

/// Upper bound on a record payload. Journals are made of small control
/// records; anything larger is corruption, not data.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Upper bound on a stored key. Session keys are 16–64 bytes in practice;
/// the slack covers future ladder outputs without letting a corrupted
/// length field allocate gigabytes.
pub const MAX_KEY_LEN: usize = 4096;

const EPC_LEN: usize = 12;

/// Typed decode failures. `Truncated` is special: at the journal tail it
/// means a torn write (crash mid-append), which recovery repairs silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// Input ended before the declared record did.
    Truncated { needed: usize, have: usize },
    /// First two bytes are not "WJ".
    BadMagic { found: [u8; 2] },
    /// Version tag is not one this build understands.
    UnknownVersion(u8),
    /// Kind tag does not map to a `RecordBody` variant.
    UnknownKind(u8),
    /// Declared payload length exceeds `MAX_PAYLOAD` (or a key exceeds
    /// `MAX_KEY_LEN`).
    Oversized { len: usize },
    /// Checksum mismatch — bit rot or a torn write that landed mid-record.
    ChecksumMismatch { expected: u64, found: u64 },
    /// Payload structure is wrong for the kind (bad inner length,
    /// trailing bytes, …).
    Malformed,
}

impl core::fmt::Display for RecordError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecordError::Truncated { needed, have } => {
                write!(f, "truncated record: need {needed} bytes, have {have}")
            }
            RecordError::BadMagic { found } => {
                write!(f, "bad magic {:02x}{:02x}", found[0], found[1])
            }
            RecordError::UnknownVersion(v) => write!(f, "unknown journal version {v}"),
            RecordError::UnknownKind(k) => write!(f, "unknown record kind {k}"),
            RecordError::Oversized { len } => write!(f, "oversized field: {len} bytes"),
            RecordError::ChecksumMismatch { expected, found } => {
                write!(f, "checksum mismatch: expected {expected:#x}, found {found:#x}")
            }
            RecordError::Malformed => write!(f, "malformed payload"),
        }
    }
}

impl std::error::Error for RecordError {}

/// The replayable events. Every mutation of durable state is exactly one
/// of these; replaying them in seq order reconstructs the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordBody {
    /// A tenant came into existence with its quota configuration.
    TenantCreated {
        tenant: u64,
        max_tickets: u32,
        enroll_burst: u32,
        enroll_refill: u32,
    },
    /// A ticket (EPC) was issued under a tenant.
    TicketIssued {
        tenant: u64,
        epc: [u8; EPC_LEN],
        model: u8,
        serial: u32,
    },
    /// First key bound to a ticket (initial enrolment).
    KeyBound {
        tenant: u64,
        epc: [u8; EPC_LEN],
        generation: u32,
        key: Vec<u8>,
    },
    /// Key rotated server-side (derived from the previous generation).
    KeyRotated {
        tenant: u64,
        epc: [u8; EPC_LEN],
        generation: u32,
        key: Vec<u8>,
    },
    /// Fresh over-the-air enrolment replacing an existing key.
    ReEnrolled {
        tenant: u64,
        epc: [u8; EPC_LEN],
        generation: u32,
        key: Vec<u8>,
    },
    /// Ticket revoked; its key material is dead.
    TicketRevoked { tenant: u64, epc: [u8; EPC_LEN] },
}

impl RecordBody {
    /// Kind tag for the header.
    pub fn kind(&self) -> u8 {
        match self {
            RecordBody::TenantCreated { .. } => 1,
            RecordBody::TicketIssued { .. } => 2,
            RecordBody::KeyBound { .. } => 3,
            RecordBody::KeyRotated { .. } => 4,
            RecordBody::ReEnrolled { .. } => 5,
            RecordBody::TicketRevoked { .. } => 6,
        }
    }

    /// Kind-specific payload bytes.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            RecordBody::TenantCreated {
                tenant,
                max_tickets,
                enroll_burst,
                enroll_refill,
            } => {
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(&max_tickets.to_le_bytes());
                out.extend_from_slice(&enroll_burst.to_le_bytes());
                out.extend_from_slice(&enroll_refill.to_le_bytes());
            }
            RecordBody::TicketIssued {
                tenant,
                epc,
                model,
                serial,
            } => {
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(epc);
                out.push(*model);
                out.extend_from_slice(&serial.to_le_bytes());
            }
            RecordBody::KeyBound {
                tenant,
                epc,
                generation,
                key,
            }
            | RecordBody::KeyRotated {
                tenant,
                epc,
                generation,
                key,
            }
            | RecordBody::ReEnrolled {
                tenant,
                epc,
                generation,
                key,
            } => {
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(epc);
                out.extend_from_slice(&generation.to_le_bytes());
                out.extend_from_slice(&(key.len() as u32).to_le_bytes());
                out.extend_from_slice(key);
            }
            RecordBody::TicketRevoked { tenant, epc } => {
                out.extend_from_slice(&tenant.to_le_bytes());
                out.extend_from_slice(epc);
            }
        }
        out
    }

    /// Total payload decoder for a given kind tag.
    pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<RecordBody, RecordError> {
        let mut cur = Cursor::new(payload);
        let body = match kind {
            1 => RecordBody::TenantCreated {
                tenant: cur.u64()?,
                max_tickets: cur.u32()?,
                enroll_burst: cur.u32()?,
                enroll_refill: cur.u32()?,
            },
            2 => RecordBody::TicketIssued {
                tenant: cur.u64()?,
                epc: cur.epc()?,
                model: cur.u8()?,
                serial: cur.u32()?,
            },
            3 | 4 | 5 => {
                let tenant = cur.u64()?;
                let epc = cur.epc()?;
                let generation = cur.u32()?;
                let klen = cur.u32()? as usize;
                if klen > MAX_KEY_LEN {
                    return Err(RecordError::Oversized { len: klen });
                }
                let key = cur.bytes(klen)?.to_vec();
                match kind {
                    3 => RecordBody::KeyBound {
                        tenant,
                        epc,
                        generation,
                        key,
                    },
                    4 => RecordBody::KeyRotated {
                        tenant,
                        epc,
                        generation,
                        key,
                    },
                    _ => RecordBody::ReEnrolled {
                        tenant,
                        epc,
                        generation,
                        key,
                    },
                }
            }
            6 => RecordBody::TicketRevoked {
                tenant: cur.u64()?,
                epc: cur.epc()?,
            },
            other => return Err(RecordError::UnknownKind(other)),
        };
        if !cur.done() {
            // Trailing payload bytes would silently survive a re-encode
            // mismatch; reject them.
            return Err(RecordError::Malformed);
        }
        Ok(body)
    }
}

/// A decoded journal record: sequence number plus body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    pub seq: u64,
    pub body: RecordBody,
}

/// Encode one record to its canonical byte form.
pub fn encode_record(seq: u64, body: &RecordBody) -> Vec<u8> {
    let payload = body.encode_payload();
    let kind = body.kind();
    let checksum = checksum_of(JOURNAL_VERSION, kind, seq, &payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.push(MAGIC0);
    out.push(MAGIC1);
    out.push(JOURNAL_VERSION);
    out.push(kind);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode one record from the front of `bytes`. On success returns the
/// record and the number of bytes consumed. Total: never panics.
pub fn decode_record(bytes: &[u8]) -> Result<(Record, usize), RecordError> {
    if bytes.len() < HEADER_LEN {
        return Err(RecordError::Truncated {
            needed: HEADER_LEN,
            have: bytes.len(),
        });
    }
    if bytes[0] != MAGIC0 || bytes[1] != MAGIC1 {
        return Err(RecordError::BadMagic {
            found: [bytes[0], bytes[1]],
        });
    }
    let version = bytes[2];
    if version != JOURNAL_VERSION {
        return Err(RecordError::UnknownVersion(version));
    }
    let kind = bytes[3];
    let seq = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let plen = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    if plen > MAX_PAYLOAD {
        return Err(RecordError::Oversized { len: plen });
    }
    let declared = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let total = HEADER_LEN + plen;
    if bytes.len() < total {
        return Err(RecordError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    let payload = &bytes[HEADER_LEN..total];
    let actual = checksum_of(version, kind, seq, payload);
    if actual != declared {
        return Err(RecordError::ChecksumMismatch {
            expected: declared,
            found: actual,
        });
    }
    let body = RecordBody::decode_payload(kind, payload)?;
    Ok((Record { seq, body }, total))
}

/// Checksum covering everything after the magic: the header fields that
/// select interpretation plus the payload.
pub fn checksum_of(version: u8, kind: u8, seq: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(10 + payload.len());
    buf.push(version);
    buf.push(kind);
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(payload);
    fnv_mix(&buf)
}

/// Minimal bounds-checked payload cursor.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        let end = self.pos.checked_add(n).ok_or(RecordError::Malformed)?;
        if end > self.buf.len() {
            return Err(RecordError::Malformed);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RecordError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, RecordError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, RecordError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn epc(&mut self) -> Result<[u8; EPC_LEN], RecordError> {
        Ok(self.bytes(EPC_LEN)?.try_into().unwrap())
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix;

    /// Tiny deterministic generator for the in-module fuzz (the crate is
    /// rand-free; the cargo-only proptest twin lives in
    /// `crates/wavekey-core/tests/properties.rs`).
    struct Gen(u64);

    impl Gen {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            mix(self.0)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }

        fn body(&mut self) -> RecordBody {
            let tenant = self.below(8) + 1;
            let mut epc = [0u8; 12];
            for b in epc.iter_mut() {
                *b = self.next() as u8;
            }
            let key: Vec<u8> = (0..self.below(48)).map(|_| self.next() as u8).collect();
            let generation = self.next() as u32;
            match self.below(6) {
                0 => RecordBody::TenantCreated {
                    tenant,
                    max_tickets: self.next() as u32,
                    enroll_burst: self.next() as u32,
                    enroll_refill: self.next() as u32,
                },
                1 => RecordBody::TicketIssued {
                    tenant,
                    epc,
                    model: self.next() as u8,
                    serial: self.next() as u32,
                },
                2 => RecordBody::KeyBound {
                    tenant,
                    epc,
                    generation,
                    key,
                },
                3 => RecordBody::KeyRotated {
                    tenant,
                    epc,
                    generation,
                    key,
                },
                4 => RecordBody::ReEnrolled {
                    tenant,
                    epc,
                    generation,
                    key,
                },
                _ => RecordBody::TicketRevoked { tenant, epc },
            }
        }
    }

    #[test]
    fn roundtrip_every_kind() {
        let mut g = Gen(0x5eed_0001);
        for i in 0..600u64 {
            let body = g.body();
            let bytes = encode_record(i, &body);
            let (rec, used) = decode_record(&bytes).expect("canonical bytes decode");
            assert_eq!(used, bytes.len());
            assert_eq!(rec.seq, i);
            assert_eq!(rec.body, body);
            // Canonical: re-encoding reproduces the bytes exactly.
            assert_eq!(encode_record(rec.seq, &rec.body), bytes);
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_typed_not_a_panic() {
        let mut g = Gen(0x5eed_0002);
        let body = g.body();
        let bytes = encode_record(7, &body);
        for cut in 0..bytes.len() {
            match decode_record(&bytes[..cut]) {
                Err(RecordError::Truncated { .. }) => {}
                other => panic!("cut at {cut} gave {other:?}, expected Truncated"),
            }
        }
    }

    #[test]
    fn random_mutations_never_panic_and_accepted_records_reencode_identically() {
        let mut g = Gen(0x5eed_0003);
        let mut accepted = 0u32;
        for i in 0..1500u64 {
            let body = g.body();
            let mut bytes = encode_record(i, &body);
            // 1–4 mutations: bit flips, byte stomps, truncations, extensions.
            for _ in 0..(g.below(4) + 1) {
                match g.below(4) {
                    0 if !bytes.is_empty() => {
                        let pos = g.below(bytes.len() as u64) as usize;
                        bytes[pos] ^= 1 << g.below(8);
                    }
                    1 if !bytes.is_empty() => {
                        let pos = g.below(bytes.len() as u64) as usize;
                        bytes[pos] = g.next() as u8;
                    }
                    2 if !bytes.is_empty() => {
                        let cut = g.below(bytes.len() as u64) as usize;
                        bytes.truncate(cut);
                    }
                    _ => {
                        for _ in 0..g.below(9) {
                            bytes.push(g.next() as u8);
                        }
                    }
                }
            }
            // Must not panic, whatever the bytes look like now.
            if let Ok((rec, used)) = decode_record(&bytes) {
                accepted += 1;
                // Anything accepted must re-encode bit-identically to the
                // prefix it was decoded from.
                assert_eq!(encode_record(rec.seq, &rec.body), bytes[..used].to_vec());
            }
        }
        // Sanity: the mutation mix should leave a few records intact-enough
        // to take the accept path (e.g. trailing extensions).
        assert!(accepted > 0, "mutation fuzz never exercised the accept path");
    }

    #[test]
    fn bit_flips_are_rejected_with_checksum_or_structural_errors() {
        let mut g = Gen(0x5eed_0004);
        let body = g.body();
        let bytes = encode_record(41, &body);
        for bit in 0..(bytes.len() * 8) {
            let mut m = bytes.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            match decode_record(&m) {
                // A flip can only be "accepted" if it never reaches the
                // checksummed region (impossible: magic/length/checksum and
                // payload are all covered or structural).
                Ok(_) => panic!("bit {bit} flip was accepted"),
                Err(_) => {}
            }
        }
    }

    #[test]
    fn oversized_length_fields_are_bounded() {
        let body = RecordBody::TicketRevoked {
            tenant: 1,
            epc: [9; 12],
        };
        let mut bytes = encode_record(1, &body);
        bytes[12..16].copy_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        assert_eq!(
            decode_record(&bytes),
            Err(RecordError::Oversized {
                len: MAX_PAYLOAD + 1
            })
        );
    }

    #[test]
    fn unknown_version_and_kind_are_typed() {
        let body = RecordBody::TicketRevoked {
            tenant: 1,
            epc: [0; 12],
        };
        let mut v = encode_record(1, &body);
        v[2] = 9;
        assert_eq!(decode_record(&v), Err(RecordError::UnknownVersion(9)));

        // Unknown kind: rebuild with a valid checksum so the kind check is
        // what fires (checksum covers the kind byte).
        let payload = body.encode_payload();
        let mut k = Vec::new();
        k.push(MAGIC0);
        k.push(MAGIC1);
        k.push(JOURNAL_VERSION);
        k.push(200);
        k.extend_from_slice(&1u64.to_le_bytes());
        k.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        k.extend_from_slice(&checksum_of(JOURNAL_VERSION, 200, 1, &payload).to_le_bytes());
        k.extend_from_slice(&payload);
        assert_eq!(decode_record(&k), Err(RecordError::UnknownKind(200)));
    }

    #[test]
    fn trailing_payload_bytes_are_malformed() {
        let body = RecordBody::TicketRevoked {
            tenant: 3,
            epc: [1; 12],
        };
        let mut payload = body.encode_payload();
        payload.push(0xAA);
        let mut bytes = Vec::new();
        bytes.push(MAGIC0);
        bytes.push(MAGIC1);
        bytes.push(JOURNAL_VERSION);
        bytes.push(6);
        bytes.extend_from_slice(&5u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&checksum_of(JOURNAL_VERSION, 6, 5, &payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert_eq!(decode_record(&bytes), Err(RecordError::Malformed));
    }
}
