//! The replayable tenant/ticket/key state machine.
//!
//! `StoreState` is a pure fold over journal records: `apply` is total and
//! deterministic, so any two replays of the same record prefix are
//! bit-identical — the property the recovery soak gates on. Tickets are
//! held in sharded per-tenant maps (EPC-hash sharding) so hot multi-tenant
//! lookups don't contend on one tree; canonical serialization iterates
//! tenants, shards and EPCs in a fixed order and excludes every ephemeral
//! field (LRU stamps, rate-limit tokens), making `serialize()` a stable
//! fingerprint of durable state.

use std::collections::BTreeMap;

use crate::record::{RecordBody, RecordError, MAX_KEY_LEN};
use crate::{fnv_mix, mix};

/// Number of ticket shards per tenant. Eight keeps trees shallow for the
/// fleet sizes the gateway soak drives without bloating tiny tenants.
pub const TICKET_SHARDS: usize = 8;

/// Serialization format version for snapshots.
pub const STATE_VERSION: u8 = 1;

/// Fixed per-ticket bookkeeping cost used by the memory-ceiling
/// accounting: EPC + serial/generation/flags + map overhead estimate.
pub const TICKET_OVERHEAD_BYTES: usize = 64;

/// Durable per-tenant quota configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum live (unrevoked) tickets.
    pub max_tickets: u32,
    /// Enrolment token-bucket capacity.
    pub enroll_burst: u32,
    /// Tokens refilled per `tick()`.
    pub enroll_refill: u32,
}

impl TenantQuota {
    /// Effectively no limits — the default tenant of a single-tenant
    /// service behaves exactly like the pre-durability `AccessService`.
    pub fn unlimited() -> Self {
        TenantQuota {
            max_tickets: u32::MAX,
            enroll_burst: u32::MAX,
            enroll_refill: u32::MAX,
        }
    }
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota::unlimited()
    }
}

/// One issued ticket (EPC) and its key lineage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TicketState {
    /// Tag model byte recorded at issue time.
    pub model: u8,
    /// Issue serial (doubles as lineup queue position).
    pub serial: u32,
    /// Key generation: 0 = never bound, then 1, 2, … per bind/rotate.
    pub generation: u32,
    /// Current key material; `None` when unbound, revoked, or evicted.
    pub key: Option<Vec<u8>>,
    /// Ticket has been revoked; key material is gone for good.
    pub revoked: bool,
    /// Ephemeral: key was evicted under memory pressure and can be
    /// reloaded from the journal. Never serialized.
    pub evicted: bool,
    /// Ephemeral: LRU stamp. Never serialized.
    pub last_access: u64,
}

/// One tenant: quota, serial counter, and sharded tickets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantState {
    pub quota: TenantQuota,
    pub next_serial: u32,
    shards: Vec<BTreeMap<[u8; 12], TicketState>>,
    /// Ephemeral enrolment tokens (refilled by `tick`). Never serialized.
    pub tokens: u32,
}

impl TenantState {
    fn new(quota: TenantQuota) -> Self {
        TenantState {
            quota,
            next_serial: 0,
            shards: vec![BTreeMap::new(); TICKET_SHARDS],
            tokens: quota.enroll_burst,
        }
    }

    fn shard_of(epc: &[u8; 12]) -> usize {
        (fnv_mix(epc) % TICKET_SHARDS as u64) as usize
    }

    pub fn ticket(&self, epc: &[u8; 12]) -> Option<&TicketState> {
        self.shards[Self::shard_of(epc)].get(epc)
    }

    pub fn ticket_mut(&mut self, epc: &[u8; 12]) -> Option<&mut TicketState> {
        self.shards[Self::shard_of(epc)].get_mut(epc)
    }

    /// Iterate tickets in canonical order (shard index, then EPC).
    pub fn tickets(&self) -> impl Iterator<Item = (&[u8; 12], &TicketState)> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    fn tickets_mut(&mut self) -> impl Iterator<Item = (&[u8; 12], &mut TicketState)> {
        self.shards.iter_mut().flat_map(|s| s.iter_mut())
    }

    /// Live (unrevoked) ticket count, for quota checks.
    pub fn live_tickets(&self) -> usize {
        self.tickets().filter(|(_, t)| !t.revoked).count()
    }

    pub fn ticket_count(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
}

/// The whole durable state: tenants by id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreState {
    pub tenants: BTreeMap<u64, TenantState>,
    /// Bytes of resident key material plus per-ticket overhead, maintained
    /// incrementally by `apply`/evict/reload — the memory-ceiling input.
    resident_bytes: usize,
}

impl StoreState {
    pub fn new() -> Self {
        StoreState::default()
    }

    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    pub fn tenant(&self, id: u64) -> Option<&TenantState> {
        self.tenants.get(&id)
    }

    pub fn tenant_mut(&mut self, id: u64) -> Option<&mut TenantState> {
        self.tenants.get_mut(&id)
    }

    pub fn ticket(&self, tenant: u64, epc: &[u8; 12]) -> Option<&TicketState> {
        self.tenants.get(&tenant).and_then(|t| t.ticket(epc))
    }

    pub fn ticket_mut(&mut self, tenant: u64, epc: &[u8; 12]) -> Option<&mut TicketState> {
        self.tenants.get_mut(&tenant).and_then(|t| t.ticket_mut(epc))
    }

    fn cost_of(key: &Option<Vec<u8>>) -> usize {
        key.as_ref().map(|k| TICKET_OVERHEAD_BYTES + k.len()).unwrap_or(0)
    }

    /// Replace a ticket's key, keeping the resident-bytes counter honest.
    /// Every key mutation in the crate funnels through here.
    pub(crate) fn set_key(
        &mut self,
        tenant: u64,
        epc: &[u8; 12],
        key: Option<Vec<u8>>,
        evicted: bool,
    ) {
        // Compute before taking the &mut borrow.
        let new_cost = Self::cost_of(&key);
        if let Some(t) = self.ticket_mut(tenant, epc) {
            let old_cost = Self::cost_of(&t.key);
            t.key = key;
            t.evicted = evicted;
            self.resident_bytes = self.resident_bytes - old_cost + new_cost;
        }
    }

    /// Fold one journal record into the state. Total and deterministic:
    /// records referencing unknown tenants or tickets create them with
    /// neutral defaults rather than failing — replay must accept any
    /// record sequence the journal actually holds (the *store*'s public
    /// API enforces existence before appending).
    pub fn apply(&mut self, body: &RecordBody) {
        match body {
            RecordBody::TenantCreated {
                tenant,
                max_tickets,
                enroll_burst,
                enroll_refill,
            } => {
                let quota = TenantQuota {
                    max_tickets: *max_tickets,
                    enroll_burst: *enroll_burst,
                    enroll_refill: *enroll_refill,
                };
                // Idempotent re-create updates the quota but keeps tickets.
                match self.tenants.get_mut(tenant) {
                    Some(t) => {
                        t.quota = quota;
                        t.tokens = t.tokens.min(quota.enroll_burst);
                    }
                    None => {
                        self.tenants.insert(*tenant, TenantState::new(quota));
                    }
                }
            }
            RecordBody::TicketIssued {
                tenant,
                epc,
                model,
                serial,
            } => {
                let t = self
                    .tenants
                    .entry(*tenant)
                    .or_insert_with(|| TenantState::new(TenantQuota::unlimited()));
                let shard = TenantState::shard_of(epc);
                let entry = t.shards[shard].entry(*epc).or_insert(TicketState {
                    model: *model,
                    serial: *serial,
                    generation: 0,
                    key: None,
                    revoked: false,
                    evicted: false,
                    last_access: 0,
                });
                // Re-issue of an existing EPC refreshes model/serial and
                // clears revocation (a new physical tag took the slot).
                entry.model = *model;
                entry.serial = *serial;
                entry.revoked = false;
                t.next_serial = t.next_serial.max(serial.wrapping_add(1));
            }
            RecordBody::KeyBound {
                tenant,
                epc,
                generation,
                key,
            }
            | RecordBody::KeyRotated {
                tenant,
                epc,
                generation,
                key,
            }
            | RecordBody::ReEnrolled {
                tenant,
                epc,
                generation,
                key,
            } => {
                // Ensure the ticket exists (neutral defaults on replay of a
                // journal whose issue record predates the snapshot window).
                let t = self
                    .tenants
                    .entry(*tenant)
                    .or_insert_with(|| TenantState::new(TenantQuota::unlimited()));
                let shard = TenantState::shard_of(epc);
                t.shards[shard].entry(*epc).or_insert(TicketState {
                    model: 0xFF,
                    serial: 0,
                    generation: 0,
                    key: None,
                    revoked: false,
                    evicted: false,
                    last_access: 0,
                });
                if let Some(ticket) = self.ticket_mut(*tenant, epc) {
                    ticket.generation = *generation;
                    ticket.revoked = false;
                }
                self.set_key(*tenant, epc, Some(key.clone()), false);
            }
            RecordBody::TicketRevoked { tenant, epc } => {
                if let Some(t) = self.ticket_mut(*tenant, epc) {
                    t.revoked = true;
                }
                self.set_key(*tenant, epc, None, false);
            }
        }
    }

    /// EPCs whose keys are currently evicted (for hydration).
    pub fn evicted_epcs(&self) -> Vec<(u64, [u8; 12])> {
        let mut out = Vec::new();
        for (id, t) in &self.tenants {
            for (epc, ticket) in t.tickets() {
                if ticket.evicted {
                    out.push((*id, *epc));
                }
            }
        }
        out
    }

    /// The least-recently-accessed resident key, excluding `protect`.
    /// Returns `(tenant, epc)` or `None` if nothing is evictable.
    pub fn lru_resident(&self, protect: Option<(u64, [u8; 12])>) -> Option<(u64, [u8; 12])> {
        let mut best: Option<(u64, [u8; 12], u64)> = None;
        for (id, t) in &self.tenants {
            for (epc, ticket) in t.tickets() {
                if ticket.key.is_none() {
                    continue;
                }
                if protect == Some((*id, *epc)) {
                    continue;
                }
                let stamp = ticket.last_access;
                if best.map(|(_, _, s)| stamp < s).unwrap_or(true) {
                    best = Some((*id, *epc, stamp));
                }
            }
        }
        best.map(|(id, epc, _)| (id, epc))
    }

    /// Refill every tenant's enrolment tokens by its quota's refill rate.
    pub fn tick(&mut self) {
        for t in self.tenants.values_mut() {
            t.tokens = t.tokens.saturating_add(t.quota.enroll_refill).min(t.quota.enroll_burst);
        }
    }

    /// Canonical serialization of durable state. Ephemeral fields (LRU
    /// stamps, tokens, eviction flags) are excluded, so two states that
    /// agree on durable content serialize bit-identically.
    ///
    /// Callers must hydrate evicted keys first (`DurableStore` does); a
    /// state serialized with holes would "forget" keys on snapshot.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(STATE_VERSION);
        out.extend_from_slice(&(self.tenants.len() as u32).to_le_bytes());
        for (id, t) in &self.tenants {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&t.quota.max_tickets.to_le_bytes());
            out.extend_from_slice(&t.quota.enroll_burst.to_le_bytes());
            out.extend_from_slice(&t.quota.enroll_refill.to_le_bytes());
            out.extend_from_slice(&t.next_serial.to_le_bytes());
            out.extend_from_slice(&(t.ticket_count() as u32).to_le_bytes());
            for (epc, ticket) in t.tickets() {
                out.extend_from_slice(epc);
                out.push(ticket.model);
                out.extend_from_slice(&ticket.serial.to_le_bytes());
                out.extend_from_slice(&ticket.generation.to_le_bytes());
                out.push(ticket.revoked as u8);
                match &ticket.key {
                    Some(k) => {
                        out.push(1);
                        out.extend_from_slice(&(k.len() as u32).to_le_bytes());
                        out.extend_from_slice(k);
                    }
                    None => out.push(0),
                }
            }
        }
        out
    }

    /// Total deserializer for `serialize` output.
    pub fn deserialize(bytes: &[u8]) -> Result<StoreState, RecordError> {
        let mut cur = SCursor { buf: bytes, pos: 0 };
        let version = cur.u8()?;
        if version != STATE_VERSION {
            return Err(RecordError::UnknownVersion(version));
        }
        let ntenants = cur.u32()? as usize;
        let mut state = StoreState::new();
        for _ in 0..ntenants {
            let id = cur.u64()?;
            let quota = TenantQuota {
                max_tickets: cur.u32()?,
                enroll_burst: cur.u32()?,
                enroll_refill: cur.u32()?,
            };
            let next_serial = cur.u32()?;
            let ntickets = cur.u32()? as usize;
            let mut tenant = TenantState::new(quota);
            tenant.next_serial = next_serial;
            for _ in 0..ntickets {
                let epc: [u8; 12] = cur.bytes(12)?.try_into().unwrap();
                let model = cur.u8()?;
                let serial = cur.u32()?;
                let generation = cur.u32()?;
                let revoked = cur.u8()? != 0;
                let key = if cur.u8()? != 0 {
                    let klen = cur.u32()? as usize;
                    if klen > MAX_KEY_LEN {
                        return Err(RecordError::Oversized { len: klen });
                    }
                    Some(cur.bytes(klen)?.to_vec())
                } else {
                    None
                };
                state.resident_bytes += Self::cost_of(&key);
                let shard = TenantState::shard_of(&epc);
                tenant.shards[shard].insert(
                    epc,
                    TicketState {
                        model,
                        serial,
                        generation,
                        key,
                        revoked,
                        evicted: false,
                        last_access: 0,
                    },
                );
            }
            state.tenants.insert(id, tenant);
        }
        if cur.pos != bytes.len() {
            return Err(RecordError::Malformed);
        }
        Ok(state)
    }

    /// Stable 64-bit fingerprint of durable state.
    pub fn digest(&self) -> u64 {
        mix(fnv_mix(&self.serialize()))
    }

    /// Durable equality ignoring ephemeral fields — compares canonical
    /// serializations, so eviction flags and LRU stamps don't matter.
    pub fn durably_equals(&self, other: &StoreState) -> bool {
        self.serialize() == other.serialize()
    }

    /// Clear ephemeral per-ticket stamps (used when comparing a live state
    /// against a freshly replayed one in tests).
    pub fn clear_ephemeral(&mut self) {
        for t in self.tenants.values_mut() {
            for (_, ticket) in t.tickets_mut() {
                ticket.last_access = 0;
            }
        }
    }
}

struct SCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SCursor<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        let end = self.pos.checked_add(n).ok_or(RecordError::Malformed)?;
        if end > self.buf.len() {
            return Err(RecordError::Truncated {
                needed: end,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RecordError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, RecordError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, RecordError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epc(i: u8) -> [u8; 12] {
        [i; 12]
    }

    #[test]
    fn apply_is_deterministic_and_replay_reconstructs() {
        let records = vec![
            RecordBody::TenantCreated {
                tenant: 1,
                max_tickets: 10,
                enroll_burst: 5,
                enroll_refill: 1,
            },
            RecordBody::TicketIssued {
                tenant: 1,
                epc: epc(1),
                model: 2,
                serial: 0,
            },
            RecordBody::KeyBound {
                tenant: 1,
                epc: epc(1),
                generation: 1,
                key: vec![9; 32],
            },
            RecordBody::KeyRotated {
                tenant: 1,
                epc: epc(1),
                generation: 2,
                key: vec![7; 32],
            },
            RecordBody::TicketIssued {
                tenant: 1,
                epc: epc(2),
                model: 3,
                serial: 1,
            },
            RecordBody::TicketRevoked {
                tenant: 1,
                epc: epc(2),
            },
        ];
        let mut a = StoreState::new();
        let mut b = StoreState::new();
        for r in &records {
            a.apply(r);
            b.apply(r);
        }
        assert!(a.durably_equals(&b));
        assert_eq!(a.digest(), b.digest());

        let t1 = a.ticket(1, &epc(1)).unwrap();
        assert_eq!(t1.generation, 2);
        assert_eq!(t1.key.as_deref(), Some(&[7u8; 32][..]));
        let t2 = a.ticket(1, &epc(2)).unwrap();
        assert!(t2.revoked);
        assert_eq!(t2.key, None);
        assert_eq!(a.tenant(1).unwrap().live_tickets(), 1);
        assert_eq!(a.tenant(1).unwrap().next_serial, 2);
    }

    #[test]
    fn serialize_roundtrips_and_is_canonical() {
        let mut s = StoreState::new();
        s.apply(&RecordBody::TenantCreated {
            tenant: 2,
            max_tickets: 3,
            enroll_burst: 2,
            enroll_refill: 1,
        });
        for i in 0..6u8 {
            s.apply(&RecordBody::TicketIssued {
                tenant: (i % 2) as u64 + 1,
                epc: epc(i),
                model: i,
                serial: i as u32,
            });
            if i % 2 == 0 {
                s.apply(&RecordBody::KeyBound {
                    tenant: (i % 2) as u64 + 1,
                    epc: epc(i),
                    generation: 1,
                    key: vec![i; 24],
                });
            }
        }
        let bytes = s.serialize();
        let back = StoreState::deserialize(&bytes).unwrap();
        assert!(back.durably_equals(&s));
        assert_eq!(back.serialize(), bytes);
        assert_eq!(back.resident_bytes(), s.resident_bytes());
    }

    #[test]
    fn deserialize_is_total_on_mutated_bytes() {
        let mut s = StoreState::new();
        for i in 0..4u8 {
            s.apply(&RecordBody::TicketIssued {
                tenant: 1,
                epc: epc(i),
                model: 1,
                serial: i as u32,
            });
            s.apply(&RecordBody::KeyBound {
                tenant: 1,
                epc: epc(i),
                generation: 1,
                key: vec![i; 16],
            });
        }
        let bytes = s.serialize();
        // Truncations.
        for cut in 0..bytes.len() {
            let _ = StoreState::deserialize(&bytes[..cut]); // must not panic
        }
        // Single-byte stomps.
        for pos in 0..bytes.len() {
            let mut m = bytes.clone();
            m[pos] = m[pos].wrapping_add(0x41);
            let _ = StoreState::deserialize(&m); // must not panic
        }
    }

    #[test]
    fn resident_bytes_tracks_key_material() {
        let mut s = StoreState::new();
        s.apply(&RecordBody::TicketIssued {
            tenant: 1,
            epc: epc(1),
            model: 1,
            serial: 0,
        });
        assert_eq!(s.resident_bytes(), 0);
        s.apply(&RecordBody::KeyBound {
            tenant: 1,
            epc: epc(1),
            generation: 1,
            key: vec![0; 32],
        });
        assert_eq!(s.resident_bytes(), TICKET_OVERHEAD_BYTES + 32);
        s.apply(&RecordBody::KeyRotated {
            tenant: 1,
            epc: epc(1),
            generation: 2,
            key: vec![0; 48],
        });
        assert_eq!(s.resident_bytes(), TICKET_OVERHEAD_BYTES + 48);
        s.set_key(1, &epc(1), None, true); // evict
        assert_eq!(s.resident_bytes(), 0);
        s.apply(&RecordBody::TicketRevoked {
            tenant: 1,
            epc: epc(1),
        });
        assert_eq!(s.resident_bytes(), 0);
    }

    #[test]
    fn tick_refills_tokens_to_burst_cap() {
        let mut s = StoreState::new();
        s.apply(&RecordBody::TenantCreated {
            tenant: 1,
            max_tickets: 10,
            enroll_burst: 3,
            enroll_refill: 2,
        });
        let t = s.tenant_mut(1).unwrap();
        t.tokens = 0;
        s.tick();
        assert_eq!(s.tenant(1).unwrap().tokens, 2);
        s.tick();
        assert_eq!(s.tenant(1).unwrap().tokens, 3); // capped at burst
    }

    #[test]
    fn lru_resident_picks_oldest_and_respects_protection() {
        let mut s = StoreState::new();
        for i in 0..3u8 {
            s.apply(&RecordBody::TicketIssued {
                tenant: 1,
                epc: epc(i),
                model: 1,
                serial: i as u32,
            });
            s.apply(&RecordBody::KeyBound {
                tenant: 1,
                epc: epc(i),
                generation: 1,
                key: vec![i; 16],
            });
        }
        s.ticket_mut(1, &epc(0)).unwrap().last_access = 5;
        s.ticket_mut(1, &epc(1)).unwrap().last_access = 2;
        s.ticket_mut(1, &epc(2)).unwrap().last_access = 9;
        assert_eq!(s.lru_resident(None), Some((1, epc(1))));
        assert_eq!(s.lru_resident(Some((1, epc(1)))), Some((1, epc(0))));
    }
}
