//! Snapshot file codec and the compaction protocol.
//!
//! A snapshot is the canonical state serialization wrapped in a
//! checksummed header recording the journal sequence number it covers:
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0x57 0x53 ("WS")
//! 2       1     version
//! 3       1     reserved (0)
//! 4       8     seq_through — last journal seq folded into this snapshot
//! 12      4     payload length
//! 16      8     checksum over version ‖ seq_through ‖ payload
//! 24      n     payload (StoreState::serialize bytes)
//! ```
//!
//! Install protocol (see DESIGN.md §16): write `snapshot.tmp`, rename onto
//! `snapshot.bin`, then truncate the journal. Rename is the commit point —
//! a crash before it leaves the old snapshot authoritative; a crash after
//! it but before the truncate leaves journal records with
//! `seq ≤ seq_through`, which replay skips idempotently.

use crate::record::RecordError;
use crate::state::STATE_VERSION;
use crate::fnv_mix;

/// Installed snapshot file name.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Scratch name the snapshot is written to before the install rename.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

const MAGIC0: u8 = 0x57;
const MAGIC1: u8 = 0x53;
const HEADER_LEN: usize = 24;

/// Snapshot payloads hold whole-state serializations; bound them well
/// above any realistic fleet but below "corrupted length field".
const MAX_SNAPSHOT: usize = 1 << 28;

/// Encode a snapshot covering journal records up to and including
/// `seq_through`.
pub fn encode_snapshot(seq_through: u64, state_bytes: &[u8]) -> Vec<u8> {
    let checksum = checksum_of(STATE_VERSION, seq_through, state_bytes);
    let mut out = Vec::with_capacity(HEADER_LEN + state_bytes.len());
    out.push(MAGIC0);
    out.push(MAGIC1);
    out.push(STATE_VERSION);
    out.push(0);
    out.extend_from_slice(&seq_through.to_le_bytes());
    out.extend_from_slice(&(state_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum.to_le_bytes());
    out.extend_from_slice(state_bytes);
    out
}

/// Total decoder: returns `(seq_through, state_bytes)`.
pub fn decode_snapshot(bytes: &[u8]) -> Result<(u64, Vec<u8>), RecordError> {
    if bytes.len() < HEADER_LEN {
        return Err(RecordError::Truncated {
            needed: HEADER_LEN,
            have: bytes.len(),
        });
    }
    if bytes[0] != MAGIC0 || bytes[1] != MAGIC1 {
        return Err(RecordError::BadMagic {
            found: [bytes[0], bytes[1]],
        });
    }
    let version = bytes[2];
    if version != STATE_VERSION {
        return Err(RecordError::UnknownVersion(version));
    }
    if bytes[3] != 0 {
        // Reserved byte is outside the checksum; reject any value other
        // than the one we write so bit flips there cannot be accepted.
        return Err(RecordError::Malformed);
    }
    let seq_through = u64::from_le_bytes(bytes[4..12].try_into().unwrap());
    let plen = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    if plen > MAX_SNAPSHOT {
        return Err(RecordError::Oversized { len: plen });
    }
    let declared = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let total = HEADER_LEN + plen;
    if bytes.len() < total {
        return Err(RecordError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(RecordError::Malformed);
    }
    let payload = &bytes[HEADER_LEN..total];
    let actual = checksum_of(version, seq_through, payload);
    if actual != declared {
        return Err(RecordError::ChecksumMismatch {
            expected: declared,
            found: actual,
        });
    }
    Ok((seq_through, payload.to_vec()))
}

fn checksum_of(version: u8, seq_through: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(9 + payload.len());
    buf.push(version);
    buf.extend_from_slice(&seq_through.to_le_bytes());
    buf.extend_from_slice(payload);
    fnv_mix(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordBody;
    use crate::state::StoreState;

    #[test]
    fn snapshot_roundtrips() {
        let mut s = StoreState::new();
        s.apply(&RecordBody::TicketIssued {
            tenant: 1,
            epc: [3; 12],
            model: 1,
            serial: 0,
        });
        let state_bytes = s.serialize();
        let snap = encode_snapshot(41, &state_bytes);
        let (seq, back) = decode_snapshot(&snap).unwrap();
        assert_eq!(seq, 41);
        assert_eq!(back, state_bytes);
        assert!(StoreState::deserialize(&back).unwrap().durably_equals(&s));
    }

    #[test]
    fn snapshot_decoding_is_total() {
        let snap = encode_snapshot(7, &StoreState::new().serialize());
        for cut in 0..snap.len() {
            assert!(decode_snapshot(&snap[..cut]).is_err()); // and no panic
        }
        for bit in 0..(snap.len() * 8) {
            let mut m = snap.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            assert!(
                decode_snapshot(&m).is_err(),
                "flipped bit {bit} was accepted"
            );
        }
        let mut trailing = snap.clone();
        trailing.push(0);
        assert_eq!(decode_snapshot(&trailing), Err(RecordError::Malformed));
    }
}
