//! Seeded storage-fault injection.
//!
//! The PR 5 wire-level `FaultPlan` made the channel adversary a pure
//! function of `(seed, direction, kind, occurrence)`. This module applies
//! the same discipline to the media layer: every fault verdict here is a
//! pure splitmix64 hash of `(seed, operation class, occurrence)`, so a
//! failing soak run is reproducible from its seed alone and two arms with
//! the same seed see the same faults regardless of wall-clock interleaving.
//!
//! Fault taxonomy (see DESIGN.md §16):
//!
//! * **Torn append** — a crash mid-write persists a hash-chosen strict
//!   prefix of the record; the caller sees an I/O error. Models the classic
//!   torn tail that WAL recovery must repair.
//! * **Short append** — same, but the persisted prefix is the first half;
//!   exercises the boundary where the header survives but the payload
//!   does not.
//! * **Bit rot** — the append itself succeeds, then a single bit somewhere
//!   in the already-persisted journal flips *silently*. Only the record
//!   checksum can catch this, later, at replay time.
//! * **Rename fail** — the snapshot install rename errors without moving
//!   anything; the old snapshot and journal must remain authoritative.

use crate::media::Volume;
use crate::{mix, StoreError};

/// Operation classes with independent occurrence counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageOp {
    Append,
    Rename,
}

/// The injectable storage faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultKind {
    TornAppend,
    ShortAppend,
    BitRot,
    RenameFail,
}

/// Per-operation fault probabilities (evaluated deterministically from the
/// seed, not from an RNG stream — reordering unrelated ops cannot change a
/// verdict).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageFaultProfile {
    /// P(torn append) per append.
    pub torn_append: f64,
    /// P(short append) per append.
    pub short_append: f64,
    /// P(silent bit rot) per append.
    pub bit_rot: f64,
    /// P(rename failure) per rename.
    pub rename_fail: f64,
}

impl StorageFaultProfile {
    /// No faults; a `FaultedVolume` with this profile is transparent.
    pub fn none() -> Self {
        StorageFaultProfile {
            torn_append: 0.0,
            short_append: 0.0,
            bit_rot: 0.0,
            rename_fail: 0.0,
        }
    }

    /// Reference mixture used by the `store_soak` faulted arm: frequent
    /// enough to hit every path in a few hundred ops, rare enough that
    /// progress is still made between faults.
    pub fn reference() -> Self {
        StorageFaultProfile {
            torn_append: 0.06,
            short_append: 0.04,
            bit_rot: 0.03,
            rename_fail: 0.25,
        }
    }
}

/// A fault that actually fired, for post-run reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedStorageFault {
    pub op: StorageOp,
    pub occurrence: u64,
    pub fault: StorageFaultKind,
}

/// A scheduled (scripted) fault: fire `fault` at the given occurrence of
/// the given operation class, regardless of the profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledStorageFault {
    pub op: StorageOp,
    pub occurrence: u64,
    pub fault: StorageFaultKind,
}

/// The deterministic fault plan. Verdicts depend only on
/// `(seed, op class, occurrence)`; the internal counters exist to number
/// occurrences, and `injected` logs what fired.
#[derive(Debug, Clone)]
pub struct StorageFaults {
    seed: u64,
    profile: StorageFaultProfile,
    scripted: Vec<ScheduledStorageFault>,
    appends: u64,
    renames: u64,
    injected: Vec<InjectedStorageFault>,
}

impl StorageFaults {
    pub fn new(seed: u64, profile: StorageFaultProfile) -> Self {
        StorageFaults {
            seed,
            profile,
            scripted: Vec::new(),
            appends: 0,
            renames: 0,
            injected: Vec::new(),
        }
    }

    /// A plan that only fires the scripted faults.
    pub fn scripted(seed: u64, schedule: Vec<ScheduledStorageFault>) -> Self {
        let mut plan = StorageFaults::new(seed, StorageFaultProfile::none());
        plan.scripted = schedule;
        plan
    }

    /// Faults that fired so far, in order.
    pub fn injected(&self) -> &[InjectedStorageFault] {
        &self.injected
    }

    /// Unit-interval hash, pure in `(seed, op, occurrence)`.
    fn unit(&self, op: StorageOp, occurrence: u64) -> f64 {
        let class = match op {
            StorageOp::Append => 0x41,
            StorageOp::Rename => 0x52,
        };
        let h = mix(self.seed ^ mix(class) ^ mix(occurrence.wrapping_mul(0x9e37_79b9)));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Auxiliary hash for fault parameters (cut points, rot offsets).
    pub(crate) fn param(&self, op: StorageOp, occurrence: u64, salt: u64) -> u64 {
        let class = match op {
            StorageOp::Append => 0x41,
            StorageOp::Rename => 0x52,
        };
        mix(self.seed ^ mix(class ^ 0x70) ^ mix(occurrence) ^ mix(salt))
    }

    /// Decide the fault (if any) for the next append, advancing the
    /// occurrence counter. Returns the occurrence index used.
    fn decide_append(&mut self) -> (u64, Option<StorageFaultKind>) {
        let occ = self.appends;
        self.appends += 1;
        if let Some(s) = self
            .scripted
            .iter()
            .find(|s| s.op == StorageOp::Append && s.occurrence == occ)
        {
            return (occ, Some(s.fault));
        }
        let u = self.unit(StorageOp::Append, occ);
        let p = &self.profile;
        let fault = if u < p.torn_append {
            Some(StorageFaultKind::TornAppend)
        } else if u < p.torn_append + p.short_append {
            Some(StorageFaultKind::ShortAppend)
        } else if u < p.torn_append + p.short_append + p.bit_rot {
            Some(StorageFaultKind::BitRot)
        } else {
            None
        };
        (occ, fault)
    }

    fn decide_rename(&mut self) -> (u64, Option<StorageFaultKind>) {
        let occ = self.renames;
        self.renames += 1;
        if let Some(s) = self
            .scripted
            .iter()
            .find(|s| s.op == StorageOp::Rename && s.occurrence == occ)
        {
            return (occ, Some(s.fault));
        }
        if self.unit(StorageOp::Rename, occ) < self.profile.rename_fail {
            (occ, Some(StorageFaultKind::RenameFail))
        } else {
            (occ, None)
        }
    }

    fn log(&mut self, op: StorageOp, occurrence: u64, fault: StorageFaultKind) {
        self.injected.push(InjectedStorageFault {
            op,
            occurrence,
            fault,
        });
    }
}

/// A volume wrapper that injects the planned faults into append/rename.
/// Reads, truncates, writes and removes pass through unfaulted: the store
/// uses them for *recovery* actions, and faulting the repair path would
/// test the test, not the store.
#[derive(Debug)]
pub struct FaultedVolume<V: Volume> {
    inner: V,
    faults: StorageFaults,
}

impl<V: Volume> FaultedVolume<V> {
    pub fn new(inner: V, faults: StorageFaults) -> Self {
        FaultedVolume { inner, faults }
    }

    pub fn faults(&self) -> &StorageFaults {
        &self.faults
    }

    pub fn into_inner(self) -> V {
        self.inner
    }
}

impl<V: Volume> Volume for FaultedVolume<V> {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StoreError> {
        self.inner.read(name)
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.inner.write(name, bytes)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let (occ, fault) = self.faults.decide_append();
        match fault {
            None => self.inner.append(name, bytes),
            Some(StorageFaultKind::TornAppend) => {
                // Persist a hash-chosen strict prefix, then fail the call —
                // what a crash between page writes leaves behind.
                let keep = if bytes.is_empty() {
                    0
                } else {
                    (self.faults.param(StorageOp::Append, occ, 1) % bytes.len() as u64) as usize
                };
                self.inner.append(name, &bytes[..keep])?;
                self.faults.log(StorageOp::Append, occ, StorageFaultKind::TornAppend);
                Err(StoreError::Io(format!(
                    "injected torn append (occurrence {occ}, kept {keep}/{})",
                    bytes.len()
                )))
            }
            Some(StorageFaultKind::ShortAppend) => {
                let keep = bytes.len() / 2;
                self.inner.append(name, &bytes[..keep])?;
                self.faults.log(StorageOp::Append, occ, StorageFaultKind::ShortAppend);
                Err(StoreError::Io(format!(
                    "injected short append (occurrence {occ}, kept {keep}/{})",
                    bytes.len()
                )))
            }
            Some(StorageFaultKind::BitRot) => {
                // The append itself succeeds; then one bit of the persisted
                // file decays silently. No error is returned — only the
                // record checksum can catch this later.
                self.inner.append(name, bytes)?;
                if let Some(mut file) = self.inner.read(name)? {
                    if !file.is_empty() {
                        let bit =
                            self.faults.param(StorageOp::Append, occ, 2) % (file.len() as u64 * 8);
                        file[(bit / 8) as usize] ^= 1 << (bit % 8);
                        self.inner.write(name, &file)?;
                        self.faults.log(StorageOp::Append, occ, StorageFaultKind::BitRot);
                    }
                }
                Ok(())
            }
            Some(StorageFaultKind::RenameFail) => {
                // Misconfigured schedule; a rename fault on an append slot
                // degrades to no fault rather than inventing semantics.
                self.inner.append(name, bytes)
            }
        }
    }

    fn truncate(&mut self, name: &str, len: usize) -> Result<(), StoreError> {
        self.inner.truncate(name, len)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        let (occ, fault) = self.faults.decide_rename();
        match fault {
            Some(StorageFaultKind::RenameFail) => {
                self.faults.log(StorageOp::Rename, occ, StorageFaultKind::RenameFail);
                Err(StoreError::Io(format!(
                    "injected rename failure (occurrence {occ})"
                )))
            }
            _ => self.inner.rename(from, to),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        self.inner.remove(name)
    }

    fn len(&self, name: &str) -> Result<usize, StoreError> {
        self.inner.len(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::MemVolume;

    fn verdict_trace(seed: u64, n: u64) -> Vec<Option<StorageFaultKind>> {
        let mut plan = StorageFaults::new(seed, StorageFaultProfile::reference());
        (0..n).map(|_| plan.decide_append().1).collect()
    }

    #[test]
    fn verdicts_are_pure_in_seed_and_occurrence() {
        assert_eq!(verdict_trace(0xFA01, 256), verdict_trace(0xFA01, 256));
        assert_ne!(verdict_trace(0xFA01, 256), verdict_trace(0xFA02, 256));
        // Occurrence k's verdict does not depend on how many verdicts were
        // asked for before it in a different run length.
        let long = verdict_trace(0xFA03, 300);
        let short = verdict_trace(0xFA03, 50);
        assert_eq!(&long[..50], &short[..]);
    }

    #[test]
    fn reference_profile_fires_every_kind() {
        let mut plan = StorageFaults::new(0xFA11, StorageFaultProfile::reference());
        let mut kinds = [false; 3];
        for _ in 0..4000 {
            match plan.decide_append().1 {
                Some(StorageFaultKind::TornAppend) => kinds[0] = true,
                Some(StorageFaultKind::ShortAppend) => kinds[1] = true,
                Some(StorageFaultKind::BitRot) => kinds[2] = true,
                _ => {}
            }
        }
        let mut rename_fired = false;
        for _ in 0..64 {
            if plan.decide_rename().1.is_some() {
                rename_fired = true;
            }
        }
        assert!(kinds.iter().all(|&k| k), "append kinds seen: {kinds:?}");
        assert!(rename_fired);
    }

    #[test]
    fn scripted_faults_fire_exactly_on_schedule() {
        let faults = StorageFaults::scripted(
            7,
            vec![
                ScheduledStorageFault {
                    op: StorageOp::Append,
                    occurrence: 1,
                    fault: StorageFaultKind::TornAppend,
                },
                ScheduledStorageFault {
                    op: StorageOp::Rename,
                    occurrence: 0,
                    fault: StorageFaultKind::RenameFail,
                },
            ],
        );
        let mut vol = FaultedVolume::new(MemVolume::new(), faults);
        vol.append("j", b"aaaa").unwrap();
        assert!(vol.append("j", b"bbbb").is_err()); // occurrence 1: torn
        vol.append("j", b"cccc").unwrap();
        let len = vol.len("j").unwrap();
        assert!(len < 12, "torn append persisted a strict prefix, len={len}");
        vol.write("tmp", b"snap").unwrap();
        assert!(vol.rename("tmp", "snap").is_err());
        assert_eq!(vol.read("snap").unwrap(), None, "failed rename moved nothing");
        assert_eq!(vol.faults().injected().len(), 2);
    }

    #[test]
    fn bit_rot_is_silent_and_flips_exactly_one_bit() {
        let faults = StorageFaults::scripted(
            9,
            vec![ScheduledStorageFault {
                op: StorageOp::Append,
                occurrence: 1,
                fault: StorageFaultKind::BitRot,
            }],
        );
        let mut vol = FaultedVolume::new(MemVolume::new(), faults);
        vol.append("j", &[0u8; 32]).unwrap();
        vol.append("j", &[0u8; 32]).unwrap(); // rot fires here, silently
        let file = vol.read("j").unwrap().unwrap();
        assert_eq!(file.len(), 64, "bit rot must not change the length");
        let ones: u32 = file.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one bit flipped");
    }
}
