//! # wavekey-store — durable state for the WaveKey access service
//!
//! The paper's access-control model only works if the server side survives
//! restarts: tags are passive and cheap, so the reader/server pair carries
//! all the state (EPC → bound key, tenant quotas, rotation generations).
//! This crate is the durability layer under `AccessService`:
//!
//! * [`record`] — the journal record codec. Length-prefixed, checksummed,
//!   version-tagged records with *total* decoding: truncation or corruption
//!   is a typed [`record::RecordError`], never a panic (the same discipline
//!   as `wavekey-core`'s `proto::frame`).
//! * [`journal`] — append-only write-ahead journal framing and replay with
//!   an explicit tail taxonomy (clean / torn tail / mid-journal corruption).
//! * [`snapshot`] — compacted snapshots written via the classic
//!   write-tmp → rename → truncate-journal protocol.
//! * [`state`] — the replayable tenant/ticket/key state machine with
//!   sharded per-tenant maps and canonical (bit-stable) serialization.
//! * [`media`] — the [`media::Volume`] abstraction over storage media, with
//!   an in-memory volume for tests/benches and a file-backed volume.
//! * [`faults`] — seeded storage-fault injection (torn appends, short
//!   appends, bit rot, failed snapshot rename), pure in
//!   `(seed, occurrence)` exactly like the PR 5 wire `FaultPlan`.
//! * [`store`] — [`store::DurableStore`]: the recoverable store that the
//!   access service sits on, with per-tenant quotas/rate limits and LRU
//!   eviction under a configurable memory ceiling.
//!
//! The crate is deliberately std-only (no serde, no rand): the journal
//! format has no hidden serializer dependency and builds under the offline
//! rig with a bare `rustc`.

pub mod faults;
pub mod journal;
pub mod media;
pub mod record;
pub mod snapshot;
pub mod state;
pub mod store;

pub use faults::{FaultedVolume, InjectedStorageFault, StorageFaultKind, StorageFaultProfile, StorageFaults, StorageOp};
pub use journal::{Replay, TailStatus, JOURNAL_FILE};
pub use media::{FileVolume, MemVolume, Volume};
pub use record::{Record, RecordBody, RecordError, JOURNAL_VERSION};
pub use snapshot::{SNAPSHOT_FILE, SNAPSHOT_TMP};
pub use state::{StoreState, TenantQuota, TenantState, TicketState};
pub use store::{DurableStore, StoreConfig, StoreStats};

/// Errors surfaced by the durable store and its media layer.
///
/// `Clone + PartialEq` so callers (e.g. `wavekey-core`'s `Error`) can embed
/// it in their own comparable error enums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O-class failure from the underlying volume (including injected
    /// storage faults, which surface exactly like real media errors).
    Io(String),
    /// The journal carries corruption that is not a torn tail and salvage
    /// mode is disabled. `offset` is the byte offset of the damage.
    Corrupted { offset: usize },
    /// The snapshot file itself failed to decode. Snapshots are installed
    /// atomically (tmp + rename), so this means real media damage.
    SnapshotCorrupted(record::RecordError),
    /// A record in the journal failed to decode during a targeted reload.
    Record(record::RecordError),
    /// Operation referenced a tenant id that was never created.
    UnknownTenant(u64),
    /// Operation referenced an EPC with no issued ticket for that tenant.
    UnknownTicket,
    /// The tenant's `max_tickets` quota would be exceeded.
    QuotaExceeded { tenant: u64 },
    /// The tenant's enrolment token bucket is empty this tick.
    RateLimited { tenant: u64 },
    /// Snapshot rename failed; the old snapshot and the journal are intact.
    SnapshotRename(String),
}

impl core::fmt::Display for StoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "storage i/o error: {m}"),
            StoreError::Corrupted { offset } => {
                write!(f, "journal corrupted at byte {offset} (salvage disabled)")
            }
            StoreError::SnapshotCorrupted(e) => write!(f, "snapshot corrupted: {e}"),
            StoreError::Record(e) => write!(f, "journal record error: {e}"),
            StoreError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            StoreError::UnknownTicket => write!(f, "unknown ticket (EPC not issued)"),
            StoreError::QuotaExceeded { tenant } => {
                write!(f, "tenant {tenant} ticket quota exceeded")
            }
            StoreError::RateLimited { tenant } => {
                write!(f, "tenant {tenant} enrolment rate limited")
            }
            StoreError::SnapshotRename(m) => write!(f, "snapshot rename failed: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<record::RecordError> for StoreError {
    fn from(e: record::RecordError) -> Self {
        StoreError::Record(e)
    }
}

/// splitmix64 finalizer — the same mixer the wire-level `FaultPlan` uses,
/// reused for fault decisions and checksums so every verdict is a pure
/// function of its inputs.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte slice, splitmix-finalized. Used for record checksums
/// and state digests; not cryptographic (integrity against crashes and bit
/// rot, not against an adversary with write access to the media).
#[inline]
pub(crate) fn fnv_mix(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(h)
}
