//! HMAC-SHA256 (RFC 2104), used for the WaveKey key confirmation.
//!
//! At the end of the key agreement the RFID server responds with
//! `HMAC(N, K)` over the mobile device's nonce using the reconciled key as
//! the secret (§IV-D-2); the mobile device verifies it before adopting the
//! key.

use crate::sha256::sha256;

const BLOCK_SIZE: usize = 64;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// let mac = wavekey_crypto::hmac_sha256(b"key", b"message");
/// assert_eq!(mac.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK_SIZE];
    if key.len() > BLOCK_SIZE {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Vec::with_capacity(BLOCK_SIZE + message.len());
    for &b in &key_block {
        inner.push(b ^ 0x36);
    }
    inner.extend_from_slice(message);
    let inner_hash = sha256(&inner);

    let mut outer = Vec::with_capacity(BLOCK_SIZE + 32);
    for &b in &key_block {
        outer.push(b ^ 0x5c);
    }
    outer.extend_from_slice(&inner_hash);
    sha256(&outer)
}

/// Constant-time equality for MACs.
pub fn mac_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            to_hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6 (key longer than the block size).
    #[test]
    fn rfc4231_case6() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            to_hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn mac_eq_behavior() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(mac_eq(&a, &b));
        b[0] ^= 1;
        assert!(!mac_eq(&a, &b));
        assert!(!mac_eq(&a, &a[..31]));
    }

    #[test]
    fn different_keys_different_macs() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
