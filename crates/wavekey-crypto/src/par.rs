//! Feature-gated data-parallel helpers for the OT batch loops.
//!
//! With the default-on `parallel` feature the independent per-instance
//! group exponentiations fan out over rayon's work-stealing pool; without
//! it the same closures run sequentially, so single-threaded builds stay
//! possible (`--no-default-features`). Results are collected in index
//! order either way, and all RNG sampling happens *before* these loops,
//! so protocol outputs are bit-identical across both configurations.
//!
//! The `WAVEKEY_THREADS` environment variable bounds the fan-out, the
//! same contract every `parallel`-feature code path in the workspace
//! honors: `1` forces the sequential branch, `n > 1` sizes the global
//! rayon pool on first use, unset defers to rayon's default.

/// The `WAVEKEY_THREADS` override, parsed once: `Some(n)` when set to a
/// positive integer, `None` otherwise.
#[cfg(feature = "parallel")]
fn configured_threads() -> Option<usize> {
    static THREADS: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("WAVEKEY_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Applies `WAVEKEY_THREADS`: `false` forces the sequential branch;
/// `true` may first size the global pool (`build_global` fails when a
/// pool already exists — the installed pool then takes precedence).
#[cfg(feature = "parallel")]
fn parallel_enabled() -> bool {
    match configured_threads() {
        Some(1) => false,
        Some(n) => {
            use std::sync::Once;
            static INIT: Once = Once::new();
            INIT.call_once(|| {
                let _ = rayon::ThreadPoolBuilder::new().num_threads(n).build_global();
            });
            true
        }
        None => true,
    }
}

/// Maps `f` over `0..len`, preserving index order in the output.
#[cfg(feature = "parallel")]
pub(crate) fn par_map_range<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync + Send,
{
    if len < 2 || !parallel_enabled() {
        return (0..len).map(f).collect();
    }
    use rayon::prelude::*;
    (0..len).into_par_iter().map(f).collect()
}

/// Sequential fallback used when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn par_map_range<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync + Send,
{
    (0..len).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = par_map_range(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(par_map_range(0, |i| i).is_empty());
    }
}
