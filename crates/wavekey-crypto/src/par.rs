//! Feature-gated data-parallel helpers for the OT batch loops.
//!
//! With the default-on `parallel` feature the independent per-instance
//! group exponentiations fan out over rayon's work-stealing pool; without
//! it the same closures run sequentially, so single-threaded builds stay
//! possible (`--no-default-features`). Results are collected in index
//! order either way, and all RNG sampling happens *before* these loops,
//! so protocol outputs are bit-identical across both configurations.

/// Maps `f` over `0..len`, preserving index order in the output.
#[cfg(feature = "parallel")]
pub(crate) fn par_map_range<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync + Send,
{
    use rayon::prelude::*;
    (0..len).into_par_iter().map(f).collect()
}

/// Sequential fallback used when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub(crate) fn par_map_range<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync + Send,
{
    (0..len).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let out = par_map_range(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(par_map_range(0, |i| i).is_empty());
    }
}
