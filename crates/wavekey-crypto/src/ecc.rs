//! Binary BCH error correction and the code-offset reconciliation.
//!
//! §IV-D of the paper reconciles the two preliminary keys with an
//! unspecified error-correcting code whose correction rate is the
//! hyper-parameter `η` (≈ 0.04). We realize it as a binary BCH code over
//! GF(2⁷) — block length `n = 127`, `t` correctable errors per block,
//! `η = t/n` — wrapped in the standard *code-offset* (fuzzy commitment)
//! construction:
//!
//! * the mobile device picks a random codeword `c` per 127-bit block of
//!   its preliminary key `K_M` and sends the offset `K_M ⊕ c` (this is the
//!   paper's "Challenge = ECC(K_M) ‖ N");
//! * the server XORs its own `K_R` with the offset, obtaining `c ⊕ e`
//!   where `e` is the key disagreement, BCH-decodes to recover `c`, and
//!   XORs back to obtain `K_M` exactly — provided each block disagrees in
//!   at most `t` bits.
//!
//! The decoder is the classical chain: syndromes → Berlekamp-Massey →
//! Chien search (binary code, so no error-magnitude step).

use rand::rngs::StdRng;
use rand::Rng;

/// GF(2⁷) field size minus one (the multiplicative order).
const GF_ORDER: usize = 127;
/// Primitive polynomial x⁷ + x³ + 1.
const PRIMITIVE_POLY: u16 = 0b1000_1001;

/// Precomputed GF(2⁷) exp/log tables.
#[derive(Debug, Clone)]
struct Gf128 {
    exp: [u8; 2 * GF_ORDER],
    log: [u8; GF_ORDER + 1],
}

impl Gf128 {
    fn new() -> Gf128 {
        let mut exp = [0u8; 2 * GF_ORDER];
        let mut log = [0u8; GF_ORDER + 1];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(GF_ORDER) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0b1000_0000 != 0 {
                x ^= PRIMITIVE_POLY;
            }
        }
        for i in GF_ORDER..2 * GF_ORDER {
            exp[i] = exp[i - GF_ORDER];
        }
        Gf128 { exp, log }
    }

    #[inline]
    fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    #[inline]
    fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "inverse of zero");
        self.exp[GF_ORDER - self.log[a as usize] as usize]
    }

    /// α^i for any non-negative i.
    #[inline]
    fn alpha_pow(&self, i: usize) -> u8 {
        self.exp[i % GF_ORDER]
    }
}

/// A binary BCH(127, k, t) code.
///
/// # Examples
///
/// ```
/// use wavekey_crypto::Bch;
/// let bch = Bch::new(5).unwrap();
/// assert_eq!(bch.n(), 127);
/// assert_eq!(bch.k(), 92);
/// assert!((bch.correction_rate() - 5.0 / 127.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Bch {
    gf: Gf128,
    t: usize,
    /// Generator polynomial coefficients over GF(2), lowest degree first.
    generator: Vec<bool>,
}

/// Error from BCH configuration or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BchError {
    /// `t` must be in `1..=15` for the (127, k) family implemented here.
    InvalidT,
    /// More errors than the code can correct.
    DecodeFailure,
    /// Input block has the wrong length.
    WrongLength,
}

impl std::fmt::Display for BchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BchError::InvalidT => write!(f, "t out of range for BCH(127, k)"),
            BchError::DecodeFailure => write!(f, "uncorrectable error pattern"),
            BchError::WrongLength => write!(f, "wrong block length"),
        }
    }
}

impl std::error::Error for BchError {}

impl Bch {
    /// Builds a BCH(127, k, t) code correcting `t` errors per block.
    ///
    /// # Errors
    ///
    /// Returns [`BchError::InvalidT`] when `t` is 0 or so large that the
    /// message length would vanish.
    pub fn new(t: usize) -> Result<Bch, BchError> {
        if t == 0 || t > 15 {
            return Err(BchError::InvalidT);
        }
        let gf = Gf128::new();

        // Generator = lcm of the minimal polynomials of α, α³, …, α^{2t−1}.
        let mut covered = [false; GF_ORDER];
        let mut generator = vec![true]; // the polynomial "1"
        for i in (1..2 * t).step_by(2) {
            if covered[i % GF_ORDER] {
                continue;
            }
            // Cyclotomic coset of i mod 127.
            let mut coset = Vec::new();
            let mut j = i % GF_ORDER;
            loop {
                if coset.contains(&j) {
                    break;
                }
                coset.push(j);
                covered[j] = true;
                j = (j * 2) % GF_ORDER;
            }
            // Minimal polynomial = Π (x + α^j) over GF(128); result is
            // binary.
            let mut min_poly: Vec<u8> = vec![1];
            for &j in &coset {
                let root = gf.alpha_pow(j);
                // Multiply min_poly by (x + root).
                let mut next = vec![0u8; min_poly.len() + 1];
                for (d, &c) in min_poly.iter().enumerate() {
                    next[d + 1] ^= c; // x * c
                    next[d] ^= gf.mul(c, root);
                }
                min_poly = next;
            }
            // All coefficients must be 0/1 now.
            debug_assert!(min_poly.iter().all(|&c| c <= 1));
            // generator *= min_poly (binary polynomial multiplication).
            let mut next = vec![false; generator.len() + min_poly.len() - 1];
            for (d1, &g1) in generator.iter().enumerate() {
                if !g1 {
                    continue;
                }
                for (d2, &m2) in min_poly.iter().enumerate() {
                    if m2 == 1 {
                        next[d1 + d2] ^= true;
                    }
                }
            }
            generator = next;
        }
        let k = GF_ORDER + 1 - generator.len();
        if k == 0 {
            return Err(BchError::InvalidT);
        }
        Ok(Bch { gf, t, generator })
    }

    /// Block length `n = 127`.
    pub fn n(&self) -> usize {
        GF_ORDER
    }

    /// Message length `k = n − deg(g)`.
    pub fn k(&self) -> usize {
        GF_ORDER + 1 - self.generator.len()
    }

    /// Correctable errors per block.
    pub fn t(&self) -> usize {
        self.t
    }

    /// The correction rate `η = t / n` (the paper's hyper-parameter).
    pub fn correction_rate(&self) -> f64 {
        self.t as f64 / GF_ORDER as f64
    }

    /// Systematically encodes `k` message bits into an `n`-bit codeword.
    /// The message occupies the high positions `n−k..n`; parity fills
    /// `0..n−k`.
    ///
    /// # Errors
    ///
    /// Returns [`BchError::WrongLength`] when `message.len() != k`.
    pub fn encode(&self, message: &[bool]) -> Result<Vec<bool>, BchError> {
        if message.len() != self.k() {
            return Err(BchError::WrongLength);
        }
        let parity_len = self.generator.len() - 1;
        // Codeword = m(x)·x^{n−k} + (m(x)·x^{n−k} mod g(x)).
        let mut work = vec![false; GF_ORDER];
        work[parity_len..].copy_from_slice(message);
        // Polynomial mod: long division by the generator.
        let mut rem = work.clone();
        for d in (parity_len..GF_ORDER).rev() {
            if rem[d] {
                for (i, &g) in self.generator.iter().enumerate() {
                    if g {
                        rem[d - (self.generator.len() - 1) + i] ^= true;
                    }
                }
            }
        }
        let mut codeword = work;
        codeword[..parity_len].copy_from_slice(&rem[..parity_len]);
        Ok(codeword)
    }

    /// Decodes a (possibly corrupted) `n`-bit word to the nearest
    /// codeword.
    ///
    /// # Errors
    ///
    /// Returns [`BchError::WrongLength`] for wrong-size input and
    /// [`BchError::DecodeFailure`] when more than `t` errors are present
    /// (detected).
    pub fn decode(&self, received: &[bool]) -> Result<Vec<bool>, BchError> {
        if received.len() != GF_ORDER {
            return Err(BchError::WrongLength);
        }
        // Syndromes S_j = r(α^j), j = 1..2t.
        let mut syndromes = vec![0u8; 2 * self.t];
        let mut all_zero = true;
        for (jm1, s) in syndromes.iter_mut().enumerate() {
            let j = jm1 + 1;
            let mut acc = 0u8;
            for (i, &bit) in received.iter().enumerate() {
                if bit {
                    acc ^= self.gf.alpha_pow(i * j);
                }
            }
            *s = acc;
            if acc != 0 {
                all_zero = false;
            }
        }
        if all_zero {
            return Ok(received.to_vec());
        }

        // Berlekamp-Massey for the error-locator polynomial σ(x).
        let sigma = self.berlekamp_massey(&syndromes);
        let errors = sigma.len() - 1;
        if errors > self.t {
            return Err(BchError::DecodeFailure);
        }

        // Chien search: error at position i iff σ(α^{−i}) = 0.
        let mut corrected = received.to_vec();
        let mut found = 0usize;
        for i in 0..GF_ORDER {
            // α^{−i} = α^{127−i}.
            let x = self.gf.alpha_pow(GF_ORDER - i % GF_ORDER);
            let mut acc = 0u8;
            let mut xp = 1u8;
            for &c in &sigma {
                acc ^= self.gf.mul(c, xp);
                xp = self.gf.mul(xp, x);
            }
            if acc == 0 {
                corrected[i] ^= true;
                found += 1;
            }
        }
        if found != errors {
            return Err(BchError::DecodeFailure);
        }
        // Verify: all syndromes of the corrected word must vanish.
        for jm1 in 0..2 * self.t {
            let j = jm1 + 1;
            let mut acc = 0u8;
            for (i, &bit) in corrected.iter().enumerate() {
                if bit {
                    acc ^= self.gf.alpha_pow(i * j);
                }
            }
            if acc != 0 {
                return Err(BchError::DecodeFailure);
            }
        }
        Ok(corrected)
    }

    /// Extracts the systematic message bits from a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `codeword.len() != n`.
    pub fn extract_message(&self, codeword: &[bool]) -> Vec<bool> {
        assert_eq!(codeword.len(), GF_ORDER, "wrong codeword length");
        codeword[self.generator.len() - 1..].to_vec()
    }

    fn berlekamp_massey(&self, syndromes: &[u8]) -> Vec<u8> {
        let mut c: Vec<u8> = vec![1];
        let mut b: Vec<u8> = vec![1];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut bb = 1u8;
        for n in 0..syndromes.len() {
            // Discrepancy.
            let mut d = syndromes[n];
            for i in 1..=l {
                if i < c.len() {
                    d ^= self.gf.mul(c[i], syndromes[n - i]);
                }
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n {
                let t_poly = c.clone();
                let coeff = self.gf.mul(d, self.gf.inv(bb));
                c = poly_sub_scaled(&self.gf, &c, &b, coeff, m);
                l = n + 1 - l;
                b = t_poly;
                bb = d;
                m = 1;
            } else {
                let coeff = self.gf.mul(d, self.gf.inv(bb));
                c = poly_sub_scaled(&self.gf, &c, &b, coeff, m);
                m += 1;
            }
        }
        c.truncate(l + 1);
        c
    }
}

/// `c(x) − coeff·x^shift·b(x)` over GF(128) (subtraction = XOR).
fn poly_sub_scaled(gf: &Gf128, c: &[u8], b: &[u8], coeff: u8, shift: usize) -> Vec<u8> {
    let mut out = c.to_vec();
    if out.len() < b.len() + shift {
        out.resize(b.len() + shift, 0);
    }
    for (i, &bi) in b.iter().enumerate() {
        out[i + shift] ^= gf.mul(coeff, bi);
    }
    out
}

/// The code-offset (fuzzy commitment) reconciliation built on [`Bch`].
#[derive(Debug, Clone)]
pub struct CodeOffset {
    bch: Bch,
}

impl CodeOffset {
    /// Wraps a BCH code.
    pub fn new(bch: Bch) -> CodeOffset {
        CodeOffset { bch }
    }

    /// The underlying code.
    pub fn bch(&self) -> &Bch {
        &self.bch
    }

    /// Correction rate η = t/n of the underlying code.
    pub fn correction_rate(&self) -> f64 {
        self.bch.correction_rate()
    }

    /// Produces the helper data ("ECC(K_M)") for `key`: per 127-bit block,
    /// `block ⊕ random codeword`. The key is zero-padded to a whole number
    /// of blocks internally.
    pub fn commit(&self, key: &[bool], rng: &mut StdRng) -> Vec<bool> {
        let n = self.bch.n();
        let blocks = key.len().div_ceil(n).max(1);
        let mut helper = Vec::with_capacity(blocks * n);
        for bi in 0..blocks {
            let mut block = vec![false; n];
            for (j, b) in block.iter_mut().enumerate() {
                let idx = bi * n + j;
                if idx < key.len() {
                    *b = key[idx];
                }
            }
            let message: Vec<bool> = (0..self.bch.k()).map(|_| rng.gen()).collect();
            let codeword = self.bch.encode(&message).expect("message length is k");
            helper.extend(block.iter().zip(&codeword).map(|(kb, cb)| kb ^ cb));
        }
        helper
    }

    /// Recovers the committed key from a *noisy* copy and the helper data.
    /// Returns the exact original key (truncated to `key_len`), or `None`
    /// if any block's disagreement exceeds the correction radius.
    pub fn reconcile(&self, noisy: &[bool], helper: &[bool], key_len: usize) -> Option<Vec<bool>> {
        let n = self.bch.n();
        if helper.len() % n != 0 || noisy.len() < key_len {
            return None;
        }
        let blocks = helper.len() / n;
        if key_len > blocks * n {
            return None;
        }
        let mut out = Vec::with_capacity(blocks * n);
        for bi in 0..blocks {
            let mut noisy_block = vec![false; n];
            for (j, b) in noisy_block.iter_mut().enumerate() {
                let idx = bi * n + j;
                if idx < noisy.len() {
                    *b = noisy[idx];
                }
            }
            let helper_block = &helper[bi * n..(bi + 1) * n];
            // noisy ⊕ helper = codeword ⊕ error.
            let received: Vec<bool> = noisy_block
                .iter()
                .zip(helper_block)
                .map(|(a, b)| a ^ b)
                .collect();
            let codeword = self.bch.decode(&received).ok()?;
            // key block = helper ⊕ codeword.
            for (h, c) in helper_block.iter().zip(&codeword) {
                out.push(h ^ c);
            }
        }
        out.truncate(key_len);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn code_dimensions() {
        // BCH(127, 120, 1), (127, 113, 2), (127, 106, 3), (127, 99, 4),
        // (127, 92, 5) — each minimal polynomial has degree 7.
        for (t, k) in [(1, 120), (2, 113), (3, 106), (4, 99), (5, 92)] {
            let bch = Bch::new(t).unwrap();
            assert_eq!(bch.k(), k, "t = {t}");
        }
    }

    #[test]
    fn invalid_t_rejected() {
        assert_eq!(Bch::new(0).unwrap_err(), BchError::InvalidT);
        assert_eq!(Bch::new(100).unwrap_err(), BchError::InvalidT);
    }

    #[test]
    fn roundtrip_no_errors() {
        let bch = Bch::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let msg: Vec<bool> = (0..bch.k()).map(|_| rng.gen()).collect();
            let cw = bch.encode(&msg).unwrap();
            assert_eq!(cw.len(), 127);
            let decoded = bch.decode(&cw).unwrap();
            assert_eq!(decoded, cw);
            assert_eq!(bch.extract_message(&cw), msg);
        }
    }

    #[test]
    fn corrects_up_to_t_errors() {
        for t in [1usize, 3, 5] {
            let bch = Bch::new(t).unwrap();
            let mut rng = StdRng::seed_from_u64(42 + t as u64);
            for trial in 0..20 {
                let msg: Vec<bool> = (0..bch.k()).map(|_| rng.gen()).collect();
                let cw = bch.encode(&msg).unwrap();
                let mut corrupted = cw.clone();
                // Flip exactly t distinct positions.
                let mut positions = std::collections::HashSet::new();
                while positions.len() < t {
                    positions.insert(rng.gen_range(0..127usize));
                }
                for &p in &positions {
                    corrupted[p] = !corrupted[p];
                }
                let decoded = bch.decode(&corrupted).unwrap();
                assert_eq!(decoded, cw, "t = {t}, trial {trial}");
            }
        }
    }

    #[test]
    fn detects_too_many_errors_mostly() {
        // With t+2 or more random errors, decoding must either fail or
        // land on a *different* codeword — it must never return the
        // original with silent corruption of the comparison logic.
        let bch = Bch::new(3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut failures = 0;
        for _ in 0..50 {
            let msg: Vec<bool> = (0..bch.k()).map(|_| rng.gen()).collect();
            let cw = bch.encode(&msg).unwrap();
            let mut corrupted = cw.clone();
            let mut positions = std::collections::HashSet::new();
            while positions.len() < 8 {
                positions.insert(rng.gen_range(0..127usize));
            }
            for &p in &positions {
                corrupted[p] = !corrupted[p];
            }
            match bch.decode(&corrupted) {
                Err(_) => failures += 1,
                Ok(decoded) => assert_ne!(decoded, cw, "8 errors silently corrected"),
            }
        }
        assert!(failures > 20, "only {failures}/50 detected as uncorrectable");
    }

    #[test]
    fn codewords_satisfy_generator_divisibility() {
        let bch = Bch::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let msg: Vec<bool> = (0..bch.k()).map(|_| rng.gen()).collect();
        let cw = bch.encode(&msg).unwrap();
        // All syndromes vanish for a valid codeword (checked internally by
        // decode, but assert explicitly via decode == identity).
        assert_eq!(bch.decode(&cw).unwrap(), cw);
    }

    #[test]
    fn code_offset_reconciles_noisy_keys() {
        let co = CodeOffset::new(Bch::new(5).unwrap());
        let mut rng = StdRng::seed_from_u64(11);
        let key: Vec<bool> = (0..256).map(|_| rng.gen()).collect();
        let helper = co.commit(&key, &mut rng);
        assert_eq!(helper.len(), 127 * 3); // 256 bits -> 3 blocks

        // Noisy copy: flip 4 bits per 127-bit block (≤ t = 5).
        let mut noisy = key.clone();
        for b in 0..2 {
            for j in 0..4 {
                let idx = b * 127 + j * 25;
                if idx < noisy.len() {
                    noisy[idx] = !noisy[idx];
                }
            }
        }
        let recovered = co.reconcile(&noisy, &helper, key.len()).expect("reconcile");
        assert_eq!(recovered, key);
    }

    #[test]
    fn code_offset_fails_beyond_radius() {
        let co = CodeOffset::new(Bch::new(2).unwrap());
        let mut rng = StdRng::seed_from_u64(13);
        let key: Vec<bool> = (0..127).map(|_| rng.gen()).collect();
        let helper = co.commit(&key, &mut rng);
        let mut noisy = key.clone();
        for j in 0..10 {
            noisy[j * 12] = !noisy[j * 12];
        }
        // 10 errors against t = 2: must fail or mis-recover, never silently
        // return the true key by luck of comparison.
        if let Some(recovered) = co.reconcile(&noisy, &helper, key.len()) {
            assert_ne!(recovered, key);
        }
    }

    #[test]
    fn code_offset_exact_key_roundtrips() {
        let co = CodeOffset::new(Bch::new(1).unwrap());
        let mut rng = StdRng::seed_from_u64(17);
        let key: Vec<bool> = (0..100).map(|_| rng.gen()).collect();
        let helper = co.commit(&key, &mut rng);
        let recovered = co.reconcile(&key, &helper, key.len()).unwrap();
        assert_eq!(recovered, key);
    }

    #[test]
    fn correction_rate_matches_eta() {
        let bch = Bch::new(5).unwrap();
        assert!((bch.correction_rate() - 0.0394).abs() < 0.001); // ≈ the paper's 0.04
    }
}
