//! From-scratch cryptography for the WaveKey key-agreement protocol.
//!
//! The paper's key agreement (§IV-D) is a bidirectional batch of
//! 1-out-of-2 Oblivious Transfers in a prime-order group, followed by
//! error-correction-based reconciliation and an HMAC confirmation. None of
//! the required primitives may be assumed here, so all are implemented
//! from scratch:
//!
//! * [`bigint`] — arbitrary-precision unsigned integers with Montgomery
//!   modular exponentiation (the OT group operations) and Miller-Rabin
//!   primality testing.
//! * [`group`] — the fixed 1024-bit safe-prime Diffie-Hellman group the
//!   two parties agree on (the paper's public primes `g`, `u`).
//! * [`sha256`] / [`hmac`] — FIPS 180-4 SHA-256 and RFC 2104 HMAC, used as
//!   the OT key-derivation hash `H(·)` and the final key confirmation.
//! * [`cipher`] — a SHA-256-CTR keystream cipher implementing the OT
//!   payload encryption `E(x, k)`.
//! * [`ot`] — the "simplest OT" of Chou-Orlandi (Fig. 3 of the paper),
//!   batched as the protocol batches it.
//! * [`rounds`] — the same OT rounds as byte-level single calls, so a
//!   sans-IO protocol state machine can advance one round per wire frame.
//! * [`kdf`] — HKDF (RFC 5869 over our HMAC) for the optional
//!   privacy-amplification step after reconciliation.
//! * [`ecc`] — binary BCH codes over GF(2⁷) with Berlekamp-Massey
//!   decoding, plus the code-offset (fuzzy commitment) construction that
//!   realizes the paper's `Challenge = ECC(K_M) ‖ N` reconciliation.

pub mod batch;
pub mod bigint;
pub mod cipher;
pub mod ecc;
pub mod group;
pub mod hmac;
pub mod kdf;
mod limb4;
pub mod ot;
mod par;
pub mod rounds;
pub mod sha256;

pub use bigint::Ubig;
pub use cipher::{ctr_decrypt, ctr_encrypt};
pub use ecc::{Bch, CodeOffset};
pub use group::DhGroup;
pub use hmac::hmac_sha256;
pub use kdf::hkdf;
pub use ot::{OtReceiver, OtSender};
pub use sha256::sha256;
