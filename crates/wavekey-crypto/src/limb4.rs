//! Portable 4-wide limb lanes for the batched Montgomery kernels.
//!
//! The batch executor ([`crate::batch`]) produces groups of *independent*
//! exponentiations over one modulus. Advancing four of them in lockstep
//! turns the CIOS inner loop's serial carry chain — the scalar kernel's
//! bottleneck, roughly one multiply retired per chain step — into four
//! interleaved chains with no cross-lane dependencies, which the
//! autovectorizer and the out-of-order core can overlap. Lanes are plain
//! `[u64; 4]` arrays indexed `[limb][lane]` with explicit lane loops (no
//! `std::simd`), so the crate stays dependency-free on stable.
//!
//! The scalar `cios_mont_mul` in [`crate::bigint`] is the pinned
//! reference; [`cios_mont_mul_x4`] must match it lane-for-lane exactly.

use crate::bigint::MAX_CIOS_LIMBS;

/// Lane count of the vector kernels. Four independent 64×64→128 carry
/// chains are enough to saturate the multiplier ports on current cores
/// while keeping the interleaved scratch inside 2 KB of stack.
pub(crate) const LANES: usize = 4;

/// `t[..len(n)] (lane) >= n` over the interleaved layout.
fn lane_ge(t: &[[u64; LANES]], n: &[u64], lane: usize) -> bool {
    for j in (0..n.len()).rev() {
        match t[j][lane].cmp(&n[j]) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    true
}

/// `t[..len(n)] (lane) -= n`, wrapping modulo `2^(64k)` exactly like the
/// scalar kernel's conditional subtract.
fn lane_sub(t: &mut [[u64; LANES]], n: &[u64], lane: usize) {
    let mut borrow = 0u64;
    for (j, &nj) in n.iter().enumerate() {
        let (d1, b1) = t[j][lane].overflowing_sub(nj);
        let (d2, b2) = d1.overflowing_sub(borrow);
        t[j][lane] = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
}

/// 4-way interleaved CIOS Montgomery multiplication.
///
/// Lane `l` computes `out_l = a_l·b_l·R⁻¹ mod n` for operands in
/// Montgomery form, all lanes sharing the modulus `n` (exactly `n.len()`
/// limbs each, values `< n`). The loop structure is the scalar
/// `cios_mont_mul` transposed: each scalar step becomes a 4-lane step,
/// so the per-lane sequence of limb operations — and therefore the
/// result — is bit-identical to four scalar calls.
pub(crate) fn cios_mont_mul_x4(
    n: &[u64],
    n_prime: u64,
    a: &[[u64; LANES]],
    b: &[[u64; LANES]],
    out: &mut [[u64; LANES]],
) {
    let k = n.len();
    debug_assert!(k >= 1 && k <= MAX_CIOS_LIMBS);
    debug_assert!(a.len() == k && b.len() == k && out.len() == k);
    let mut buf = [[0u64; LANES]; MAX_CIOS_LIMBS + 2];
    let t = &mut buf[..k + 2];
    // The four carry chains live in named locals (c0..c3) rather than an
    // array: an indexed `[u128; 4]` spills to the stack and serializes
    // every chain step through memory, which is exactly the latency the
    // interleaving exists to hide. With register-resident chains the four
    // multiplies per limb step issue back to back.
    let a = &a[..k];
    let n = &n[..k];
    for i in 0..k {
        // t += a · b[i].
        let [b0, b1, b2, b3] = b[i];
        let (b0, b1, b2, b3) =
            (u128::from(b0), u128::from(b1), u128::from(b2), u128::from(b3));
        let (mut c0, mut c1, mut c2, mut c3) = (0u128, 0u128, 0u128, 0u128);
        for (tj, aj) in t[..k].iter_mut().zip(a.iter()) {
            let cur = u128::from(tj[0]) + u128::from(aj[0]) * b0 + c0;
            tj[0] = cur as u64;
            c0 = cur >> 64;
            let cur = u128::from(tj[1]) + u128::from(aj[1]) * b1 + c1;
            tj[1] = cur as u64;
            c1 = cur >> 64;
            let cur = u128::from(tj[2]) + u128::from(aj[2]) * b2 + c2;
            tj[2] = cur as u64;
            c2 = cur >> 64;
            let cur = u128::from(tj[3]) + u128::from(aj[3]) * b3 + c3;
            tj[3] = cur as u64;
            c3 = cur >> 64;
        }
        let cur = u128::from(t[k][0]) + c0;
        t[k][0] = cur as u64;
        t[k + 1][0] = (cur >> 64) as u64;
        let cur = u128::from(t[k][1]) + c1;
        t[k][1] = cur as u64;
        t[k + 1][1] = (cur >> 64) as u64;
        let cur = u128::from(t[k][2]) + c2;
        t[k][2] = cur as u64;
        t[k + 1][2] = (cur >> 64) as u64;
        let cur = u128::from(t[k][3]) + c3;
        t[k][3] = cur as u64;
        t[k + 1][3] = (cur >> 64) as u64;
        // t = (t + m·n) / 2^64 with per-lane m chosen so the low limb
        // cancels; n and n' are shared across lanes.
        let n0 = u128::from(n[0]);
        let m0 = u128::from(t[0][0].wrapping_mul(n_prime));
        let m1 = u128::from(t[0][1].wrapping_mul(n_prime));
        let m2 = u128::from(t[0][2].wrapping_mul(n_prime));
        let m3 = u128::from(t[0][3].wrapping_mul(n_prime));
        let mut c0 = (u128::from(t[0][0]) + m0 * n0) >> 64;
        let mut c1 = (u128::from(t[0][1]) + m1 * n0) >> 64;
        let mut c2 = (u128::from(t[0][2]) + m2 * n0) >> 64;
        let mut c3 = (u128::from(t[0][3]) + m3 * n0) >> 64;
        for j in 1..k {
            let nj = u128::from(n[j]);
            let cur = u128::from(t[j][0]) + m0 * nj + c0;
            t[j - 1][0] = cur as u64;
            c0 = cur >> 64;
            let cur = u128::from(t[j][1]) + m1 * nj + c1;
            t[j - 1][1] = cur as u64;
            c1 = cur >> 64;
            let cur = u128::from(t[j][2]) + m2 * nj + c2;
            t[j - 1][2] = cur as u64;
            c2 = cur >> 64;
            let cur = u128::from(t[j][3]) + m3 * nj + c3;
            t[j - 1][3] = cur as u64;
            c3 = cur >> 64;
        }
        let cur = u128::from(t[k][0]) + c0;
        t[k - 1][0] = cur as u64;
        t[k][0] = t[k + 1][0] + (cur >> 64) as u64;
        let cur = u128::from(t[k][1]) + c1;
        t[k - 1][1] = cur as u64;
        t[k][1] = t[k + 1][1] + (cur >> 64) as u64;
        let cur = u128::from(t[k][2]) + c2;
        t[k - 1][2] = cur as u64;
        t[k][2] = t[k + 1][2] + (cur >> 64) as u64;
        let cur = u128::from(t[k][3]) + c3;
        t[k - 1][3] = cur as u64;
        t[k][3] = t[k + 1][3] + (cur >> 64) as u64;
    }
    // Per-lane [0, 2n) → [0, n) normalization, same rule as the scalar
    // kernel: a set top word means the wrapping subtract's borrow cancels.
    for l in 0..LANES {
        if t[k][l] != 0 || lane_ge(t, n, l) {
            lane_sub(t, n, l);
        }
    }
    out.copy_from_slice(&t[..k]);
}

/// Reduces the `2k`-limb interleaved product `t` modulo `p = 2^(64k) − c`
/// into `out`, producing canonical residues in `[0, p)`.
///
/// Because `2^(64k) ≡ c (mod p)`, the high half folds into the low half
/// with one multiply per limb: `T ≡ T_lo + T_hi·c`. With `c < 2^32` the
/// first fold leaves at most a 33-bit overflow limb, the second at most a
/// single carry bit, so reduction costs `k + 1` multiplies instead of the
/// `k² + k` of a Montgomery REDC pass — the entire point of choosing a
/// Crandall-form deployment modulus.
fn fold_reduce_x4(t: &[[u64; LANES]], p: &[u64], c: u64, out: &mut [[u64; LANES]]) {
    let k = p.len();
    let cw = u128::from(c);
    // Fold 1: out = T_lo + T_hi·c, overflow limb per lane in `rk`.
    let (mut c0, mut c1, mut c2, mut c3) = (0u128, 0u128, 0u128, 0u128);
    for j in 0..k {
        let cur = u128::from(t[j][0]) + u128::from(t[k + j][0]) * cw + c0;
        out[j][0] = cur as u64;
        c0 = cur >> 64;
        let cur = u128::from(t[j][1]) + u128::from(t[k + j][1]) * cw + c1;
        out[j][1] = cur as u64;
        c1 = cur >> 64;
        let cur = u128::from(t[j][2]) + u128::from(t[k + j][2]) * cw + c2;
        out[j][2] = cur as u64;
        c2 = cur >> 64;
        let cur = u128::from(t[j][3]) + u128::from(t[k + j][3]) * cw + c3;
        out[j][3] = cur as u64;
        c3 = cur >> 64;
    }
    let rk = [c0 as u64, c1 as u64, c2 as u64, c3 as u64];
    // Fold 2 (per lane): add rk·c (< 2^64) into the low limb and ripple.
    // A carry out the top means the value passed 2^(64k): dropping that
    // bit and adding c once more is exactly another subtraction of p.
    for l in 0..LANES {
        let mut cur = u128::from(out[0][l]) + u128::from(rk[l]) * cw;
        out[0][l] = cur as u64;
        let mut carry = (cur >> 64) as u64;
        for oj in out[1..k].iter_mut() {
            if carry == 0 {
                break;
            }
            cur = u128::from(oj[l]) + u128::from(carry);
            oj[l] = cur as u64;
            carry = (cur >> 64) as u64;
        }
        if carry != 0 {
            let mut cur = u128::from(out[0][l]) + cw;
            out[0][l] = cur as u64;
            let mut carry2 = (cur >> 64) as u64;
            for oj in out[1..k].iter_mut() {
                if carry2 == 0 {
                    break;
                }
                cur = u128::from(oj[l]) + u128::from(carry2);
                oj[l] = cur as u64;
                carry2 = (cur >> 64) as u64;
            }
        }
        // At most one conditional subtract reaches [0, p).
        if lane_ge(out, p, l) {
            lane_sub(out, p, l);
        }
    }
}

/// 4-way multiplication modulo a Crandall modulus `p = 2^(64k) − c`.
///
/// Operands are canonical residues (`< p`, exactly `k` limbs) — no
/// Montgomery form anywhere, so chains of these stay bit-comparable to
/// the scalar Montgomery route's canonical outputs at every step.
pub(crate) fn fold_mul_x4(
    p: &[u64],
    c: u64,
    a: &[[u64; LANES]],
    b: &[[u64; LANES]],
    out: &mut [[u64; LANES]],
) {
    let k = p.len();
    debug_assert!(k >= 2 && k <= MAX_CIOS_LIMBS);
    debug_assert!(a.len() == k && b.len() == k && out.len() == k);
    let mut buf = [[0u64; LANES]; 2 * MAX_CIOS_LIMBS];
    let t = &mut buf[..2 * k];
    let a = &a[..k];
    for i in 0..k {
        let [b0, b1, b2, b3] = b[i];
        let (b0, b1, b2, b3) =
            (u128::from(b0), u128::from(b1), u128::from(b2), u128::from(b3));
        let (mut c0, mut c1, mut c2, mut c3) = (0u128, 0u128, 0u128, 0u128);
        for (tj, aj) in t[i..i + k].iter_mut().zip(a.iter()) {
            let cur = u128::from(tj[0]) + u128::from(aj[0]) * b0 + c0;
            tj[0] = cur as u64;
            c0 = cur >> 64;
            let cur = u128::from(tj[1]) + u128::from(aj[1]) * b1 + c1;
            tj[1] = cur as u64;
            c1 = cur >> 64;
            let cur = u128::from(tj[2]) + u128::from(aj[2]) * b2 + c2;
            tj[2] = cur as u64;
            c2 = cur >> 64;
            let cur = u128::from(tj[3]) + u128::from(aj[3]) * b3 + c3;
            tj[3] = cur as u64;
            c3 = cur >> 64;
        }
        t[i + k] = [c0 as u64, c1 as u64, c2 as u64, c3 as u64];
    }
    fold_reduce_x4(t, p, c, out);
}

/// 4-way squaring modulo a Crandall modulus `p = 2^(64k) − c`.
///
/// The off-diagonal half-product is computed once and doubled, so the
/// product phase costs `k(k+1)/2` multiplies against the generic
/// kernel's `k²` — and squarings are ~80% of a general exponentiation,
/// which is why this kernel exists at all.
pub(crate) fn fold_sqr_x4(p: &[u64], c: u64, a: &[[u64; LANES]], out: &mut [[u64; LANES]]) {
    let k = p.len();
    debug_assert!(k >= 2 && k <= MAX_CIOS_LIMBS);
    debug_assert!(a.len() == k && out.len() == k);
    let mut buf = [[0u64; LANES]; 2 * MAX_CIOS_LIMBS];
    let t = &mut buf[..2 * k];
    let a = &a[..k];
    // Off-diagonal triangle: t += a[i]·a[j] for j > i.
    for i in 0..k.saturating_sub(1) {
        let [a0, a1, a2, a3] = a[i];
        let (a0, a1, a2, a3) =
            (u128::from(a0), u128::from(a1), u128::from(a2), u128::from(a3));
        let (mut c0, mut c1, mut c2, mut c3) = (0u128, 0u128, 0u128, 0u128);
        for j in i + 1..k {
            let tj = &mut t[i + j];
            let aj = &a[j];
            let cur = u128::from(tj[0]) + u128::from(aj[0]) * a0 + c0;
            tj[0] = cur as u64;
            c0 = cur >> 64;
            let cur = u128::from(tj[1]) + u128::from(aj[1]) * a1 + c1;
            tj[1] = cur as u64;
            c1 = cur >> 64;
            let cur = u128::from(tj[2]) + u128::from(aj[2]) * a2 + c2;
            tj[2] = cur as u64;
            c2 = cur >> 64;
            let cur = u128::from(tj[3]) + u128::from(aj[3]) * a3 + c3;
            tj[3] = cur as u64;
            c3 = cur >> 64;
        }
        t[i + k] = [c0 as u64, c1 as u64, c2 as u64, c3 as u64];
    }
    // Double the triangle, then add the diagonal a[i]² terms.
    let mut msb = [0u64; LANES];
    for tj in t.iter_mut() {
        for l in 0..LANES {
            let new_msb = tj[l] >> 63;
            tj[l] = (tj[l] << 1) | msb[l];
            msb[l] = new_msb;
        }
    }
    let (mut c0, mut c1, mut c2, mut c3) = (0u128, 0u128, 0u128, 0u128);
    for i in 0..k {
        let [a0, a1, a2, a3] = a[i];
        let sq = [
            u128::from(a0) * u128::from(a0),
            u128::from(a1) * u128::from(a1),
            u128::from(a2) * u128::from(a2),
            u128::from(a3) * u128::from(a3),
        ];
        let lo = t[2 * i];
        let hi = t[2 * i + 1];
        let cur = u128::from(lo[0]) + (sq[0] & u128::from(u64::MAX)) + c0;
        t[2 * i][0] = cur as u64;
        c0 = cur >> 64;
        let cur = u128::from(hi[0]) + (sq[0] >> 64) + c0;
        t[2 * i + 1][0] = cur as u64;
        c0 = cur >> 64;
        let cur = u128::from(lo[1]) + (sq[1] & u128::from(u64::MAX)) + c1;
        t[2 * i][1] = cur as u64;
        c1 = cur >> 64;
        let cur = u128::from(hi[1]) + (sq[1] >> 64) + c1;
        t[2 * i + 1][1] = cur as u64;
        c1 = cur >> 64;
        let cur = u128::from(lo[2]) + (sq[2] & u128::from(u64::MAX)) + c2;
        t[2 * i][2] = cur as u64;
        c2 = cur >> 64;
        let cur = u128::from(hi[2]) + (sq[2] >> 64) + c2;
        t[2 * i + 1][2] = cur as u64;
        c2 = cur >> 64;
        let cur = u128::from(lo[3]) + (sq[3] & u128::from(u64::MAX)) + c3;
        t[2 * i][3] = cur as u64;
        c3 = cur >> 64;
        let cur = u128::from(hi[3]) + (sq[3] >> 64) + c3;
        t[2 * i + 1][3] = cur as u64;
        c3 = cur >> 64;
    }
    debug_assert!(c0 == 0 && c1 == 0 && c2 == 0 && c3 == 0);
    fold_reduce_x4(t, p, c, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigint::{cios_mont_mul, Ubig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// `-n⁻¹ mod 2^64` via Newton iteration (mirrors `MontgomeryCtx`).
    fn n_prime_of(n0: u64) -> u64 {
        let mut inv = n0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        inv.wrapping_neg()
    }

    fn padded(v: &Ubig, k: usize) -> Vec<u64> {
        let mut bytes = v.to_be_bytes();
        bytes.reverse(); // little-endian bytes
        let mut limbs = vec![0u64; k];
        for (i, b) in bytes.iter().enumerate() {
            limbs[i / 8] |= u64::from(*b) << ((i % 8) * 8);
        }
        limbs
    }

    #[test]
    fn x4_kernel_matches_scalar_kernel_lane_for_lane() {
        let moduli = [
            Ubig::from_u64(0xffff_ffff_ffff_ffc5), // 1 limb
            Ubig::from_hex("ffffffffffffffffffffffffffffff61"), // 2 limbs
            Ubig::from_hex(crate::group::MODP_1024_HEX), // 16 limbs
        ];
        let mut rng = StdRng::seed_from_u64(0x51AD);
        for n_u in &moduli {
            let k = n_u.bit_len().div_ceil(64);
            let n = padded(n_u, k);
            let np = n_prime_of(n[0]);
            // Random lane operands below n; the kernel is pure limb
            // arithmetic, so any residues exercise it fully.
            let mut a = vec![[0u64; LANES]; k];
            let mut b = vec![[0u64; LANES]; k];
            let mut av = Vec::new();
            let mut bv = Vec::new();
            for l in 0..LANES {
                let al = padded(&Ubig::random_below(n_u, &mut rng), k);
                let bl = padded(&Ubig::random_below(n_u, &mut rng), k);
                for j in 0..k {
                    a[j][l] = al[j];
                    b[j][l] = bl[j];
                }
                av.push(al);
                bv.push(bl);
            }
            let mut out = vec![[0u64; LANES]; k];
            cios_mont_mul_x4(&n, np, &a, &b, &mut out);
            for l in 0..LANES {
                let mut expect = vec![0u64; k];
                cios_mont_mul(&n, np, &av[l], &bv[l], &mut expect);
                let got: Vec<u64> = (0..k).map(|j| out[j][l]).collect();
                assert_eq!(got, expect, "modulus {n_u} lane {l}");
            }
        }
    }

    #[test]
    fn fold_kernels_match_plain_modular_arithmetic() {
        // Crandall moduli 2^(64k) − c at both the small and the deployed
        // width; the reference is plain schoolbook multiply + divide.
        let cases = [
            (Ubig::from_hex("ffffffffffffffffffffffffffffff61"), 159u64),
            (Ubig::from_hex(crate::group::WAVEKEY_1024_HEX), 1_093_337u64),
        ];
        let mut rng = StdRng::seed_from_u64(0xF01D);
        for (p_u, c) in &cases {
            let k = p_u.bit_len().div_ceil(64);
            let p = padded(p_u, k);
            let mut a = vec![[0u64; LANES]; k];
            let mut b = vec![[0u64; LANES]; k];
            let mut av = Vec::new();
            let mut bv = Vec::new();
            for l in 0..LANES {
                let au = Ubig::random_below(p_u, &mut rng);
                let bu = Ubig::random_below(p_u, &mut rng);
                let al = padded(&au, k);
                let bl = padded(&bu, k);
                for j in 0..k {
                    a[j][l] = al[j];
                    b[j][l] = bl[j];
                }
                av.push(au);
                bv.push(bu);
            }
            let mut out = vec![[0u64; LANES]; k];
            fold_mul_x4(&p, *c, &a, &b, &mut out);
            for l in 0..LANES {
                let expect = padded(&av[l].mul(&bv[l]).rem(p_u), k);
                let got: Vec<u64> = (0..k).map(|j| out[j][l]).collect();
                assert_eq!(got, expect, "mul modulus {p_u} lane {l}");
            }
            fold_sqr_x4(&p, *c, &a, &mut out);
            for l in 0..LANES {
                let expect = padded(&av[l].mul(&av[l]).rem(p_u), k);
                let got: Vec<u64> = (0..k).map(|j| out[j][l]).collect();
                assert_eq!(got, expect, "sqr modulus {p_u} lane {l}");
            }
        }
    }

    #[test]
    fn fold_kernels_edge_operands() {
        // 0, 1, p−1 and 2 in one call: exercises the conditional subtract
        // and the second-fold carry path on some lanes but not others.
        let p_u = Ubig::from_hex("ffffffffffffffffffffffffffffff61");
        let c = 159u64;
        let k = 2;
        let p = padded(&p_u, k);
        let vals = [
            Ubig::zero(),
            Ubig::one(),
            p_u.sub(&Ubig::one()),
            Ubig::from_u64(2),
        ];
        let mut a = vec![[0u64; LANES]; k];
        for (l, v) in vals.iter().enumerate() {
            let pv = padded(v, k);
            for j in 0..k {
                a[j][l] = pv[j];
            }
        }
        let mut out = vec![[0u64; LANES]; k];
        fold_mul_x4(&p, c, &a, &a, &mut out);
        for (l, v) in vals.iter().enumerate() {
            let expect = padded(&v.mul(v).rem(&p_u), k);
            let got: Vec<u64> = (0..k).map(|j| out[j][l]).collect();
            assert_eq!(got, expect, "mul lane {l}");
        }
        fold_sqr_x4(&p, c, &a, &mut out);
        for (l, v) in vals.iter().enumerate() {
            let expect = padded(&v.mul(v).rem(&p_u), k);
            let got: Vec<u64> = (0..k).map(|j| out[j][l]).collect();
            assert_eq!(got, expect, "sqr lane {l}");
        }
    }

    #[test]
    fn x4_kernel_edge_operands() {
        // Zero, one, and n−1 lanes in a single call hit the conditional
        // subtract on some lanes and not others.
        let n_u = Ubig::from_hex("ffffffffffffffffffffffffffffff61");
        let k = 2;
        let n = padded(&n_u, k);
        let np = n_prime_of(n[0]);
        let vals = [
            Ubig::zero(),
            Ubig::one(),
            n_u.sub(&Ubig::one()),
            Ubig::from_u64(2),
        ];
        let mut a = vec![[0u64; LANES]; k];
        for (l, v) in vals.iter().enumerate() {
            let p = padded(v, k);
            for j in 0..k {
                a[j][l] = p[j];
            }
        }
        let mut out = vec![[0u64; LANES]; k];
        cios_mont_mul_x4(&n, np, &a, &a, &mut out);
        for (l, v) in vals.iter().enumerate() {
            let p = padded(v, k);
            let mut expect = vec![0u64; k];
            cios_mont_mul(&n, np, &p, &p, &mut expect);
            let got: Vec<u64> = (0..k).map(|j| out[j][l]).collect();
            assert_eq!(got, expect, "lane {l}");
        }
    }
}
