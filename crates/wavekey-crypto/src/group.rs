//! The Diffie-Hellman group for the OT protocol.
//!
//! The paper has sender and receiver "agree on two large prime numbers g
//! and u, which are not necessarily hidden from a third party". We fix the
//! well-known 1024-bit MODP group of RFC 2409 (Oakley Group 2) — a safe
//! prime with generator 2 — so both sides (and the adversary) know the
//! parameters, exactly as in the paper's model.

use crate::bigint::{is_probable_prime, FixedBaseTable, MontgomeryCtx, Ubig};
use rand::rngs::StdRng;
use std::cmp::Ordering;
use std::sync::OnceLock;

/// The RFC 2409 Oakley Group 2 prime (1024-bit), hexadecimal.
pub const MODP_1024_HEX: &str = concat!(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74",
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437",
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED",
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
);

/// Fixed-base comb window width for generator powers. 6 bits puts the
/// MODP-1024 table at ⌈1024/6⌉ · 63 ≈ 10.8k entries ≈ 1.4 MB and the
/// per-exponentiation cost at ≤ 171 Montgomery multiplications (versus
/// ~1024 squarings for square-and-multiply) — see DESIGN.md §7.
const FIXED_BASE_WINDOW: usize = 6;

/// A fixed prime-modulus DH group with precomputed Montgomery context and
/// a fixed-base comb table of generator powers (built once per group,
/// reused by every `pow_g` across all OT instances and sessions).
#[derive(Debug, Clone)]
pub struct DhGroup {
    ctx: MontgomeryCtx,
    generator: Ubig,
    /// `u − 1`: the order of the multiplicative group mod the prime `u`
    /// (the generator's order divides it), used to invert generator
    /// powers without a Fermat inversion.
    order: Ubig,
    fixed_base: FixedBaseTable,
}

impl DhGroup {
    fn with_params(p: Ubig, generator: Ubig) -> DhGroup {
        let ctx = MontgomeryCtx::new(p);
        let order = ctx.modulus().sub(&Ubig::one());
        let max_exp_bits = ctx.modulus().bit_len();
        let fixed_base = ctx.fixed_base_table(&generator, max_exp_bits, FIXED_BASE_WINDOW);
        DhGroup { ctx, generator, order, fixed_base }
    }

    /// The standard WaveKey group: 1024-bit MODP, generator 2.
    pub fn modp_1024() -> DhGroup {
        DhGroup::with_params(Ubig::from_hex(MODP_1024_HEX), Ubig::from_u64(2))
    }

    /// The process-wide shared MODP-1024 group. Building a [`DhGroup`]
    /// precomputes the fixed-base table, so protocol code should use this
    /// shared instance to amortize that cost across sessions.
    pub fn modp_1024_shared() -> &'static DhGroup {
        static SHARED: OnceLock<DhGroup> = OnceLock::new();
        SHARED.get_or_init(DhGroup::modp_1024)
    }

    /// A deliberately tiny test group (61-bit prime) for fast unit tests.
    /// Never use outside tests/benches.
    pub fn tiny_test_group() -> DhGroup {
        // 2^61 − 1 is a Mersenne prime; generator 37 works for testing.
        DhGroup::with_params(Ubig::from_u64((1u64 << 61) - 1), Ubig::from_u64(37))
    }

    /// The group modulus `u` (paper notation).
    pub fn modulus(&self) -> &Ubig {
        self.ctx.modulus()
    }

    /// The generator `g`.
    pub fn generator(&self) -> &Ubig {
        &self.generator
    }

    /// Byte width of a serialized group element.
    pub fn element_len(&self) -> usize {
        self.modulus().bit_len().div_ceil(8)
    }

    /// `g^x mod u` via the precomputed fixed-base comb table: at most one
    /// Montgomery multiplication per exponent digit, no squarings. This
    /// is the kernel under the deadline-bound `M_A`/`M_B` preparation.
    pub fn pow_g(&self, x: &Ubig) -> Ubig {
        self.ctx.pow_fixed_base(&self.fixed_base, x)
    }

    /// `g^(−x) mod u`, computed as `g^(u−1−x)` through the same
    /// fixed-base table — far cheaper than a Fermat inversion of `g^x`.
    pub fn inv_pow_g(&self, x: &Ubig) -> Ubig {
        let reduced;
        let x = if x.cmp_abs(&self.order) == Ordering::Greater {
            reduced = x.rem(&self.order);
            &reduced
        } else {
            x
        };
        self.ctx.pow_fixed_base(&self.fixed_base, &self.order.sub(x))
    }

    /// `base^x mod u`.
    pub fn pow(&self, base: &Ubig, x: &Ubig) -> Ubig {
        self.ctx.mod_pow(base, x)
    }

    /// `a·b mod u`.
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        self.ctx.mod_mul(a, b)
    }

    /// `a / b mod u` (prime modulus inverse via Fermat).
    ///
    /// # Panics
    ///
    /// Panics if `b ≡ 0`.
    pub fn div(&self, a: &Ubig, b: &Ubig) -> Ubig {
        self.ctx.mod_mul(a, &self.ctx.mod_inv_prime(b))
    }

    /// Samples a random exponent in `[1, u−1)`.
    pub fn random_exponent(&self, rng: &mut StdRng) -> Ubig {
        loop {
            let x = Ubig::random_below(self.modulus(), rng);
            if !x.is_zero() {
                return x;
            }
        }
    }

    /// Serializes a group element to fixed-width big-endian bytes.
    pub fn encode_element(&self, e: &Ubig) -> Vec<u8> {
        e.to_be_bytes_padded(self.element_len())
    }

    /// Parses a fixed-width element, reducing modulo `u`.
    pub fn decode_element(&self, bytes: &[u8]) -> Ubig {
        Ubig::from_be_bytes(bytes).rem(self.modulus())
    }

    /// Verifies that the group modulus is prime (sanity check; expensive
    /// for the 1024-bit group, used in tests).
    pub fn check_prime(&self) -> bool {
        is_probable_prime(self.modulus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn tiny_group_dh_agreement() {
        let g = DhGroup::tiny_test_group();
        let mut rng = StdRng::seed_from_u64(1);
        let a = g.random_exponent(&mut rng);
        let b = g.random_exponent(&mut rng);
        let ga = g.pow_g(&a);
        let gb = g.pow_g(&b);
        assert_eq!(g.pow(&gb, &a), g.pow(&ga, &b));
    }

    #[test]
    fn modp_1024_dh_agreement() {
        let g = DhGroup::modp_1024();
        let mut rng = StdRng::seed_from_u64(2);
        let a = g.random_exponent(&mut rng);
        let b = g.random_exponent(&mut rng);
        let ga = g.pow_g(&a);
        let gb = g.pow_g(&b);
        assert_eq!(g.pow(&gb, &a), g.pow(&ga, &b));
    }

    #[test]
    fn division_inverts_multiplication() {
        let g = DhGroup::modp_1024();
        let mut rng = StdRng::seed_from_u64(3);
        let a = Ubig::random_below(g.modulus(), &mut rng);
        let b = g.random_exponent(&mut rng);
        let prod = g.mul(&a, &b);
        assert_eq!(g.div(&prod, &b), a);
    }

    #[test]
    fn element_codec_roundtrip() {
        let g = DhGroup::modp_1024();
        assert_eq!(g.element_len(), 128);
        let mut rng = StdRng::seed_from_u64(4);
        let e = Ubig::random_below(g.modulus(), &mut rng);
        let bytes = g.encode_element(&e);
        assert_eq!(bytes.len(), 128);
        assert_eq!(g.decode_element(&bytes), e);
    }

    #[test]
    fn inv_pow_g_inverts_pow_g() {
        for g in [DhGroup::tiny_test_group(), DhGroup::modp_1024()] {
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..3 {
                let x = g.random_exponent(&mut rng);
                assert_eq!(g.mul(&g.pow_g(&x), &g.inv_pow_g(&x)), Ubig::one());
                // Same value as the Fermat-inversion route.
                assert_eq!(g.inv_pow_g(&x), g.div(&Ubig::one(), &g.pow_g(&x)));
            }
            assert_eq!(g.inv_pow_g(&Ubig::zero()), Ubig::one());
        }
    }

    #[test]
    fn shared_group_matches_fresh_group() {
        let shared = DhGroup::modp_1024_shared();
        let fresh = DhGroup::modp_1024();
        assert_eq!(shared.modulus(), fresh.modulus());
        let x = Ubig::from_u64(123456789);
        assert_eq!(shared.pow_g(&x), fresh.pow_g(&x));
    }

    #[test]
    fn tiny_group_modulus_is_prime() {
        assert!(DhGroup::tiny_test_group().check_prime());
    }

    #[test]
    #[ignore = "1024-bit Miller-Rabin is slow in debug; run with --ignored"]
    fn modp_1024_modulus_is_prime() {
        assert!(DhGroup::modp_1024().check_prime());
    }
}
