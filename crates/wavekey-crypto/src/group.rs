//! The Diffie-Hellman group for the OT protocol.
//!
//! The paper has sender and receiver "agree on two large prime numbers g
//! and u, which are not necessarily hidden from a third party". We fix the
//! well-known 1024-bit MODP group of RFC 2409 (Oakley Group 2) — a safe
//! prime with generator 2 — so both sides (and the adversary) know the
//! parameters, exactly as in the paper's model.

use crate::bigint::{
    is_probable_prime, CrandallCombTable, CrandallCtx, FixedBaseTable, MontgomeryCtx, Ubig,
};
use rand::rngs::StdRng;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The RFC 2409 Oakley Group 2 prime (1024-bit), hexadecimal.
pub const MODP_1024_HEX: &str = concat!(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74",
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437",
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED",
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
);

/// The WAVEKEY-1024 fleet deployment prime: `p = 2^1024 − 1093337`,
/// hexadecimal.
///
/// Provenance: `c = 1093337` is the smallest `c ≡ 1 (mod 8)` for which
/// both `p = 2^1024 − c` and `(p−1)/2` pass the deterministic 12-witness
/// Miller-Rabin test in [`is_probable_prime`] (search tool:
/// `tools/primegen`). `p` is thus a safe prime with `p ≡ 7 (mod 8)`, so
/// the generator 2 is a quadratic residue generating the order-`(p−1)/2`
/// subgroup — the same convention as the RFC 2409 MODP group.
///
/// The Crandall form makes modular reduction a `k+1`-multiply fold
/// instead of a full Montgomery REDC, which is what the batched OT path
/// exploits. The trade-off is stated openly: a special-form modulus
/// admits the special number field sieve, whose asymptotic cost for a
/// 1024-bit SNFS-friendly prime is roughly that of a ~700-bit general
/// modulus. [`MODP_1024_HEX`] therefore remains the protocol default;
/// WAVEKEY-1024 is the opt-in fleet group for throughput-critical
/// deployments that accept the margin. See DESIGN.md §12.
pub const WAVEKEY_1024_HEX: &str = concat!(
    "FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF",
    "FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF",
    "FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF",
    "FFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEF5127",
);

/// Fixed-base comb window width for generator powers. 6 bits puts the
/// MODP-1024 table at ⌈1024/6⌉ · 63 ≈ 10.8k entries ≈ 1.4 MB and the
/// per-exponentiation cost at ≤ 171 Montgomery multiplications (versus
/// ~1024 squarings for square-and-multiply) — see DESIGN.md §7.
const FIXED_BASE_WINDOW: usize = 6;

/// A fixed prime-modulus DH group with precomputed Montgomery context and
/// a fixed-base comb table of generator powers (built once per group,
/// reused by every `pow_g` across all OT instances and sessions).
#[derive(Debug, Clone)]
pub struct DhGroup {
    ctx: MontgomeryCtx,
    generator: Ubig,
    /// `u − 1`: the order of the multiplicative group mod the prime `u`
    /// (the generator's order divides it), used to invert generator
    /// powers without a Fermat inversion.
    order: Ubig,
    fixed_base: FixedBaseTable,
    /// Fold-reduction fast path, present only when the modulus has
    /// Crandall form `2^(64k) − c`. Used by the x4 batch entry points;
    /// the scalar `pow`/`pow_g` stay on generic Montgomery arithmetic as
    /// the pinned reference, so batched and scalar routes can be
    /// compared on the same group with bit-identical outputs.
    fold: Option<CrandallFast>,
}

/// The Crandall-modulus precomputation bundle: fold context plus a
/// plain-residue generator comb table mirroring `fixed_base`.
#[derive(Debug, Clone)]
struct CrandallFast {
    cr: CrandallCtx,
    comb: CrandallCombTable,
}

impl DhGroup {
    fn with_params(p: Ubig, generator: Ubig) -> DhGroup {
        let ctx = MontgomeryCtx::new(p);
        let order = ctx.modulus().sub(&Ubig::one());
        let max_exp_bits = ctx.modulus().bit_len();
        let fixed_base = ctx.fixed_base_table(&generator, max_exp_bits, FIXED_BASE_WINDOW);
        let fold = CrandallCtx::new(ctx.modulus()).map(|cr| {
            let comb = cr.comb_table(&generator, max_exp_bits, FIXED_BASE_WINDOW);
            CrandallFast { cr, comb }
        });
        DhGroup { ctx, generator, order, fixed_base, fold }
    }

    /// The standard WaveKey group: 1024-bit MODP, generator 2.
    pub fn modp_1024() -> DhGroup {
        DhGroup::with_params(Ubig::from_hex(MODP_1024_HEX), Ubig::from_u64(2))
    }

    /// The process-wide shared MODP-1024 group. Building a [`DhGroup`]
    /// precomputes the fixed-base table, so protocol code should use this
    /// shared instance to amortize that cost across sessions. Backed by
    /// the keyed [`PrecompCache`]; the `&'static` shape is kept for the
    /// hot paths that want a borrow with no refcount traffic.
    pub fn modp_1024_shared() -> &'static DhGroup {
        static SHARED: OnceLock<Arc<DhGroup>> = OnceLock::new();
        SHARED
            .get_or_init(|| {
                PrecompCache::global()
                    .get(&Ubig::from_hex(MODP_1024_HEX), &Ubig::from_u64(2))
            })
            .as_ref()
    }

    /// The WAVEKEY-1024 fleet group: `2^1024 − 1093337`, generator 2.
    /// Same element width and generator convention as [`DhGroup::modp_1024`],
    /// but the Crandall-form modulus unlocks the fold-reduction batch
    /// kernels ([`DhGroup::has_fold_path`] returns `true`). See
    /// [`WAVEKEY_1024_HEX`] for the provenance and the SNFS trade-off.
    pub fn wavekey_1024() -> DhGroup {
        DhGroup::with_params(Ubig::from_hex(WAVEKEY_1024_HEX), Ubig::from_u64(2))
    }

    /// The process-wide shared WAVEKEY-1024 fleet group (two comb tables:
    /// Montgomery for the scalar reference, plain-residue for the fold
    /// path — sharing matters twice as much as for MODP).
    pub fn wavekey_1024_shared() -> &'static DhGroup {
        static SHARED: OnceLock<Arc<DhGroup>> = OnceLock::new();
        SHARED
            .get_or_init(|| {
                PrecompCache::global()
                    .get(&Ubig::from_hex(WAVEKEY_1024_HEX), &Ubig::from_u64(2))
            })
            .as_ref()
    }

    /// A deliberately tiny test group (61-bit prime) for fast unit tests.
    /// Never use outside tests/benches.
    pub fn tiny_test_group() -> DhGroup {
        // 2^61 − 1 is a Mersenne prime; generator 37 works for testing.
        DhGroup::with_params(Ubig::from_u64((1u64 << 61) - 1), Ubig::from_u64(37))
    }

    /// The cache-backed shared tiny test group: same parameters as
    /// [`DhGroup::tiny_test_group`], but the comb table is built once per
    /// process instead of once per session.
    pub fn tiny_test_group_shared() -> Arc<DhGroup> {
        PrecompCache::global().get(&Ubig::from_u64((1u64 << 61) - 1), &Ubig::from_u64(37))
    }

    /// The group modulus `u` (paper notation).
    pub fn modulus(&self) -> &Ubig {
        self.ctx.modulus()
    }

    /// The generator `g`.
    pub fn generator(&self) -> &Ubig {
        &self.generator
    }

    /// `u − 1`, the order of the full multiplicative group mod `u`. The
    /// batched OT sender folds exponent algebra (`−a² mod (u−1)`) through
    /// this before hitting the fixed-base table.
    pub fn order(&self) -> &Ubig {
        &self.order
    }

    /// `true` when `other` is the same deployment group (same modulus
    /// and generator) — the batch executor's grouping predicate.
    pub fn same_params(&self, other: &DhGroup) -> bool {
        std::ptr::eq(self, other)
            || (self.modulus() == other.modulus() && self.generator == other.generator)
    }

    /// Byte width of a serialized group element.
    pub fn element_len(&self) -> usize {
        self.modulus().bit_len().div_ceil(8)
    }

    /// `g^x mod u` via the precomputed fixed-base comb table: at most one
    /// Montgomery multiplication per exponent digit, no squarings. This
    /// is the kernel under the deadline-bound `M_A`/`M_B` preparation.
    pub fn pow_g(&self, x: &Ubig) -> Ubig {
        self.ctx.pow_fixed_base(&self.fixed_base, x)
    }

    /// `g^(−x) mod u`, computed as `g^(u−1−x)` through the same
    /// fixed-base table — far cheaper than a Fermat inversion of `g^x`.
    pub fn inv_pow_g(&self, x: &Ubig) -> Ubig {
        let reduced;
        let x = if x.cmp_abs(&self.order) == Ordering::Greater {
            reduced = x.rem(&self.order);
            &reduced
        } else {
            x
        };
        self.ctx.pow_fixed_base(&self.fixed_base, &self.order.sub(x))
    }

    /// `base^x mod u`.
    pub fn pow(&self, base: &Ubig, x: &Ubig) -> Ubig {
        self.ctx.mod_pow(base, x)
    }

    /// `true` when this group's modulus has Crandall form and the x4
    /// entry points run on the fold-reduction kernels instead of
    /// Montgomery CIOS.
    pub fn has_fold_path(&self) -> bool {
        self.fold.is_some()
    }

    /// Four generator powers in lockstep; results equal
    /// [`DhGroup::pow_g`] per lane. Crandall-form groups dispatch to the
    /// plain-residue fold comb, others to the Montgomery comb — both
    /// return the canonical residue, so the dispatch is invisible to
    /// callers.
    pub fn pow_g_x4(&self, xs: &[Ubig; 4]) -> [Ubig; 4] {
        match &self.fold {
            Some(f) => f.cr.pow_fixed_base_x4(&f.comb, xs),
            None => self.ctx.pow_fixed_base_x4(&self.fixed_base, xs),
        }
    }

    /// Four general exponentiations in lockstep; results equal
    /// [`DhGroup::pow`] per lane. Dispatches like [`DhGroup::pow_g_x4`].
    pub fn pow_x4(&self, bases: &[Ubig; 4], xs: &[Ubig; 4]) -> [Ubig; 4] {
        match &self.fold {
            Some(f) => f.cr.pow_x4(bases, xs),
            None => self.ctx.mod_pow_x4(bases, xs),
        }
    }

    /// `a·b mod u`.
    pub fn mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        self.ctx.mod_mul(a, b)
    }

    /// `a / b mod u` (prime modulus inverse via Fermat).
    ///
    /// # Panics
    ///
    /// Panics if `b ≡ 0`.
    pub fn div(&self, a: &Ubig, b: &Ubig) -> Ubig {
        self.ctx.mod_mul(a, &self.ctx.mod_inv_prime(b))
    }

    /// Samples a random exponent in `[1, u−1)`.
    pub fn random_exponent(&self, rng: &mut StdRng) -> Ubig {
        loop {
            let x = Ubig::random_below(self.modulus(), rng);
            if !x.is_zero() {
                return x;
            }
        }
    }

    /// Serializes a group element to fixed-width big-endian bytes.
    pub fn encode_element(&self, e: &Ubig) -> Vec<u8> {
        e.to_be_bytes_padded(self.element_len())
    }

    /// Parses a fixed-width element, reducing modulo `u`.
    pub fn decode_element(&self, bytes: &[u8]) -> Ubig {
        Ubig::from_be_bytes(bytes).rem(self.modulus())
    }

    /// Verifies that the group modulus is prime (sanity check; expensive
    /// for the 1024-bit group, used in tests).
    pub fn check_prime(&self) -> bool {
        is_probable_prime(self.modulus())
    }
}

/// Process-wide cache of per-deployment group precomputation, keyed by
/// `(modulus, generator)`.
///
/// Building a [`DhGroup`] costs a full comb-table precomputation (~1.4 MB
/// and ~10 ms for MODP-1024), which must be paid once per *deployment
/// group*, never once per session: `SessionManager` shards, the parallel
/// drive, and every batched OT round all resolve their group through
/// here. The map is guarded by a plain mutex — after the first build per
/// key, a lookup is a hash probe plus an `Arc` clone, nowhere near any
/// hot loop.
pub struct PrecompCache {
    groups: Mutex<HashMap<(Vec<u8>, Vec<u8>), Arc<DhGroup>>>,
}

impl PrecompCache {
    /// The process-wide instance.
    pub fn global() -> &'static PrecompCache {
        static CACHE: OnceLock<PrecompCache> = OnceLock::new();
        CACHE.get_or_init(|| PrecompCache { groups: Mutex::new(HashMap::new()) })
    }

    /// Returns the cached group for `(modulus, generator)`, building its
    /// tables on first use. The build happens under the lock so a table
    /// is never computed twice by racing threads.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is even or zero (invalid Montgomery modulus).
    pub fn get(&self, modulus: &Ubig, generator: &Ubig) -> Arc<DhGroup> {
        let key = (modulus.to_be_bytes(), generator.to_be_bytes());
        let mut map = self.groups.lock().expect("precomp cache poisoned");
        map.entry(key)
            .or_insert_with(|| {
                Arc::new(DhGroup::with_params(modulus.clone(), generator.clone()))
            })
            .clone()
    }

    /// Number of distinct groups cached.
    pub fn len(&self) -> usize {
        self.groups.lock().expect("precomp cache poisoned").len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn tiny_group_dh_agreement() {
        let g = DhGroup::tiny_test_group();
        let mut rng = StdRng::seed_from_u64(1);
        let a = g.random_exponent(&mut rng);
        let b = g.random_exponent(&mut rng);
        let ga = g.pow_g(&a);
        let gb = g.pow_g(&b);
        assert_eq!(g.pow(&gb, &a), g.pow(&ga, &b));
    }

    #[test]
    fn modp_1024_dh_agreement() {
        let g = DhGroup::modp_1024();
        let mut rng = StdRng::seed_from_u64(2);
        let a = g.random_exponent(&mut rng);
        let b = g.random_exponent(&mut rng);
        let ga = g.pow_g(&a);
        let gb = g.pow_g(&b);
        assert_eq!(g.pow(&gb, &a), g.pow(&ga, &b));
    }

    #[test]
    fn division_inverts_multiplication() {
        let g = DhGroup::modp_1024();
        let mut rng = StdRng::seed_from_u64(3);
        let a = Ubig::random_below(g.modulus(), &mut rng);
        let b = g.random_exponent(&mut rng);
        let prod = g.mul(&a, &b);
        assert_eq!(g.div(&prod, &b), a);
    }

    #[test]
    fn element_codec_roundtrip() {
        let g = DhGroup::modp_1024();
        assert_eq!(g.element_len(), 128);
        let mut rng = StdRng::seed_from_u64(4);
        let e = Ubig::random_below(g.modulus(), &mut rng);
        let bytes = g.encode_element(&e);
        assert_eq!(bytes.len(), 128);
        assert_eq!(g.decode_element(&bytes), e);
    }

    #[test]
    fn inv_pow_g_inverts_pow_g() {
        for g in [DhGroup::tiny_test_group(), DhGroup::modp_1024()] {
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..3 {
                let x = g.random_exponent(&mut rng);
                assert_eq!(g.mul(&g.pow_g(&x), &g.inv_pow_g(&x)), Ubig::one());
                // Same value as the Fermat-inversion route.
                assert_eq!(g.inv_pow_g(&x), g.div(&Ubig::one(), &g.pow_g(&x)));
            }
            assert_eq!(g.inv_pow_g(&Ubig::zero()), Ubig::one());
        }
    }

    #[test]
    fn shared_group_matches_fresh_group() {
        let shared = DhGroup::modp_1024_shared();
        let fresh = DhGroup::modp_1024();
        assert_eq!(shared.modulus(), fresh.modulus());
        let x = Ubig::from_u64(123456789);
        assert_eq!(shared.pow_g(&x), fresh.pow_g(&x));
    }

    #[test]
    fn tiny_group_modulus_is_prime() {
        assert!(DhGroup::tiny_test_group().check_prime());
    }

    #[test]
    fn precomp_cache_returns_one_instance_per_key() {
        let cache = PrecompCache::global();
        let a = cache.get(&Ubig::from_u64((1u64 << 61) - 1), &Ubig::from_u64(37));
        let b = DhGroup::tiny_test_group_shared();
        assert!(Arc::ptr_eq(&a, &b), "same key must share one table build");
        // Cached group behaves exactly like a fresh build.
        let fresh = DhGroup::tiny_test_group();
        let x = Ubig::from_u64(0xABCDEF);
        assert_eq!(a.pow_g(&x), fresh.pow_g(&x));
        assert!(a.same_params(&fresh));
        // A different generator is a different cache entry.
        let c = cache.get(&Ubig::from_u64((1u64 << 61) - 1), &Ubig::from_u64(5));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!a.same_params(&c));
        assert!(!cache.is_empty());
    }

    #[test]
    fn x4_wrappers_match_scalar_group_ops() {
        let g = DhGroup::tiny_test_group();
        let mut rng = StdRng::seed_from_u64(6);
        let xs: [Ubig; 4] = std::array::from_fn(|_| g.random_exponent(&mut rng));
        let bases: [Ubig; 4] =
            std::array::from_fn(|_| Ubig::random_below(g.modulus(), &mut rng));
        let pg = g.pow_g_x4(&xs);
        let pp = g.pow_x4(&bases, &xs);
        for l in 0..4 {
            assert_eq!(pg[l], g.pow_g(&xs[l]), "pow_g lane {l}");
            assert_eq!(pp[l], g.pow(&bases[l], &xs[l]), "pow lane {l}");
        }
    }

    #[test]
    fn fold_path_presence_per_group() {
        // Only the fleet group has Crandall form: the tiny Mersenne
        // group is single-limb (excluded by detection) and MODP-1024's
        // middle limbs are π-derived, not all-ones.
        assert!(DhGroup::wavekey_1024().has_fold_path());
        assert!(!DhGroup::tiny_test_group().has_fold_path());
        assert!(!DhGroup::modp_1024().has_fold_path());
    }

    #[test]
    fn wavekey_1024_has_expected_form() {
        let p = Ubig::from_hex(WAVEKEY_1024_HEX);
        assert_eq!(p.bit_len(), 1024);
        // p = 2^1024 − 1093337 exactly.
        assert_eq!(Ubig::one().shl(1024).sub(&p), Ubig::from_u64(1_093_337));
        // p ≡ 7 (mod 8): generator 2 is a QR, matching the MODP setup.
        assert_eq!(p.bits(0, 3), 7);
    }

    #[test]
    fn wavekey_1024_dh_agreement_and_x4_dispatch() {
        let g = DhGroup::wavekey_1024();
        let mut rng = StdRng::seed_from_u64(7);
        let a = g.random_exponent(&mut rng);
        let b = g.random_exponent(&mut rng);
        let ga = g.pow_g(&a);
        let gb = g.pow_g(&b);
        assert_eq!(g.pow(&gb, &a), g.pow(&ga, &b));
        // The x4 entry points run the fold kernels here; they must match
        // the scalar Montgomery reference bit-for-bit.
        let xs: [Ubig; 4] = std::array::from_fn(|_| g.random_exponent(&mut rng));
        let bases: [Ubig; 4] =
            std::array::from_fn(|_| Ubig::random_below(g.modulus(), &mut rng));
        let pg = g.pow_g_x4(&xs);
        let pp = g.pow_x4(&bases, &xs);
        for l in 0..4 {
            assert_eq!(pg[l], g.pow_g(&xs[l]), "fold pow_g lane {l}");
            assert_eq!(pp[l], g.pow(&bases[l], &xs[l]), "fold pow lane {l}");
        }
        // Edge exponents through the fold comb: zero and order−1.
        let edge: [Ubig; 4] = [
            Ubig::zero(),
            Ubig::one(),
            g.order().sub(&Ubig::one()),
            Ubig::from_u64(2),
        ];
        let pe = g.pow_g_x4(&edge);
        for l in 0..4 {
            assert_eq!(pe[l], g.pow_g(&edge[l]), "fold pow_g edge lane {l}");
        }
    }

    #[test]
    #[ignore = "1024-bit Miller-Rabin is slow in debug; run with --ignored"]
    fn modp_1024_modulus_is_prime() {
        assert!(DhGroup::modp_1024().check_prime());
    }

    #[test]
    #[ignore = "1024-bit Miller-Rabin is slow in debug; run with --ignored"]
    fn wavekey_1024_modulus_is_safe_prime() {
        let g = DhGroup::wavekey_1024();
        assert!(g.check_prime());
        // Safe prime: (p−1)/2 is also prime. Halve via a 1-bit shift on
        // the big-endian bytes (Ubig has no shr).
        let mut bytes = g.modulus().sub(&Ubig::one()).to_be_bytes();
        let mut carry = 0u8;
        for b in bytes.iter_mut() {
            let new_carry = *b & 1;
            *b = (*b >> 1) | (carry << 7);
            carry = new_carry;
        }
        assert!(is_probable_prime(&Ubig::from_be_bytes(&bytes)));
    }
}
