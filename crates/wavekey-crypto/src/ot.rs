//! Batched 1-out-of-2 Oblivious Transfer (Fig. 3 of the paper).
//!
//! The construction is the discrete-log "simplest OT" of Chou-Orlandi,
//! exactly as the paper describes it:
//!
//! ```text
//! sender:    a ← Z_u,  M_a = g^a
//! receiver:  b ← Z_u,  M_b = g^b        (choice 0)
//!                      M_b = M_a·g^b    (choice 1)
//! sender:    k⁰ = H(M_b^a), k¹ = H((M_b/M_a)^a)
//!            e⁰ = E(x⁰, k⁰), e¹ = E(x¹, k¹)
//! receiver:  k = H(M_a^b) decrypts e^choice
//! ```
//!
//! WaveKey runs `l_s` instances per direction and batches each protocol
//! round into one message (`M_A`, `M_B`, `M_E`), which this module
//! mirrors: a batch of instances moves through three batched messages.

use crate::batch::{BatchResults, JobId, ModexpBatch};
use crate::bigint::Ubig;
use crate::cipher::{ctr_decrypt, ctr_encrypt};
use crate::group::DhGroup;
use crate::par::par_map_range;
use crate::sha256::sha256;
use rand::rngs::StdRng;
use std::cmp::Ordering;
use wavekey_obs::Obs;

/// The batched first message `M_A`: one group element per instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtMessageA {
    /// `m_i = g^{a_i}` for every instance.
    pub elements: Vec<Ubig>,
}

/// The batched response `M_B`: one group element per instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtMessageB {
    /// `n_i` (the receiver's blinded choice) per instance.
    pub elements: Vec<Ubig>,
}

/// The batched ciphertext message `M_E`: a ciphertext pair per instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtMessageE {
    /// `(e_i⁰, e_i¹)` per instance.
    pub pairs: Vec<(Vec<u8>, Vec<u8>)>,
}

impl OtMessageA {
    /// Serializes to fixed-width concatenated elements.
    pub fn encode(&self, group: &DhGroup) -> Vec<u8> {
        encode_elements(group, &self.elements)
    }

    /// Parses a serialized message.
    ///
    /// # Errors
    ///
    /// Returns [`OtError::Malformed`] when the length is not a whole number
    /// of elements.
    pub fn decode(group: &DhGroup, bytes: &[u8]) -> Result<OtMessageA, OtError> {
        Ok(OtMessageA { elements: decode_elements(group, bytes)? })
    }
}

impl OtMessageB {
    /// Serializes to fixed-width concatenated elements.
    pub fn encode(&self, group: &DhGroup) -> Vec<u8> {
        encode_elements(group, &self.elements)
    }

    /// Parses a serialized message.
    ///
    /// # Errors
    ///
    /// Returns [`OtError::Malformed`] when the length is not a whole number
    /// of elements.
    pub fn decode(group: &DhGroup, bytes: &[u8]) -> Result<OtMessageB, OtError> {
        Ok(OtMessageB { elements: decode_elements(group, bytes)? })
    }
}

impl OtMessageE {
    /// Serializes as `u32` count, then per pair two `u32`-length-prefixed
    /// ciphertexts.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.pairs.len() as u32).to_le_bytes());
        for (e0, e1) in &self.pairs {
            out.extend_from_slice(&(e0.len() as u32).to_le_bytes());
            out.extend_from_slice(e0);
            out.extend_from_slice(&(e1.len() as u32).to_le_bytes());
            out.extend_from_slice(e1);
        }
        out
    }

    /// Parses a serialized message.
    ///
    /// # Errors
    ///
    /// Returns [`OtError::Malformed`] on truncated input.
    pub fn decode(bytes: &[u8]) -> Result<OtMessageE, OtError> {
        let mut pos = 0usize;
        let take_u32 = |pos: &mut usize| -> Result<u32, OtError> {
            if *pos + 4 > bytes.len() {
                return Err(OtError::Malformed);
            }
            let v = u32::from_le_bytes(bytes[*pos..*pos + 4].try_into().unwrap());
            *pos += 4;
            Ok(v)
        };
        let count = take_u32(&mut pos)? as usize;
        if count > 1_000_000 {
            return Err(OtError::Malformed);
        }
        let mut pairs = Vec::with_capacity(count);
        for _ in 0..count {
            let l0 = take_u32(&mut pos)? as usize;
            if pos + l0 > bytes.len() {
                return Err(OtError::Malformed);
            }
            let e0 = bytes[pos..pos + l0].to_vec();
            pos += l0;
            let l1 = take_u32(&mut pos)? as usize;
            if pos + l1 > bytes.len() {
                return Err(OtError::Malformed);
            }
            let e1 = bytes[pos..pos + l1].to_vec();
            pos += l1;
            pairs.push((e0, e1));
        }
        if pos != bytes.len() {
            return Err(OtError::Malformed);
        }
        Ok(OtMessageE { pairs })
    }
}

fn encode_elements(group: &DhGroup, elements: &[Ubig]) -> Vec<u8> {
    let mut out = Vec::with_capacity(elements.len() * group.element_len());
    for e in elements {
        out.extend_from_slice(&group.encode_element(e));
    }
    out
}

fn decode_elements(group: &DhGroup, bytes: &[u8]) -> Result<Vec<Ubig>, OtError> {
    let w = group.element_len();
    if bytes.len() % w != 0 {
        return Err(OtError::Malformed);
    }
    Ok(bytes.chunks_exact(w).map(|c| group.decode_element(c)).collect())
}

/// Errors from the OT protocol layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OtError {
    /// A message failed to parse.
    Malformed,
    /// Message batch sizes disagree between rounds.
    BatchMismatch,
}

impl std::fmt::Display for OtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OtError::Malformed => write!(f, "malformed OT message"),
            OtError::BatchMismatch => write!(f, "OT batch size mismatch"),
        }
    }
}

impl std::error::Error for OtError {}

/// The OT sender: holds the secret pairs and the per-instance exponents.
///
/// The group is *not* stored here — it is borrowed through the protocol
/// calls, so batches never clone the (table-carrying) [`DhGroup`].
#[derive(Debug, Clone)]
pub struct OtSender {
    secrets: Vec<(Vec<u8>, Vec<u8>)>,
    a: Vec<Ubig>,
}

impl OtSender {
    /// Starts a batch of OT instances over `secrets` (one `(x⁰, x¹)` pair
    /// per instance), returning the sender state and the batched `M_A`.
    ///
    /// Exponent sampling stays sequential (deterministic per RNG seed);
    /// the independent `g^{a_i}` exponentiations fan out in parallel.
    pub fn start(
        group: &DhGroup,
        secrets: Vec<(Vec<u8>, Vec<u8>)>,
        rng: &mut StdRng,
    ) -> (OtSender, OtMessageA) {
        let a: Vec<Ubig> = secrets.iter().map(|_| group.random_exponent(rng)).collect();
        let elements = par_map_range(a.len(), |i| group.pow_g(&a[i]));
        let msg = OtMessageA { elements };
        (OtSender { secrets, a }, msg)
    }

    /// [`OtSender::start`] timed under an `ot_sender_start` span.
    pub fn start_observed(
        group: &DhGroup,
        secrets: Vec<(Vec<u8>, Vec<u8>)>,
        rng: &mut StdRng,
        obs: &Obs,
    ) -> (OtSender, OtMessageA) {
        let _span = obs.span("ot_sender_start");
        OtSender::start(group, secrets, rng)
    }

    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }

    /// Processes the receiver's `M_B` and produces the ciphertext batch
    /// `M_E`. Instances share no state, so the per-instance key
    /// derivations run in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`OtError::BatchMismatch`] when `M_B` has the wrong number
    /// of elements.
    pub fn encrypt(&self, group: &DhGroup, msg_b: &OtMessageB) -> Result<OtMessageE, OtError> {
        if msg_b.elements.len() != self.secrets.len() {
            return Err(OtError::BatchMismatch);
        }
        let pairs = par_map_range(self.secrets.len(), |i| {
            let (x0, x1) = &self.secrets[i];
            let n = &msg_b.elements[i];
            let k0 = derive_key(group, &group.pow(n, &self.a[i]));
            // n_i / m_i = n_i · g^{−a_i}: the fixed-base table replaces
            // the per-instance Fermat inversion of m_i.
            let quotient = group.mul(n, &group.inv_pow_g(&self.a[i]));
            let k1 = derive_key(group, &group.pow(&quotient, &self.a[i]));
            (ctr_encrypt(&k0, x0), ctr_encrypt(&k1, x1))
        });
        Ok(OtMessageE { pairs })
    }

    /// [`OtSender::encrypt`] timed under an `ot_sender_encrypt` span.
    ///
    /// # Errors
    ///
    /// See [`OtSender::encrypt`].
    pub fn encrypt_observed(
        &self,
        group: &DhGroup,
        msg_b: &OtMessageB,
        obs: &Obs,
    ) -> Result<OtMessageE, OtError> {
        let _span = obs.span("ot_sender_encrypt");
        self.encrypt(group, msg_b)
    }

    /// Enqueue half of [`OtSender::start`]: samples the exponents with
    /// the identical RNG consumption, pushes the `g^{a_i}` jobs onto
    /// `batch`, and returns a pending handle to redeem after
    /// [`ModexpBatch::execute`]. Gathering many sessions' starts into one
    /// batch is what fills the 4-way kernel lanes fleet-wide.
    pub fn start_enqueue<'g>(
        group: &'g DhGroup,
        secrets: Vec<(Vec<u8>, Vec<u8>)>,
        rng: &mut StdRng,
        batch: &mut ModexpBatch<'g>,
    ) -> OtSenderPending {
        let a: Vec<Ubig> = secrets.iter().map(|_| group.random_exponent(rng)).collect();
        let jobs = a.iter().map(|ai| batch.push_pow_g(group, ai.clone())).collect();
        OtSenderPending { secrets, a, jobs }
    }

    /// One-shot batched [`OtSender::start`]: enqueue, execute, commit.
    /// Output is bit-identical to the scalar `start` for the same RNG.
    pub fn start_batched(
        group: &DhGroup,
        secrets: Vec<(Vec<u8>, Vec<u8>)>,
        rng: &mut StdRng,
    ) -> (OtSender, OtMessageA) {
        let mut batch = ModexpBatch::new();
        let pending = OtSender::start_enqueue(group, secrets, rng, &mut batch);
        let results = batch.execute();
        pending.commit(&results)
    }

    /// Enqueue half of [`OtSender::encrypt`]. Each instance costs one
    /// general job (`k⁰ = H(n^a)`) and one dependent multiply: the naive
    /// `k¹ = H((n·g^{−a})^a)` second general exponentiation is folded
    /// algebraically into `n^a · g^{−a² mod (u−1)}` — valid because the
    /// generator's order divides `u−1` — so its ~1020 squarings become
    /// one comb walk riding the fixed-base class.
    ///
    /// # Errors
    ///
    /// Returns [`OtError::BatchMismatch`] when `M_B` has the wrong number
    /// of elements.
    pub fn encrypt_enqueue<'g>(
        &self,
        group: &'g DhGroup,
        msg_b: &OtMessageB,
        batch: &mut ModexpBatch<'g>,
    ) -> Result<OtEncryptPending, OtError> {
        if msg_b.elements.len() != self.secrets.len() {
            return Err(OtError::BatchMismatch);
        }
        let order = group.order();
        let mut k0 = Vec::with_capacity(self.a.len());
        let mut k1 = Vec::with_capacity(self.a.len());
        for (n, a) in msg_b.elements.iter().zip(&self.a) {
            let id0 = batch.push_pow(group, n.clone(), a.clone());
            // −a² mod (u−1), expressed the way inv_pow_g folds exponents
            // so the canonical result matches the scalar route exactly.
            let sq = a.mul(a);
            let reduced = if sq.cmp_abs(order) == Ordering::Greater {
                sq.rem(order)
            } else {
                sq
            };
            let id1 = batch.push_mul_pow_g(group, id0, order.sub(&reduced));
            k0.push(id0);
            k1.push(id1);
        }
        Ok(OtEncryptPending { k0, k1 })
    }

    /// One-shot batched [`OtSender::encrypt`].
    ///
    /// # Errors
    ///
    /// See [`OtSender::encrypt_enqueue`].
    pub fn encrypt_batched(
        &self,
        group: &DhGroup,
        msg_b: &OtMessageB,
    ) -> Result<OtMessageE, OtError> {
        let mut batch = ModexpBatch::new();
        let pending = self.encrypt_enqueue(group, msg_b, &mut batch)?;
        let results = batch.execute();
        Ok(self.encrypt_commit(group, &pending, &results))
    }

    /// Commit half of [`OtSender::encrypt`]: derives both keys from the
    /// executed batch and encrypts the payload pairs (hashing and the
    /// stream cipher stay scalar — they are microseconds, not the
    /// bottleneck).
    pub fn encrypt_commit(
        &self,
        group: &DhGroup,
        pending: &OtEncryptPending,
        results: &BatchResults,
    ) -> OtMessageE {
        let pairs = par_map_range(self.secrets.len(), |i| {
            let (x0, x1) = &self.secrets[i];
            let k0 = derive_key(group, results.get(pending.k0[i]));
            let k1 = derive_key(group, results.get(pending.k1[i]));
            (ctr_encrypt(&k0, x0), ctr_encrypt(&k1, x1))
        });
        OtMessageE { pairs }
    }
}

/// Pending [`OtSender::start`]: exponents sampled, `g^{a_i}` jobs in
/// flight.
#[derive(Debug)]
pub struct OtSenderPending {
    secrets: Vec<(Vec<u8>, Vec<u8>)>,
    a: Vec<Ubig>,
    jobs: Vec<JobId>,
}

impl OtSenderPending {
    /// Redeems the executed batch into the sender state and `M_A`.
    pub fn commit(self, results: &BatchResults) -> (OtSender, OtMessageA) {
        let elements = self.jobs.iter().map(|&id| results.get(id).clone()).collect();
        (OtSender { secrets: self.secrets, a: self.a }, OtMessageA { elements })
    }
}

/// Pending [`OtSender::encrypt`]: both key-derivation jobs in flight.
#[derive(Debug)]
pub struct OtEncryptPending {
    k0: Vec<JobId>,
    k1: Vec<JobId>,
}

/// The OT receiver: holds the choice bits and the blinding exponents.
///
/// Like [`OtSender`], the group is borrowed through the protocol calls
/// rather than cloned into the state.
#[derive(Debug, Clone)]
pub struct OtReceiver {
    choices: Vec<bool>,
    b: Vec<Ubig>,
    m_a: Vec<Ubig>,
}

impl OtReceiver {
    /// Responds to the sender's `M_A` with the blinded choices `M_B`.
    ///
    /// Blinding-exponent sampling stays sequential; the per-instance
    /// exponentiations fan out in parallel.
    pub fn respond(
        group: &DhGroup,
        choices: &[bool],
        msg_a: &OtMessageA,
        rng: &mut StdRng,
    ) -> Result<(OtReceiver, OtMessageB), OtError> {
        if msg_a.elements.len() != choices.len() {
            return Err(OtError::BatchMismatch);
        }
        let b: Vec<Ubig> = choices.iter().map(|_| group.random_exponent(rng)).collect();
        let elements = par_map_range(choices.len(), |i| {
            let gb = group.pow_g(&b[i]);
            if choices[i] {
                group.mul(&msg_a.elements[i], &gb)
            } else {
                gb
            }
        });
        let msg = OtMessageB { elements: elements.clone() };
        Ok((
            OtReceiver { choices: choices.to_vec(), b, m_a: msg_a.elements.clone() },
            msg,
        ))
    }

    /// [`OtReceiver::respond`] timed under an `ot_receiver_respond` span.
    ///
    /// # Errors
    ///
    /// See [`OtReceiver::respond`].
    pub fn respond_observed(
        group: &DhGroup,
        choices: &[bool],
        msg_a: &OtMessageA,
        rng: &mut StdRng,
        obs: &Obs,
    ) -> Result<(OtReceiver, OtMessageB), OtError> {
        let _span = obs.span("ot_receiver_respond");
        OtReceiver::respond(group, choices, msg_a, rng)
    }

    /// Number of instances in the batch.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Decrypts the chosen secret of every instance from `M_E`, fanning
    /// the independent per-instance exponentiations out in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`OtError::BatchMismatch`] when `M_E` has the wrong number
    /// of pairs.
    pub fn decrypt(&self, group: &DhGroup, msg_e: &OtMessageE) -> Result<Vec<Vec<u8>>, OtError> {
        if msg_e.pairs.len() != self.choices.len() {
            return Err(OtError::BatchMismatch);
        }
        Ok(par_map_range(self.choices.len(), |i| {
            let k = derive_key(group, &group.pow(&self.m_a[i], &self.b[i]));
            let ct = if self.choices[i] { &msg_e.pairs[i].1 } else { &msg_e.pairs[i].0 };
            ctr_decrypt(&k, ct)
        }))
    }

    /// [`OtReceiver::decrypt`] timed under an `ot_receiver_decrypt` span.
    ///
    /// # Errors
    ///
    /// See [`OtReceiver::decrypt`].
    pub fn decrypt_observed(
        &self,
        group: &DhGroup,
        msg_e: &OtMessageE,
        obs: &Obs,
    ) -> Result<Vec<Vec<u8>>, OtError> {
        let _span = obs.span("ot_receiver_decrypt");
        self.decrypt(group, msg_e)
    }

    /// Enqueue half of [`OtReceiver::respond`]: samples the blinding
    /// exponents identically to the scalar path and pushes the `g^{b_i}`
    /// jobs. The choice-dependent blinding multiply happens at commit
    /// (one scalar multiply per chosen instance).
    ///
    /// # Errors
    ///
    /// Returns [`OtError::BatchMismatch`] when `M_A` has the wrong number
    /// of elements.
    pub fn respond_enqueue<'g>(
        group: &'g DhGroup,
        choices: &[bool],
        msg_a: &OtMessageA,
        rng: &mut StdRng,
        batch: &mut ModexpBatch<'g>,
    ) -> Result<OtReceiverPending, OtError> {
        if msg_a.elements.len() != choices.len() {
            return Err(OtError::BatchMismatch);
        }
        let b: Vec<Ubig> = choices.iter().map(|_| group.random_exponent(rng)).collect();
        let jobs = b.iter().map(|bi| batch.push_pow_g(group, bi.clone())).collect();
        Ok(OtReceiverPending {
            choices: choices.to_vec(),
            b,
            m_a: msg_a.elements.clone(),
            jobs,
        })
    }

    /// One-shot batched [`OtReceiver::respond`].
    ///
    /// # Errors
    ///
    /// See [`OtReceiver::respond_enqueue`].
    pub fn respond_batched(
        group: &DhGroup,
        choices: &[bool],
        msg_a: &OtMessageA,
        rng: &mut StdRng,
    ) -> Result<(OtReceiver, OtMessageB), OtError> {
        let mut batch = ModexpBatch::new();
        let pending = OtReceiver::respond_enqueue(group, choices, msg_a, rng, &mut batch)?;
        let results = batch.execute();
        Ok(pending.commit(group, &results))
    }

    /// Enqueue half of [`OtReceiver::decrypt`]: one general job
    /// `M_a^{b_i}` per instance.
    ///
    /// # Errors
    ///
    /// Returns [`OtError::BatchMismatch`] when `M_E` has the wrong number
    /// of pairs.
    pub fn decrypt_enqueue<'g>(
        &self,
        group: &'g DhGroup,
        msg_e: &OtMessageE,
        batch: &mut ModexpBatch<'g>,
    ) -> Result<OtDecryptPending, OtError> {
        if msg_e.pairs.len() != self.choices.len() {
            return Err(OtError::BatchMismatch);
        }
        let jobs = self
            .m_a
            .iter()
            .zip(&self.b)
            .map(|(ma, bi)| batch.push_pow(group, ma.clone(), bi.clone()))
            .collect();
        let chosen = self
            .choices
            .iter()
            .zip(&msg_e.pairs)
            .map(|(&c, (e0, e1))| if c { e1.clone() } else { e0.clone() })
            .collect();
        Ok(OtDecryptPending { jobs, chosen })
    }

    /// One-shot batched [`OtReceiver::decrypt`].
    ///
    /// # Errors
    ///
    /// See [`OtReceiver::decrypt_enqueue`].
    pub fn decrypt_batched(
        &self,
        group: &DhGroup,
        msg_e: &OtMessageE,
    ) -> Result<Vec<Vec<u8>>, OtError> {
        let mut batch = ModexpBatch::new();
        let pending = self.decrypt_enqueue(group, msg_e, &mut batch)?;
        let results = batch.execute();
        Ok(pending.commit(group, &results))
    }
}

/// Pending [`OtReceiver::respond`]: blinding exponents sampled, `g^{b_i}`
/// jobs in flight.
#[derive(Debug)]
pub struct OtReceiverPending {
    choices: Vec<bool>,
    b: Vec<Ubig>,
    m_a: Vec<Ubig>,
    jobs: Vec<JobId>,
}

impl OtReceiverPending {
    /// Redeems the executed batch: applies the choice-dependent blinding
    /// and returns the receiver state and `M_B`.
    pub fn commit(self, group: &DhGroup, results: &BatchResults) -> (OtReceiver, OtMessageB) {
        let elements: Vec<Ubig> = self
            .jobs
            .iter()
            .zip(&self.choices)
            .zip(&self.m_a)
            .map(|((&id, &c), ma)| {
                let gb = results.get(id);
                if c {
                    group.mul(ma, gb)
                } else {
                    gb.clone()
                }
            })
            .collect();
        let msg = OtMessageB { elements: elements.clone() };
        (OtReceiver { choices: self.choices, b: self.b, m_a: self.m_a }, msg)
    }
}

/// Pending [`OtReceiver::decrypt`]: key-derivation jobs in flight plus
/// the chosen ciphertext of every instance.
#[derive(Debug)]
pub struct OtDecryptPending {
    jobs: Vec<JobId>,
    chosen: Vec<Vec<u8>>,
}

impl OtDecryptPending {
    /// Redeems the executed batch into the decrypted payloads.
    pub fn commit(self, group: &DhGroup, results: &BatchResults) -> Vec<Vec<u8>> {
        self.jobs
            .iter()
            .zip(&self.chosen)
            .map(|(&id, ct)| ctr_decrypt(&derive_key(group, results.get(id)), ct))
            .collect()
    }
}

/// Key derivation `H(element)` for the payload cipher.
fn derive_key(group: &DhGroup, element: &Ubig) -> [u8; 32] {
    sha256(&group.encode_element(element))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run_batch(group: &DhGroup, secrets: Vec<(Vec<u8>, Vec<u8>)>, choices: Vec<bool>) -> Vec<Vec<u8>> {
        let mut rng_s = StdRng::seed_from_u64(100);
        let mut rng_r = StdRng::seed_from_u64(200);
        let (sender, msg_a) = OtSender::start(group, secrets, &mut rng_s);
        let (receiver, msg_b) = OtReceiver::respond(group, &choices, &msg_a, &mut rng_r).unwrap();
        let msg_e = sender.encrypt(group, &msg_b).unwrap();
        receiver.decrypt(group, &msg_e).unwrap()
    }

    #[test]
    fn receiver_gets_exactly_the_chosen_secret() {
        let group = DhGroup::tiny_test_group();
        let secrets = vec![
            (b"zero-0".to_vec(), b"one--0".to_vec()),
            (b"zero-1".to_vec(), b"one--1".to_vec()),
            (b"zero-2".to_vec(), b"one--2".to_vec()),
        ];
        let out = run_batch(&group, secrets, vec![false, true, false]);
        assert_eq!(out[0], b"zero-0");
        assert_eq!(out[1], b"one--1");
        assert_eq!(out[2], b"zero-2");
    }

    #[test]
    fn unchosen_ciphertext_does_not_decrypt() {
        let group = DhGroup::tiny_test_group();
        let mut rng_s = StdRng::seed_from_u64(1);
        let mut rng_r = StdRng::seed_from_u64(2);
        let secrets = vec![(b"secret-zero".to_vec(), b"secret-one!".to_vec())];
        let (sender, msg_a) = OtSender::start(&group, secrets, &mut rng_s);
        let (receiver, msg_b) =
            OtReceiver::respond(&group, &[false], &msg_a, &mut rng_r).unwrap();
        let msg_e = sender.encrypt(&group, &msg_b).unwrap();
        // Forge a receiver that tries the *other* ciphertext with its key.
        let k = {
            // Receiver key = H(M_a^b): reconstruct what it would use.
            let out = receiver.decrypt(&group, &msg_e).unwrap();
            assert_eq!(out[0], b"secret-zero");
            // Decrypt e1 with the receiver's k (choice 0 key): garbage.
            let wrong = ctr_decrypt(
                &derive_key(&group, &group.pow(&msg_a.elements[0], &receiver.b[0])),
                &msg_e.pairs[0].1,
            );
            wrong
        };
        assert_ne!(k, b"secret-one!");
    }

    #[test]
    fn works_on_modp_1024() {
        let group = DhGroup::modp_1024();
        let secrets = vec![(vec![1u8, 2, 3], vec![4u8, 5, 6])];
        let out = run_batch(&group, secrets, vec![true]);
        assert_eq!(out[0], vec![4, 5, 6]);
    }

    #[test]
    fn message_codecs_roundtrip() {
        let group = DhGroup::tiny_test_group();
        let mut rng = StdRng::seed_from_u64(9);
        let (sender, msg_a) = OtSender::start(
            &group,
            vec![(vec![1, 2], vec![3, 4]), (vec![5], vec![6])],
            &mut rng,
        );
        let bytes_a = msg_a.encode(&group);
        assert_eq!(OtMessageA::decode(&group, &bytes_a).unwrap(), msg_a);

        let (_, msg_b) =
            OtReceiver::respond(&group, &[true, false], &msg_a, &mut rng).unwrap();
        let bytes_b = msg_b.encode(&group);
        assert_eq!(OtMessageB::decode(&group, &bytes_b).unwrap(), msg_b);

        let msg_e = sender.encrypt(&group, &msg_b).unwrap();
        let bytes_e = msg_e.encode();
        assert_eq!(OtMessageE::decode(&bytes_e).unwrap(), msg_e);
    }

    #[test]
    fn codec_rejects_malformed() {
        let group = DhGroup::tiny_test_group();
        assert_eq!(
            OtMessageA::decode(&group, &[1, 2, 3]).unwrap_err(),
            OtError::Malformed
        );
        assert_eq!(OtMessageE::decode(&[1, 2]).unwrap_err(), OtError::Malformed);
        let msg = OtMessageE { pairs: vec![(vec![1], vec![2])] };
        let mut bytes = msg.encode();
        bytes.pop();
        assert_eq!(OtMessageE::decode(&bytes).unwrap_err(), OtError::Malformed);
    }

    #[test]
    fn batch_mismatch_detected() {
        let group = DhGroup::tiny_test_group();
        let mut rng = StdRng::seed_from_u64(10);
        let (sender, msg_a) = OtSender::start(&group, vec![(vec![1], vec![2])], &mut rng);
        assert!(OtReceiver::respond(&group, &[true, false], &msg_a, &mut rng).is_err());
        let bad_b = OtMessageB { elements: vec![] };
        assert_eq!(sender.encrypt(&group, &bad_b).unwrap_err(), OtError::BatchMismatch);
    }

    #[test]
    fn empty_batch_is_fine() {
        let group = DhGroup::tiny_test_group();
        let out = run_batch(&group, vec![], vec![]);
        assert!(out.is_empty());
    }

    #[test]
    fn batched_rounds_match_scalar_rounds_bit_for_bit() {
        // Same RNG seeds through both routes: every wire message and
        // every decrypted payload must be identical, on the generic
        // Montgomery group and on the fold-path fleet group, across
        // quad-aligned and ragged batch sizes.
        let tiny = DhGroup::tiny_test_group();
        let wk = DhGroup::wavekey_1024();
        for group in [&tiny, &wk] {
            for count in [1usize, 3, 4, 5] {
                let secrets: Vec<_> = (0..count)
                    .map(|i| (vec![i as u8; 4], vec![0xA0 | i as u8; 4]))
                    .collect();
                let choices: Vec<bool> = (0..count).map(|i| i % 2 == 1).collect();

                let mut rng_s = StdRng::seed_from_u64(77);
                let mut rng_r = StdRng::seed_from_u64(88);
                let (sender, msg_a) = OtSender::start(group, secrets.clone(), &mut rng_s);
                let (receiver, msg_b) =
                    OtReceiver::respond(group, &choices, &msg_a, &mut rng_r).unwrap();
                let msg_e = sender.encrypt(group, &msg_b).unwrap();
                let out = receiver.decrypt(group, &msg_e).unwrap();

                let mut rng_s = StdRng::seed_from_u64(77);
                let mut rng_r = StdRng::seed_from_u64(88);
                let (sender_b, msg_a_b) =
                    OtSender::start_batched(group, secrets, &mut rng_s);
                let (receiver_b, msg_b_b) =
                    OtReceiver::respond_batched(group, &choices, &msg_a_b, &mut rng_r)
                        .unwrap();
                let msg_e_b = sender_b.encrypt_batched(group, &msg_b_b).unwrap();
                let out_b = receiver_b.decrypt_batched(group, &msg_e_b).unwrap();

                assert_eq!(msg_a_b, msg_a, "M_A count {count}");
                assert_eq!(msg_b_b, msg_b, "M_B count {count}");
                assert_eq!(msg_e_b, msg_e, "M_E count {count}");
                assert_eq!(out_b, out, "payloads count {count}");
            }
        }
    }

    #[test]
    fn cross_session_starts_share_one_batch() {
        // Two independent sessions enqueue into ONE batch; committing
        // against the shared execution must equal two scalar starts.
        let group = DhGroup::tiny_test_group();
        let mut batch = ModexpBatch::new();
        let mut rng1 = StdRng::seed_from_u64(301);
        let mut rng2 = StdRng::seed_from_u64(302);
        let s1 = vec![(vec![1], vec![2]), (vec![3], vec![4])];
        let s2 = vec![(vec![5], vec![6]), (vec![7], vec![8]), (vec![9], vec![10])];
        let p1 = OtSender::start_enqueue(&group, s1.clone(), &mut rng1, &mut batch);
        let p2 = OtSender::start_enqueue(&group, s2.clone(), &mut rng2, &mut batch);
        let results = batch.execute();
        let (_, msg_a1) = p1.commit(&results);
        let (_, msg_a2) = p2.commit(&results);

        let mut rng1 = StdRng::seed_from_u64(301);
        let mut rng2 = StdRng::seed_from_u64(302);
        let (_, ref_a1) = OtSender::start(&group, s1, &mut rng1);
        let (_, ref_a2) = OtSender::start(&group, s2, &mut rng2);
        assert_eq!(msg_a1, ref_a1);
        assert_eq!(msg_a2, ref_a2);
    }

    #[test]
    fn batched_enqueue_detects_mismatch() {
        let group = DhGroup::tiny_test_group();
        let mut rng = StdRng::seed_from_u64(11);
        let (sender, msg_a) = OtSender::start(&group, vec![(vec![1], vec![2])], &mut rng);
        let mut batch = ModexpBatch::new();
        assert!(OtReceiver::respond_enqueue(
            &group,
            &[true, false],
            &msg_a,
            &mut rng,
            &mut batch
        )
        .is_err());
        let bad_b = OtMessageB { elements: vec![] };
        assert_eq!(
            sender.encrypt_enqueue(&group, &bad_b, &mut batch).unwrap_err(),
            OtError::BatchMismatch
        );
    }

    #[test]
    fn observed_variants_match_plain_and_record_spans() {
        let group = DhGroup::tiny_test_group();
        let secrets = vec![(b"left".to_vec(), b"right".to_vec())];
        let choices = vec![true];
        let (obs, mem) = Obs::with_memory();

        let mut rng_s = StdRng::seed_from_u64(100);
        let mut rng_r = StdRng::seed_from_u64(200);
        let (sender, msg_a) =
            OtSender::start_observed(&group, secrets.clone(), &mut rng_s, &obs);
        let (receiver, msg_b) =
            OtReceiver::respond_observed(&group, &choices, &msg_a, &mut rng_r, &obs).unwrap();
        let msg_e = sender.encrypt_observed(&group, &msg_b, &obs).unwrap();
        let out = receiver.decrypt_observed(&group, &msg_e, &obs).unwrap();
        assert_eq!(out, run_batch(&group, secrets, choices));

        let names: Vec<String> = mem.spans().iter().map(|(n, _)| n.clone()).collect();
        assert_eq!(
            names,
            vec!["ot_sender_start", "ot_receiver_respond", "ot_sender_encrypt", "ot_receiver_decrypt"]
        );

        // A disabled handle changes nothing about the protocol outputs.
        let mut rng_s = StdRng::seed_from_u64(100);
        let disabled = Obs::disabled();
        let (_, msg_a2) = OtSender::start_observed(
            &group,
            vec![(b"left".to_vec(), b"right".to_vec())],
            &mut rng_s,
            &disabled,
        );
        assert_eq!(msg_a2, msg_a);
    }
}
