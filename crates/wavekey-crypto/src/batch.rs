//! Cross-session modular-exponentiation batching.
//!
//! A single WaveKey agreement needs hundreds of group exponentiations,
//! and a fleet of concurrent sessions needs the *same kinds* over the
//! *same group*. [`ModexpBatch`] is the work-gathering layer: callers —
//! the OT rounds in [`crate::rounds`], a `SessionManager` spawning a
//! wave of sessions — enqueue jobs and get opaque [`JobId`]s back;
//! [`ModexpBatch::execute`] then groups the jobs by `(modulus,
//! base-class)`, packs each class into quads for the 4-way CIOS lanes
//! ([`crate::limb4`]), and fans the quads out over the rayon pool.
//!
//! Job classes:
//!
//! * fixed-base (`g^x`): evaluated through the group's shared comb
//!   table, four exponents per table walk;
//! * general (`base^x`): evaluated through the 4-way fixed-window
//!   Montgomery kernel;
//! * dependent multiply (`result(dep)·g^x`): the Straus/interleaved
//!   shape `n^a·g^b` — the `g^b` half rides the fixed-base class and the
//!   final multiplication is a single Montgomery multiply, so the second
//!   *general* exponentiation the naive form would need disappears.
//!
//! Every job is independent; execution order never leaks into results.
//! [`ModexpBatch::execute_scalar`] evaluates the identical job list
//! through the scalar one-at-a-time group calls and is the pinned
//! reference: `execute` must match it bit-for-bit.

use crate::bigint::Ubig;
use crate::group::DhGroup;
use crate::par::par_map_range;

/// Handle to one enqueued job, redeemable against [`BatchResults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobId(usize);

#[derive(Debug, Clone)]
enum JobKind {
    /// `g^exp` through the fixed-base comb table.
    PowG { exp: Ubig },
    /// `g^(−exp)` — same table, exponent folded to `(u−1) − (exp mod (u−1))`.
    InvPowG { exp: Ubig },
    /// `base^exp` through the general 4-way kernel.
    Pow { base: Ubig, exp: Ubig },
    /// `result(dep) · g^g_exp`: interleaved multi-exponentiation. The
    /// `g^g_exp` half is batched with the fixed-base class; the multiply
    /// happens after both classes resolve.
    MulPowG { dep: usize, g_exp: Ubig },
}

/// A gathered batch of modexp jobs over one or more groups.
pub struct ModexpBatch<'g> {
    jobs: Vec<(&'g DhGroup, JobKind)>,
}

/// Results of an executed batch, indexed by [`JobId`].
pub struct BatchResults {
    out: Vec<Ubig>,
}

impl BatchResults {
    /// The result of job `id`.
    pub fn get(&self, id: JobId) -> &Ubig {
        &self.out[id.0]
    }

    /// All results in enqueue order.
    pub fn into_vec(self) -> Vec<Ubig> {
        self.out
    }

    /// Number of results.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// `true` when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

impl<'g> Default for ModexpBatch<'g> {
    fn default() -> Self {
        ModexpBatch::new()
    }
}

impl<'g> ModexpBatch<'g> {
    /// An empty batch.
    pub fn new() -> ModexpBatch<'g> {
        ModexpBatch { jobs: Vec::new() }
    }

    /// Number of jobs enqueued.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when nothing is enqueued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    fn push(&mut self, group: &'g DhGroup, kind: JobKind) -> JobId {
        self.jobs.push((group, kind));
        JobId(self.jobs.len() - 1)
    }

    /// Enqueues `g^exp` (fixed-base class).
    pub fn push_pow_g(&mut self, group: &'g DhGroup, exp: Ubig) -> JobId {
        self.push(group, JobKind::PowG { exp })
    }

    /// Enqueues `g^(−exp)` (fixed-base class), result identical to
    /// [`DhGroup::inv_pow_g`].
    pub fn push_inv_pow_g(&mut self, group: &'g DhGroup, exp: Ubig) -> JobId {
        self.push(group, JobKind::InvPowG { exp })
    }

    /// Enqueues `base^exp` (general class).
    pub fn push_pow(&mut self, group: &'g DhGroup, base: Ubig, exp: Ubig) -> JobId {
        self.push(group, JobKind::Pow { base, exp })
    }

    /// Enqueues `result(dep) · g^g_exp` — interleaved multi-exponentiation
    /// for the `n^a·g^b` shape. `dep` must belong to the same group.
    pub fn push_mul_pow_g(&mut self, group: &'g DhGroup, dep: JobId, g_exp: Ubig) -> JobId {
        debug_assert!(
            group.same_params(self.jobs[dep.0].0),
            "dependent multiply across different groups"
        );
        self.push(group, JobKind::MulPowG { dep: dep.0, g_exp })
    }

    /// The effective fixed-base exponent of a job: [`JobKind::InvPowG`]
    /// folds its negation into the exponent exactly as
    /// [`DhGroup::inv_pow_g`] does, so results stay bit-identical.
    fn fixed_exp(group: &DhGroup, kind: &JobKind) -> Ubig {
        match kind {
            JobKind::PowG { exp } => exp.clone(),
            JobKind::MulPowG { g_exp, .. } => g_exp.clone(),
            JobKind::InvPowG { exp } => {
                let order = group.order();
                let reduced;
                let e = if exp.cmp_abs(order) == std::cmp::Ordering::Greater {
                    reduced = exp.rem(order);
                    &reduced
                } else {
                    exp
                };
                order.sub(e)
            }
            JobKind::Pow { .. } => unreachable!("general job in fixed-base class"),
        }
    }

    /// Executes every job through the batched 4-way kernels and returns
    /// the results. Jobs are grouped by deployment group, packed into
    /// quads per class (ragged tails padded with dummy lanes that are
    /// discarded), and swept in parallel; dependent multiplies resolve
    /// last. Results are bit-identical to [`ModexpBatch::execute_scalar`]
    /// and independent of thread count.
    pub fn execute(self) -> BatchResults {
        let jobs = self.jobs;
        let total = jobs.len();
        let mut out: Vec<Ubig> = vec![Ubig::zero(); total];
        // g^g_exp halves of dependent multiplies, resolved by job index.
        let mut g_half: Vec<Option<Ubig>> = vec![None; total];
        // Partition job indices by group identity and class.
        let mut parts: Vec<(&DhGroup, Vec<usize>, Vec<usize>)> = Vec::new();
        for (idx, (group, kind)) in jobs.iter().enumerate() {
            let part = match parts.iter_mut().find(|(g, _, _)| g.same_params(group)) {
                Some(p) => p,
                None => {
                    parts.push((group, Vec::new(), Vec::new()));
                    parts.last_mut().unwrap()
                }
            };
            match kind {
                JobKind::Pow { .. } => part.2.push(idx),
                _ => part.1.push(idx),
            }
        }
        for (group, fixed, general) in &parts {
            // Fixed-base class: four comb walks per kernel pass.
            let exps: Vec<Ubig> =
                fixed.iter().map(|&i| Self::fixed_exp(group, &jobs[i].1)).collect();
            let quads = fixed.len().div_ceil(4);
            let results = par_map_range(quads, |q| {
                let lanes: [Ubig; 4] = std::array::from_fn(|l| {
                    exps.get(q * 4 + l).cloned().unwrap_or_else(Ubig::zero)
                });
                group.pow_g_x4(&lanes)
            });
            for (pos, &idx) in fixed.iter().enumerate() {
                let r = results[pos / 4][pos % 4].clone();
                if matches!(jobs[idx].1, JobKind::MulPowG { .. }) {
                    g_half[idx] = Some(r);
                } else {
                    out[idx] = r;
                }
            }
            // General class: four fixed-window exponentiations per pass.
            let quads = general.len().div_ceil(4);
            let results = par_map_range(quads, |q| {
                let bases: [Ubig; 4] = std::array::from_fn(|l| {
                    match general.get(q * 4 + l).map(|&i| &jobs[i].1) {
                        Some(JobKind::Pow { base, .. }) => base.clone(),
                        _ => Ubig::one(),
                    }
                });
                let exps: [Ubig; 4] = std::array::from_fn(|l| {
                    match general.get(q * 4 + l).map(|&i| &jobs[i].1) {
                        Some(JobKind::Pow { exp, .. }) => exp.clone(),
                        _ => Ubig::zero(),
                    }
                });
                group.pow_x4(&bases, &exps)
            });
            for (pos, &idx) in general.iter().enumerate() {
                out[idx] = results[pos / 4][pos % 4].clone();
            }
        }
        // Dependent multiplies, in enqueue order: a JobId handed to
        // push_mul_pow_g always precedes it, so deps are resolved first.
        for idx in 0..total {
            if let (group, JobKind::MulPowG { dep, .. }) = &jobs[idx] {
                let g = g_half[idx].take().expect("fixed-base half resolved");
                let r = group.mul(&out[*dep], &g);
                out[idx] = r;
            }
        }
        BatchResults { out }
    }

    /// Pinned reference: evaluates the identical job list through the
    /// scalar one-at-a-time group operations.
    pub fn execute_scalar(self) -> BatchResults {
        let mut out: Vec<Ubig> = Vec::with_capacity(self.jobs.len());
        for (group, kind) in &self.jobs {
            let r = match kind {
                JobKind::PowG { exp } => group.pow_g(exp),
                JobKind::InvPowG { exp } => group.inv_pow_g(exp),
                JobKind::Pow { base, exp } => group.pow(base, exp),
                JobKind::MulPowG { dep, g_exp } => group.mul(&out[*dep], &group.pow_g(g_exp)),
            };
            out.push(r);
        }
        BatchResults { out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fill_batch<'g>(
        groups: &[&'g DhGroup],
        jobs: usize,
        seed: u64,
    ) -> (ModexpBatch<'g>, ModexpBatch<'g>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fast = ModexpBatch::new();
        let mut slow = ModexpBatch::new();
        let mut last_pow: Option<JobId> = None;
        for i in 0..jobs {
            let g = groups[i % groups.len()];
            let x = g.random_exponent(&mut rng);
            match rng.gen_range(0..4) {
                0 => {
                    fast.push_pow_g(g, x.clone());
                    slow.push_pow_g(g, x);
                }
                1 => {
                    fast.push_inv_pow_g(g, x.clone());
                    slow.push_inv_pow_g(g, x);
                }
                2 => {
                    let base = Ubig::random_below(g.modulus(), &mut rng);
                    let id = fast.push_pow(g, base.clone(), x.clone());
                    slow.push_pow(g, base, x);
                    // Remember a same-group dep for a later MulPowG.
                    if groups.len() == 1 {
                        last_pow = Some(id);
                    }
                }
                _ => match last_pow {
                    Some(dep) => {
                        fast.push_mul_pow_g(g, dep, x.clone());
                        slow.push_mul_pow_g(g, dep, x);
                    }
                    None => {
                        fast.push_pow_g(g, x.clone());
                        slow.push_pow_g(g, x);
                    }
                },
            }
        }
        (fast, slow)
    }

    #[test]
    fn batched_matches_scalar_including_ragged_tails() {
        let tiny = DhGroup::tiny_test_group();
        // 1, 4±ragged, and larger-than-quad counts.
        for jobs in [1usize, 3, 4, 5, 7, 8, 13] {
            let (fast, slow) = fill_batch(&[&tiny], jobs, jobs as u64);
            let a = fast.execute().into_vec();
            let b = slow.execute_scalar().into_vec();
            assert_eq!(a, b, "jobs {jobs}");
        }
    }

    #[test]
    fn mixed_groups_in_one_batch() {
        let tiny = DhGroup::tiny_test_group();
        let other = DhGroup::tiny_test_group_shared();
        let third = crate::group::PrecompCache::global()
            .get(&Ubig::from_hex("ffffffffffffffffffffffffffffff61"), &Ubig::from_u64(3));
        // Interleave jobs across three groups (two share parameters and
        // must land in one partition; the third has a 128-bit modulus).
        let groups: Vec<&DhGroup> = vec![&tiny, other.as_ref(), third.as_ref()];
        let (fast, slow) = fill_batch(&groups, 11, 99);
        assert_eq!(fast.execute().into_vec(), slow.execute_scalar().into_vec());
    }

    #[test]
    fn fleet_group_batch_matches_scalar_montgomery_route() {
        // The executor dispatches WAVEKEY-1024 quads onto the Crandall
        // fold kernels while execute_scalar stays on generic Montgomery;
        // mixing it with a Montgomery-only group in one batch must still
        // match job-for-job.
        let wk = DhGroup::wavekey_1024();
        let tiny = DhGroup::tiny_test_group();
        let (fast, slow) = fill_batch(&[&wk, &tiny], 10, 4242);
        assert_eq!(fast.execute().into_vec(), slow.execute_scalar().into_vec());
    }

    #[test]
    fn mul_pow_g_realizes_interleaved_multiexp() {
        let g = DhGroup::tiny_test_group();
        let mut rng = StdRng::seed_from_u64(7);
        let base = Ubig::random_below(g.modulus(), &mut rng);
        let a = g.random_exponent(&mut rng);
        let b = g.random_exponent(&mut rng);
        let mut batch = ModexpBatch::new();
        let na = batch.push_pow(&g, base.clone(), a.clone());
        let id = batch.push_mul_pow_g(&g, na, b.clone());
        let res = batch.execute();
        // result = base^a · g^b, the Straus shape.
        let expect = g.mul(&g.pow(&base, &a), &g.pow_g(&b));
        assert_eq!(res.get(id), &expect);
    }

    #[test]
    fn inv_pow_g_jobs_match_group_inv_including_edges() {
        let g = DhGroup::tiny_test_group();
        let order = g.order().clone();
        // Edge exponents around the order: 0, 1, order−1, order, order+1,
        // 2·order (reduces to 0 → g^order = 1 path), and a wide value.
        let edges = [
            Ubig::zero(),
            Ubig::one(),
            order.sub(&Ubig::one()),
            order.clone(),
            order.add(&Ubig::one()),
            order.add(&order),
            order.mul(&order).add(&Ubig::from_u64(5)),
        ];
        let mut fast = ModexpBatch::new();
        let mut ids = Vec::new();
        for e in &edges {
            ids.push(fast.push_inv_pow_g(&g, e.clone()));
        }
        let res = fast.execute();
        for (id, e) in ids.iter().zip(&edges) {
            assert_eq!(res.get(*id), &g.inv_pow_g(e), "exp {e}");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let res = ModexpBatch::new().execute();
        assert!(res.is_empty());
        assert_eq!(res.len(), 0);
    }
}
