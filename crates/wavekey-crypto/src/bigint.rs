//! Arbitrary-precision unsigned integers for the OT group arithmetic.
//!
//! [`Ubig`] stores little-endian `u64` limbs. The performance-critical
//! operation is modular exponentiation with a fixed odd modulus (the DH
//! group prime), implemented with Montgomery multiplication — schoolbook
//! multiply plus REDC, which avoids general long division entirely. A
//! simple shift-subtract remainder exists as the slow path for one-time
//! setup (computing `R² mod n`) and for reducing random samples.

use crate::limb4::{cios_mont_mul_x4, fold_mul_x4, fold_sqr_x4, LANES};
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Ordering;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs,
/// normalized: no trailing zero limbs except for the value 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ubig {
    limbs: Vec<u64>,
}

impl Ubig {
    /// The value 0.
    pub fn zero() -> Ubig {
        Ubig { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Ubig {
        Ubig { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Ubig {
        if v == 0 {
            Ubig::zero()
        } else {
            Ubig { limbs: vec![v] }
        }
    }

    /// Builds from big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Ubig {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
        }
        let mut n = Ubig { limbs };
        n.normalize();
        n
    }

    /// Serializes to big-endian bytes (no leading zeros; `[0]` for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return vec![0];
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zeros.
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first);
        out
    }

    /// Serializes to exactly `len` big-endian bytes (left-padded).
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit.
    pub fn to_be_bytes_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_be_bytes();
        let raw = if raw == [0] { Vec::new() } else { raw };
        assert!(raw.len() <= len, "value does not fit in {len} bytes");
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hexadecimal string (no prefix, case-insensitive).
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters.
    pub fn from_hex(s: &str) -> Ubig {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        let mut bytes = Vec::with_capacity(s.len() / 2 + 1);
        let chars: Vec<char> = s.chars().collect();
        let mut i = 0;
        if chars.len() % 2 == 1 {
            bytes.push(chars[0].to_digit(16).expect("hex digit") as u8);
            i = 1;
        }
        while i < chars.len() {
            let hi = chars[i].to_digit(16).expect("hex digit") as u8;
            let lo = chars[i + 1].to_digit(16).expect("hex digit") as u8;
            bytes.push((hi << 4) | lo);
            i += 2;
        }
        Ubig::from_be_bytes(&bytes)
    }

    /// `true` when the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` when the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&l| l & 1 == 1)
    }

    /// Bit length (0 for the value 0).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// The value of bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// The value of the `count` bits starting at bit `lo` (little-endian
    /// bit order), as a `u64`. Bits beyond the value are zero.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 64.
    pub fn bits(&self, lo: usize, count: usize) -> u64 {
        assert!(count >= 1 && count <= 64, "bits() window must be 1..=64");
        let limb = lo / 64;
        let off = lo % 64;
        let mut v = self.limbs.get(limb).copied().unwrap_or(0) >> off;
        if off + count > 64 {
            let hi = self.limbs.get(limb + 1).copied().unwrap_or(0);
            v |= hi << (64 - off);
        }
        if count < 64 {
            v & ((1u64 << count) - 1)
        } else {
            v
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Addition.
    pub fn add(&self, other: &Ubig) -> Ubig {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = Ubig { limbs: out };
        r.normalize();
        r
    }

    /// Subtraction.
    ///
    /// # Panics
    ///
    /// Panics on underflow (`other > self`).
    pub fn sub(&self, other: &Ubig) -> Ubig {
        assert!(self.cmp_abs(other) != Ordering::Less, "ubig subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = Ubig { limbs: out };
        r.normalize();
        r
    }

    /// Comparison of absolute values.
    pub fn cmp_abs(&self, other: &Ubig) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &Ubig) -> Ubig {
        if self.is_zero() || other.is_zero() {
            return Ubig::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u128::from(out[i + j]) + u128::from(a) * u128::from(b) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = u128::from(out[k]) + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = Ubig { limbs: out };
        r.normalize();
        r
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Ubig {
        if self.is_zero() {
            return Ubig::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        let mut r = Ubig { limbs: out };
        r.normalize();
        r
    }

    /// Remainder `self mod modulus` by shift-subtract long division over
    /// an in-place limb buffer: the shifted modulus is materialized once
    /// and walked down one bit per iteration, so a `2k → k`-limb
    /// reduction allocates twice in total instead of once per quotient
    /// bit. Still the *slow path* relative to Montgomery arithmetic —
    /// used for setup, reducing random samples, and exponent arithmetic
    /// (the batched OT sender reduces `a² mod (u−1)` through here).
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn rem(&self, modulus: &Ubig) -> Ubig {
        assert!(!modulus.is_zero(), "division by zero");
        if self.cmp_abs(modulus) == Ordering::Less {
            return self.clone();
        }
        let shift = self.bit_len() - modulus.bit_len();
        let mut r = self.limbs.clone();
        // modulus << shift has exactly self.bit_len() bits, so it fits
        // the same limb count as r.
        let mut m = modulus.shl(shift).limbs;
        m.resize(r.len(), 0);
        for _ in 0..=shift {
            if limbs_ge(&r, &m) {
                limbs_sub_in_place(&mut r, &m);
            }
            // m >>= 1 in place.
            let mut carry = 0u64;
            for l in m.iter_mut().rev() {
                let next = *l & 1;
                *l = (*l >> 1) | (carry << 63);
                carry = next;
            }
        }
        let mut out = Ubig { limbs: r };
        out.normalize();
        out
    }

    /// Reference remainder: the original allocate-per-step shift-subtract
    /// loop, retained so differential tests can pin [`Ubig::rem`].
    pub fn rem_reference(&self, modulus: &Ubig) -> Ubig {
        assert!(!modulus.is_zero(), "division by zero");
        if self.cmp_abs(modulus) == Ordering::Less {
            return self.clone();
        }
        let shift = self.bit_len() - modulus.bit_len();
        let mut r = self.clone();
        for s in (0..=shift).rev() {
            let shifted = modulus.shl(s);
            if r.cmp_abs(&shifted) != Ordering::Less {
                r = r.sub(&shifted);
            }
        }
        r
    }

    /// Modular addition (`self`, `other` already < `modulus`).
    pub fn mod_add(&self, other: &Ubig, modulus: &Ubig) -> Ubig {
        let s = self.add(other);
        if s.cmp_abs(modulus) == Ordering::Less {
            s
        } else {
            s.sub(modulus)
        }
    }

    /// Samples a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below(bound: &Ubig, rng: &mut StdRng) -> Ubig {
        assert!(!bound.is_zero(), "empty sampling range");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(64);
        let top_mask = if bits % 64 == 0 { u64::MAX } else { (1u64 << (bits % 64)) - 1 };
        // Rejection sampling keeps the distribution exactly uniform.
        loop {
            let mut candidate: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            if let Some(top) = candidate.last_mut() {
                *top &= top_mask;
            }
            let mut c = Ubig { limbs: candidate };
            c.normalize();
            if c.cmp_abs(bound) == Ordering::Less {
                return c;
            }
        }
    }
}

impl From<u64> for Ubig {
    fn from(v: u64) -> Ubig {
        Ubig::from_u64(v)
    }
}

impl std::fmt::Display for Ubig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Hexadecimal is enough for protocol debugging.
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        let mut first = true;
        for limb in self.limbs.iter().rev() {
            if first {
                write!(f, "{limb:x}")?;
                first = false;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        Ok(())
    }
}

/// Largest modulus width (in limbs) served by the stack-scratch CIOS
/// kernel; wider moduli fall back to the mul-then-REDC reference path.
/// 32 limbs = 2048 bits, twice the WaveKey group width.
pub(crate) const MAX_CIOS_LIMBS: usize = 32;

/// `a >= b` over equal-length little-endian limb slices.
pub(crate) fn limbs_ge(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Greater => return true,
            Ordering::Less => return false,
            Ordering::Equal => {}
        }
    }
    true
}

/// `a -= b` over equal-length limb slices, wrapping modulo `2^(64·len)`
/// (the final borrow is discarded — callers guarantee it cancels against
/// a carried top bit).
pub(crate) fn limbs_sub_in_place(a: &mut [u64], b: &[u64]) {
    debug_assert_eq!(a.len(), b.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
}

/// Interleaved CIOS Montgomery multiplication (Koç-Acar-Kaliski).
///
/// Computes `out = a·b·R⁻¹ mod n` for `a`, `b` in Montgomery form, all
/// operands exactly `n.len()` limbs, using a fixed stack scratch buffer —
/// no heap allocation per multiplication. Multiply and reduce are fused:
/// each outer iteration folds one limb of `b` in and one reduction step
/// out, so the working set stays at `k + 2` limbs instead of `2k + 1`.
pub(crate) fn cios_mont_mul(n: &[u64], n_prime: u64, a: &[u64], b: &[u64], out: &mut [u64]) {
    let k = n.len();
    debug_assert!(k >= 1 && k <= MAX_CIOS_LIMBS);
    debug_assert!(a.len() == k && b.len() == k && out.len() == k);
    let mut scratch = [0u64; MAX_CIOS_LIMBS + 2];
    let t = &mut scratch[..k + 2];
    for i in 0..k {
        // t += a · b[i]
        let bi = u128::from(b[i]);
        let mut carry = 0u128;
        for j in 0..k {
            let cur = u128::from(t[j]) + u128::from(a[j]) * bi + carry;
            t[j] = cur as u64;
            carry = cur >> 64;
        }
        let cur = u128::from(t[k]) + carry;
        t[k] = cur as u64;
        t[k + 1] = (cur >> 64) as u64;
        // t = (t + m·n) / 2^64 with m chosen so the low limb cancels.
        let m = u128::from(t[0].wrapping_mul(n_prime));
        let cur = u128::from(t[0]) + m * u128::from(n[0]);
        let mut carry = cur >> 64;
        for j in 1..k {
            let cur = u128::from(t[j]) + m * u128::from(n[j]) + carry;
            t[j - 1] = cur as u64;
            carry = cur >> 64;
        }
        let cur = u128::from(t[k]) + carry;
        t[k - 1] = cur as u64;
        t[k] = t[k + 1] + (cur >> 64) as u64;
    }
    // Result is in [0, 2n); one conditional subtraction normalizes it. A
    // set top word means t ≥ 2^(64k) > n, and the discarded borrow of the
    // wrapping subtraction cancels exactly against it.
    if t[k] != 0 || limbs_ge(&t[..k], n) {
        limbs_sub_in_place(&mut t[..k], n);
    }
    out.copy_from_slice(&t[..k]);
}

/// Pads a value to exactly `k` limbs (the fixed-width Montgomery layout).
fn pad_limbs(a: &Ubig, k: usize) -> Vec<u64> {
    debug_assert!(a.limbs.len() <= k);
    let mut v = a.limbs.clone();
    v.resize(k, 0);
    v
}

/// Builds a normalized [`Ubig`] from a fixed-width limb slice.
fn ubig_from_limbs(limbs: &[u64]) -> Ubig {
    let mut u = Ubig { limbs: limbs.to_vec() };
    u.normalize();
    u
}

/// Precomputed fixed-base exponentiation table (radix-2^w comb).
///
/// Stores `base^(d·2^(w·i))` in Montgomery form for every window position
/// `i` and every digit `d ∈ 1..2^w`, covering exponents up to
/// `windows · w` bits. Exponentiation then needs only one Montgomery
/// multiplication per *non-zero* exponent digit — no squarings at all —
/// at the cost of `windows · (2^w − 1)` stored group elements.
#[derive(Debug, Clone)]
pub struct FixedBaseTable {
    /// The plain-form (reduced) base, kept for the out-of-range fallback.
    base: Ubig,
    /// Window width in bits.
    w: usize,
    /// Number of digit positions covered.
    windows: usize,
    /// Modulus width in limbs; entries are `k` limbs each.
    k: usize,
    /// `windows × (2^w − 1)` Montgomery-form entries, flattened.
    table: Vec<u64>,
}

impl FixedBaseTable {
    /// Window width in bits.
    pub fn window_bits(&self) -> usize {
        self.w
    }

    /// Approximate table memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.table.len() * 8
    }
}

/// Sliding-window width for a one-off exponentiation of `bits` bits; the
/// odd-power table costs `2^(w−1)` multiplications up front, so small
/// exponents use small windows.
fn pow_window_size(bits: usize) -> usize {
    match bits {
        0..=24 => 1,
        25..=80 => 3,
        81..=240 => 4,
        241..=768 => 5,
        _ => 6,
    }
}

/// Montgomery arithmetic context for a fixed odd modulus.
///
/// All heavy modular work (the OT group exponentiations) goes through this
/// context: `R = 2^(64·k)` where `k` is the modulus limb count and values
/// are kept in Montgomery form `aR mod n`. The hot multiplication kernel
/// is an interleaved CIOS multiply over fixed-width scratch buffers
/// ([`cios_mont_mul`]); the original schoolbook-multiply-then-REDC path is
/// retained as [`MontgomeryCtx::mod_mul_reference`] for differential
/// testing and as the fallback for moduli wider than [`MAX_CIOS_LIMBS`].
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    n: Ubig,
    k: usize,
    /// `-n⁻¹ mod 2^64`.
    n_prime: u64,
    /// `R² mod n`, for conversion into Montgomery form.
    r2: Ubig,
    /// `R² mod n` padded to `k` limbs.
    r2_fixed: Vec<u64>,
    /// `1` in Montgomery form (`R mod n`), padded to `k` limbs.
    one_fixed: Vec<u64>,
}

impl MontgomeryCtx {
    /// Creates a context for the odd modulus `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or zero.
    pub fn new(n: Ubig) -> MontgomeryCtx {
        assert!(n.is_odd(), "montgomery modulus must be odd");
        let k = n.limbs.len();
        // n' = -n^{-1} mod 2^64 via Newton iteration on the low limb.
        let n0 = n.limbs[0];
        let mut inv = n0; // correct mod 2^3
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        let n_prime = inv.wrapping_neg();
        // R² mod n via slow-path reduction (one-time).
        let r2 = Ubig::one().shl(2 * 64 * k).rem(&n);
        let r2_fixed = pad_limbs(&r2, k);
        let mut ctx = MontgomeryCtx { n, k, n_prime, r2, r2_fixed, one_fixed: Vec::new() };
        // 1·R mod n = REDC(R² · 1).
        let one = pad_limbs(&Ubig::one(), k);
        let mut one_m = vec![0u64; k];
        ctx.mont_mul_fixed(&one, &ctx.r2_fixed, &mut one_m);
        ctx.one_fixed = one_m;
        ctx
    }

    /// The modulus.
    pub fn modulus(&self) -> &Ubig {
        &self.n
    }

    /// Montgomery reduction of a double-width product (reference path and
    /// wide-modulus fallback).
    fn redc(&self, t: &mut Vec<u64>) -> Ubig {
        t.resize(2 * self.k + 1, 0);
        for i in 0..self.k {
            let m = t[i].wrapping_mul(self.n_prime);
            let mut carry = 0u128;
            for j in 0..self.k {
                let cur = u128::from(t[i + j])
                    + u128::from(m) * u128::from(self.n.limbs.get(j).copied().unwrap_or(0))
                    + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + self.k;
            while carry > 0 {
                let cur = u128::from(t[idx]) + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        let mut out = Ubig { limbs: t[self.k..].to_vec() };
        out.normalize();
        if out.cmp_abs(&self.n) != Ordering::Less {
            out = out.sub(&self.n);
        }
        out
    }

    /// Reference Montgomery multiplication: schoolbook multiply, then a
    /// separate REDC pass. Retained for differential testing against the
    /// CIOS kernel and as the fallback for very wide moduli.
    fn mont_mul_mul_then_redc(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let prod = a.mul(b);
        let mut t = prod.limbs;
        self.redc(&mut t)
    }

    /// Fixed-width Montgomery multiplication: `out = a·b·R⁻¹ mod n` with
    /// all operands exactly `k` limbs, in Montgomery form.
    fn mont_mul_fixed(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        if self.k <= MAX_CIOS_LIMBS {
            cios_mont_mul(&self.n.limbs, self.n_prime, a, b, out);
        } else {
            let r = self.mont_mul_mul_then_redc(&ubig_from_limbs(a), &ubig_from_limbs(b));
            let padded = pad_limbs(&r, self.k);
            out.copy_from_slice(&padded);
        }
    }

    /// Converts a reduced value (`a < n`) into fixed-width Montgomery form.
    fn to_mont_fixed(&self, a: &Ubig) -> Vec<u64> {
        debug_assert!(a.cmp_abs(&self.n) == Ordering::Less);
        let mut out = vec![0u64; self.k];
        self.mont_mul_fixed(&pad_limbs(a, self.k), &self.r2_fixed, &mut out);
        out
    }

    /// Converts a fixed-width Montgomery value back to plain form.
    fn from_mont_fixed(&self, a: &[u64]) -> Ubig {
        let mut one = vec![0u64; self.k];
        one[0] = 1;
        let mut out = vec![0u64; self.k];
        self.mont_mul_fixed(a, &one, &mut out);
        ubig_from_limbs(&out)
    }

    /// In-place Montgomery-domain doubling: `a ← 2a mod n`.
    fn mont_double_fixed(&self, a: &mut [u64]) {
        let mut carry = 0u64;
        for limb in a.iter_mut() {
            let top = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = top;
        }
        if carry != 0 || limbs_ge(a, &self.n.limbs) {
            limbs_sub_in_place(a, &self.n.limbs);
        }
    }

    /// Modular multiplication `a·b mod n` (plain form in, plain form out).
    pub fn mod_mul(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let am = self.to_mont_fixed(&a.rem(&self.n));
        let bm = self.to_mont_fixed(&b.rem(&self.n));
        let mut prod = vec![0u64; self.k];
        self.mont_mul_fixed(&am, &bm, &mut prod);
        self.from_mont_fixed(&prod)
    }

    /// Reference modular multiplication via mul-then-REDC, retained so
    /// differential tests can pin the CIOS kernel against it.
    pub fn mod_mul_reference(&self, a: &Ubig, b: &Ubig) -> Ubig {
        let am = self.mont_mul_mul_then_redc(&a.rem(&self.n), &self.r2);
        let bm = self.mont_mul_mul_then_redc(&b.rem(&self.n), &self.r2);
        let prod = self.mont_mul_mul_then_redc(&am, &bm);
        let mut t = prod.limbs;
        self.redc(&mut t)
    }

    /// The largest window of at most `w` bits whose lowest bit is set,
    /// with its top at bit `i` (which must be set). Returns the window
    /// value and the index of its lowest bit.
    fn window_at(exp: &Ubig, i: isize, w: usize) -> (usize, isize) {
        let mut j = (i - w as isize + 1).max(0);
        while !exp.bit(j as usize) {
            j += 1;
        }
        let count = (i - j + 1) as usize;
        (exp.bits(j as usize, count) as usize, j)
    }

    /// Modular exponentiation `base^exp mod n` by left-to-right k-ary
    /// sliding windows over an odd-power table, in the Montgomery domain.
    /// The window width scales with the exponent size (up to 6 bits, so a
    /// 1024-bit exponent costs ~1024 squarings plus ~150 multiplications
    /// instead of ~512 on top of the squarings).
    pub fn mod_pow(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        if exp.is_zero() {
            return Ubig::one().rem(&self.n);
        }
        let k = self.k;
        let bits = exp.bit_len();
        let w = pow_window_size(bits);
        let base = base.rem(&self.n);
        let base_m = self.to_mont_fixed(&base);
        // tbl[i] = base^(2i+1) in Montgomery form.
        let half = 1usize << (w - 1);
        let mut tbl = vec![0u64; half * k];
        tbl[..k].copy_from_slice(&base_m);
        if half > 1 {
            let mut sq = vec![0u64; k];
            self.mont_mul_fixed(&base_m, &base_m, &mut sq);
            for i in 1..half {
                let (lo, hi) = tbl.split_at_mut(i * k);
                self.mont_mul_fixed(&lo[(i - 1) * k..], &sq, &mut hi[..k]);
            }
        }
        let mut tmp = vec![0u64; k];
        // The top bit is set, so the first window always forms there and
        // seeds the accumulator directly (no leading squarings of 1).
        let mut i = bits as isize - 1;
        let (val, j) = Self::window_at(exp, i, w);
        let mut acc = tbl[((val - 1) / 2) * k..][..k].to_vec();
        i = j - 1;
        while i >= 0 {
            if !exp.bit(i as usize) {
                self.mont_mul_fixed(&acc, &acc, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
                i -= 1;
            } else {
                let (val, j) = Self::window_at(exp, i, w);
                for _ in 0..(i - j + 1) {
                    self.mont_mul_fixed(&acc, &acc, &mut tmp);
                    std::mem::swap(&mut acc, &mut tmp);
                }
                self.mont_mul_fixed(&acc, &tbl[((val - 1) / 2) * k..][..k], &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
                i = j - 1;
            }
        }
        self.from_mont_fixed(&acc)
    }

    /// Reference modular exponentiation: the original bit-at-a-time
    /// square-and-multiply over the mul-then-REDC kernel. Retained so
    /// differential tests can pin the windowed [`MontgomeryCtx::mod_pow`]
    /// and the fixed-base path against it.
    pub fn mod_pow_reference(&self, base: &Ubig, exp: &Ubig) -> Ubig {
        if exp.is_zero() {
            return Ubig::one().rem(&self.n);
        }
        let base = base.rem(&self.n);
        let base_m = self.mont_mul_mul_then_redc(&base, &self.r2);
        let mut acc = self.mont_mul_mul_then_redc(&Ubig::one(), &self.r2);
        for i in (0..exp.bit_len()).rev() {
            acc = self.mont_mul_mul_then_redc(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul_mul_then_redc(&acc, &base_m);
            }
        }
        let mut t = acc.limbs;
        self.redc(&mut t)
    }

    /// Fast path for `2^exp mod n`: in the Montgomery domain the
    /// multiply-by-two step is a single modular doubling, so only the
    /// squarings cost full multiplications.
    pub fn mod_pow2(&self, exp: &Ubig) -> Ubig {
        if exp.is_zero() {
            return Ubig::one().rem(&self.n);
        }
        let mut acc = self.one_fixed.clone();
        let mut tmp = vec![0u64; self.k];
        for i in (0..exp.bit_len()).rev() {
            self.mont_mul_fixed(&acc, &acc, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
            if exp.bit(i) {
                self.mont_double_fixed(&mut acc);
            }
        }
        self.from_mont_fixed(&acc)
    }

    /// Precomputes a fixed-base exponentiation table for `base`, covering
    /// exponents up to `max_exp_bits` bits with `w`-bit windows.
    ///
    /// Build cost is one Montgomery multiplication per table entry
    /// (`⌈max_exp_bits/w⌉ · (2^w − 1)` of them) — paid once per base and
    /// amortized across every subsequent [`MontgomeryCtx::pow_fixed_base`]
    /// call, each of which then costs at most one multiplication per
    /// exponent digit.
    ///
    /// # Panics
    ///
    /// Panics if `w` is outside `1..=8`.
    pub fn fixed_base_table(&self, base: &Ubig, max_exp_bits: usize, w: usize) -> FixedBaseTable {
        assert!(w >= 1 && w <= 8, "fixed-base window must be 1..=8 bits");
        let k = self.k;
        let windows = max_exp_bits.div_ceil(w).max(1);
        let epw = (1usize << w) - 1;
        let base_red = base.rem(&self.n);
        let mut table = vec![0u64; windows * epw * k];
        let mut cur = self.to_mont_fixed(&base_red);
        let mut next = vec![0u64; k];
        for win in 0..windows {
            let start = win * epw * k;
            table[start..start + k].copy_from_slice(&cur);
            for d in 2..=epw {
                let (lo, hi) = table.split_at_mut(start + (d - 1) * k);
                self.mont_mul_fixed(&lo[start + (d - 2) * k..], &cur, &mut hi[..k]);
            }
            // Advance to the next window position:
            // cur ← cur^(2^w) = cur^(2^w − 1) · cur (one multiplication).
            {
                let last = &table[start + (epw - 1) * k..start + epw * k];
                self.mont_mul_fixed(last, &cur, &mut next);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        FixedBaseTable { base: base_red, w, windows, k, table }
    }

    /// Fixed-base exponentiation `base^exp mod n` using a precomputed
    /// table: one Montgomery multiplication per non-zero exponent digit,
    /// zero squarings. Falls back to the general [`MontgomeryCtx::mod_pow`]
    /// for exponents wider than the table's coverage.
    pub fn pow_fixed_base(&self, t: &FixedBaseTable, exp: &Ubig) -> Ubig {
        debug_assert_eq!(t.k, self.k, "table built for a different modulus width");
        if exp.is_zero() {
            return Ubig::one().rem(&self.n);
        }
        if exp.bit_len() > t.windows * t.w {
            return self.mod_pow(&t.base, exp);
        }
        let k = self.k;
        let epw = (1usize << t.w) - 1;
        let mut acc: Option<Vec<u64>> = None;
        let mut tmp = vec![0u64; k];
        for win in 0..t.windows {
            let digit = exp.bits(win * t.w, t.w) as usize;
            if digit == 0 {
                continue;
            }
            let entry = &t.table[(win * epw + digit - 1) * k..][..k];
            match acc.as_mut() {
                None => acc = Some(entry.to_vec()),
                Some(a) => {
                    self.mont_mul_fixed(a, entry, &mut tmp);
                    std::mem::swap(a, &mut tmp);
                }
            }
        }
        match acc {
            Some(a) => self.from_mont_fixed(&a),
            // exp != 0 guarantees at least one non-zero digit.
            None => unreachable!("non-zero exponent with all-zero digits"),
        }
    }

    /// 4-way modular exponentiation: lane `l` computes
    /// `bases[l]^exps[l] mod n`, all four advancing in lockstep through
    /// the interleaved CIOS kernel ([`crate::limb4`]).
    ///
    /// The schedule is a fixed 4-bit window with an *always-multiply*
    /// digit step (`tbl[0] = 1` absorbs zero digits), so every lane runs
    /// the identical operation sequence regardless of its exponent —
    /// that is what lets four independent exponentiations share one
    /// vector instruction stream. Results are exactly those of
    /// [`MontgomeryCtx::mod_pow`] per lane; moduli wider than
    /// [`MAX_CIOS_LIMBS`] fall back to the scalar path.
    pub fn mod_pow_x4(&self, bases: &[Ubig; LANES], exps: &[Ubig; LANES]) -> [Ubig; LANES] {
        if self.k > MAX_CIOS_LIMBS {
            return std::array::from_fn(|l| self.mod_pow(&bases[l], &exps[l]));
        }
        const W: usize = 4;
        let k = self.k;
        let bits = exps.iter().map(Ubig::bit_len).max().unwrap_or(0);
        if bits == 0 {
            let one = Ubig::one().rem(&self.n);
            return std::array::from_fn(|_| one.clone());
        }
        let base_m: Vec<Vec<u64>> =
            bases.iter().map(|b| self.to_mont_fixed(&b.rem(&self.n))).collect();
        // tbl[d][j][l] = base_l^d in Montgomery form, interleaved layout.
        let mut tbl: Vec<Vec<[u64; LANES]>> = Vec::with_capacity(1 << W);
        let mut one_v = vec![[0u64; LANES]; k];
        for j in 0..k {
            one_v[j] = [self.one_fixed[j]; LANES];
        }
        tbl.push(one_v);
        let mut b1 = vec![[0u64; LANES]; k];
        for j in 0..k {
            for l in 0..LANES {
                b1[j][l] = base_m[l][j];
            }
        }
        tbl.push(b1);
        for d in 2..(1usize << W) {
            let mut e = vec![[0u64; LANES]; k];
            cios_mont_mul_x4(&self.n.limbs, self.n_prime, &tbl[d - 1], &tbl[1], &mut e);
            tbl.push(e);
        }
        let windows = bits.div_ceil(W);
        let mut acc = vec![[0u64; LANES]; k];
        let mut tmp = vec![[0u64; LANES]; k];
        let mut stage = vec![[0u64; LANES]; k];
        // Seed from the top window's digits (zero digits pick up tbl[0]).
        for l in 0..LANES {
            let d = exps[l].bits((windows - 1) * W, W) as usize;
            for j in 0..k {
                acc[j][l] = tbl[d][j][l];
            }
        }
        for win in (0..windows - 1).rev() {
            for _ in 0..W {
                cios_mont_mul_x4(&self.n.limbs, self.n_prime, &acc, &acc, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
            for l in 0..LANES {
                let d = exps[l].bits(win * W, W) as usize;
                for j in 0..k {
                    stage[j][l] = tbl[d][j][l];
                }
            }
            cios_mont_mul_x4(&self.n.limbs, self.n_prime, &acc, &stage, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
        }
        std::array::from_fn(|l| {
            let col: Vec<u64> = (0..k).map(|j| acc[j][l]).collect();
            self.from_mont_fixed(&col)
        })
    }

    /// 4-way fixed-base exponentiation over one comb table: lane `l`
    /// computes `base^exps[l] mod n` in lockstep through the interleaved
    /// CIOS kernel, with zero digits multiplying by Montgomery `1` so
    /// the schedule stays exponent-independent. A window is skipped
    /// entirely only when *all four* digits are zero. Results are
    /// exactly those of [`MontgomeryCtx::pow_fixed_base`] per lane; any
    /// lane beyond the table's coverage (or a too-wide modulus) routes
    /// the whole quad through the scalar path.
    pub fn pow_fixed_base_x4(&self, t: &FixedBaseTable, exps: &[Ubig; LANES]) -> [Ubig; LANES] {
        debug_assert_eq!(t.k, self.k, "table built for a different modulus width");
        let cover = t.windows * t.w;
        if self.k > MAX_CIOS_LIMBS || exps.iter().any(|e| e.bit_len() > cover) {
            return std::array::from_fn(|l| self.pow_fixed_base(t, &exps[l]));
        }
        let k = self.k;
        let epw = (1usize << t.w) - 1;
        let mut acc = vec![[0u64; LANES]; k];
        for j in 0..k {
            acc[j] = [self.one_fixed[j]; LANES];
        }
        let mut stage = vec![[0u64; LANES]; k];
        let mut tmp = vec![[0u64; LANES]; k];
        for win in 0..t.windows {
            let mut digits = [0usize; LANES];
            for l in 0..LANES {
                digits[l] = exps[l].bits(win * t.w, t.w) as usize;
            }
            if digits.iter().all(|&d| d == 0) {
                continue;
            }
            for l in 0..LANES {
                if digits[l] == 0 {
                    for j in 0..k {
                        stage[j][l] = self.one_fixed[j];
                    }
                } else {
                    let entry = &t.table[(win * epw + digits[l] - 1) * k..][..k];
                    for j in 0..k {
                        stage[j][l] = entry[j];
                    }
                }
            }
            cios_mont_mul_x4(&self.n.limbs, self.n_prime, &acc, &stage, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
        }
        std::array::from_fn(|l| {
            let col: Vec<u64> = (0..k).map(|j| acc[j][l]).collect();
            self.from_mont_fixed(&col)
        })
    }

    /// Modular inverse of `a` for a *prime* modulus, via Fermat's little
    /// theorem: `a^(n−2) mod n`.
    ///
    /// # Panics
    ///
    /// Panics if `a ≡ 0 (mod n)`.
    pub fn mod_inv_prime(&self, a: &Ubig) -> Ubig {
        let a = a.rem(&self.n);
        assert!(!a.is_zero(), "zero has no inverse");
        let exp = self.n.sub(&Ubig::from_u64(2));
        self.mod_pow(&a, &exp)
    }
}

/// Recognizes a Crandall-form modulus `n = 2^(64k) − c` with small `c`.
///
/// Returns `c` when every limb above the lowest is all-ones and the
/// implied `c = 2^64 − limbs[0]` fits in 32 bits (the bound the fold
/// kernels' carry analysis in [`crate::limb4`] relies on). Single-limb
/// moduli are excluded so small test groups (e.g. `2^61 − 1`) never take
/// the special-form path.
pub(crate) fn crandall_c(n: &Ubig) -> Option<u64> {
    let k = n.limbs.len();
    if k < 2 || k > MAX_CIOS_LIMBS {
        return None;
    }
    if n.limbs[1..].iter().any(|&l| l != u64::MAX) {
        return None;
    }
    let c = (u64::MAX - n.limbs[0]).checked_add(1)?;
    if c > u64::from(u32::MAX) {
        return None;
    }
    Some(c)
}

/// Precomputed fixed-base comb table holding *plain* (non-Montgomery)
/// residues, for the Crandall fold-reduction exponentiation path.
/// Same radix-2^w layout as [`FixedBaseTable`].
#[derive(Debug, Clone)]
pub struct CrandallCombTable {
    base: Ubig,
    w: usize,
    windows: usize,
    k: usize,
    table: Vec<u64>,
}

impl CrandallCombTable {
    /// Approximate table memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.table.len() * 8
    }
}

/// Fold-reduction arithmetic context for a Crandall modulus
/// `p = 2^(64k) − c`, `c < 2^32`.
///
/// Values stay in plain canonical form throughout (no Montgomery
/// conversion), and each multiplication reduces with `k + 1` extra
/// multiplies instead of a full `k² + k` REDC pass — see
/// [`crate::limb4::fold_mul_x4`]. This is the batch executor's fast path
/// for the WAVEKEY-1024 fleet group; the scalar route keeps generic
/// Montgomery arithmetic on the same modulus, so both routes produce
/// identical canonical residues and therefore bit-identical keys.
#[derive(Debug, Clone)]
pub struct CrandallCtx {
    p: Ubig,
    c: u64,
    k: usize,
}

impl CrandallCtx {
    /// Creates a context if `p` has the recognized Crandall form.
    pub fn new(p: &Ubig) -> Option<CrandallCtx> {
        let c = crandall_c(p)?;
        Some(CrandallCtx { p: p.clone(), c, k: p.limbs.len() })
    }

    /// The modulus.
    pub fn modulus(&self) -> &Ubig {
        &self.p
    }

    /// Scalar fold multiplication via a broadcast quad (setup-time only;
    /// hot paths use the x4 kernels directly).
    fn fold_mul(&self, a: &[u64], b: &[u64], out: &mut [u64]) {
        let k = self.k;
        let mut av = vec![[0u64; LANES]; k];
        let mut bv = vec![[0u64; LANES]; k];
        for j in 0..k {
            av[j] = [a[j]; LANES];
            bv[j] = [b[j]; LANES];
        }
        let mut ov = vec![[0u64; LANES]; k];
        fold_mul_x4(&self.p.limbs, self.c, &av, &bv, &mut ov);
        for j in 0..k {
            out[j] = ov[j][0];
        }
    }

    /// 4-way exponentiation `bases[l]^exps[l] mod p` on plain residues.
    ///
    /// Fixed 5-bit always-multiply windows (`tbl[0] = 1` absorbs zero
    /// digits), squarings through the dedicated [`fold_sqr_x4`] kernel.
    /// Per lane the result equals `MontgomeryCtx::mod_pow` for the same
    /// modulus: both produce the unique canonical residue.
    pub fn pow_x4(&self, bases: &[Ubig; LANES], exps: &[Ubig; LANES]) -> [Ubig; LANES] {
        const W: usize = 5;
        let k = self.k;
        let bits = exps.iter().map(Ubig::bit_len).max().unwrap_or(0);
        if bits == 0 {
            return std::array::from_fn(|_| Ubig::one());
        }
        let base_r: Vec<Vec<u64>> =
            bases.iter().map(|b| pad_limbs(&b.rem(&self.p), k)).collect();
        // tbl[d][j][l] = base_l^d as plain residues, interleaved layout.
        let mut tbl: Vec<Vec<[u64; LANES]>> = Vec::with_capacity(1 << W);
        let mut one_v = vec![[0u64; LANES]; k];
        one_v[0] = [1u64; LANES];
        tbl.push(one_v);
        let mut b1 = vec![[0u64; LANES]; k];
        for j in 0..k {
            for l in 0..LANES {
                b1[j][l] = base_r[l][j];
            }
        }
        tbl.push(b1);
        for d in 2..(1usize << W) {
            let mut e = vec![[0u64; LANES]; k];
            fold_mul_x4(&self.p.limbs, self.c, &tbl[d - 1], &tbl[1], &mut e);
            tbl.push(e);
        }
        let windows = bits.div_ceil(W);
        let mut acc = vec![[0u64; LANES]; k];
        let mut tmp = vec![[0u64; LANES]; k];
        let mut stage = vec![[0u64; LANES]; k];
        for l in 0..LANES {
            let d = exps[l].bits((windows - 1) * W, W) as usize;
            for j in 0..k {
                acc[j][l] = tbl[d][j][l];
            }
        }
        for win in (0..windows - 1).rev() {
            for _ in 0..W {
                fold_sqr_x4(&self.p.limbs, self.c, &acc, &mut tmp);
                std::mem::swap(&mut acc, &mut tmp);
            }
            for l in 0..LANES {
                let d = exps[l].bits(win * W, W) as usize;
                for j in 0..k {
                    stage[j][l] = tbl[d][j][l];
                }
            }
            fold_mul_x4(&self.p.limbs, self.c, &acc, &stage, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
        }
        std::array::from_fn(|l| {
            let col: Vec<u64> = (0..k).map(|j| acc[j][l]).collect();
            ubig_from_limbs(&col)
        })
    }

    /// Builds a plain-residue fixed-base comb table (layout and digit
    /// semantics identical to [`MontgomeryCtx::fixed_base_table`]).
    pub fn comb_table(&self, base: &Ubig, max_exp_bits: usize, w: usize) -> CrandallCombTable {
        assert!(w >= 1 && w <= 8, "fixed-base window must be 1..=8 bits");
        let k = self.k;
        let windows = max_exp_bits.div_ceil(w).max(1);
        let epw = (1usize << w) - 1;
        let base_red = base.rem(&self.p);
        let mut table = vec![0u64; windows * epw * k];
        let mut cur = pad_limbs(&base_red, k);
        let mut next = vec![0u64; k];
        for win in 0..windows {
            let start = win * epw * k;
            table[start..start + k].copy_from_slice(&cur);
            for d in 2..=epw {
                let (lo, hi) = table.split_at_mut(start + (d - 1) * k);
                self.fold_mul(&lo[start + (d - 2) * k..], &cur, &mut hi[..k]);
            }
            {
                let last = &table[start + (epw - 1) * k..start + epw * k];
                self.fold_mul(last, &cur, &mut next);
            }
            std::mem::swap(&mut cur, &mut next);
        }
        CrandallCombTable { base: base_red, w, windows, k, table }
    }

    /// 4-way fixed-base exponentiation over a plain-residue comb table;
    /// zero digits stage the constant `1`, a window is skipped only when
    /// all four digits are zero. Lanes whose exponent exceeds the table's
    /// coverage route the whole quad through the general [`Self::pow_x4`].
    pub fn pow_fixed_base_x4(
        &self,
        t: &CrandallCombTable,
        exps: &[Ubig; LANES],
    ) -> [Ubig; LANES] {
        debug_assert_eq!(t.k, self.k, "table built for a different modulus width");
        let cover = t.windows * t.w;
        if exps.iter().any(|e| e.bit_len() > cover) {
            let bases: [Ubig; LANES] = std::array::from_fn(|_| t.base.clone());
            return self.pow_x4(&bases, exps);
        }
        let k = self.k;
        let epw = (1usize << t.w) - 1;
        let mut acc = vec![[0u64; LANES]; k];
        acc[0] = [1u64; LANES];
        let mut stage = vec![[0u64; LANES]; k];
        let mut tmp = vec![[0u64; LANES]; k];
        for win in 0..t.windows {
            let mut digits = [0usize; LANES];
            for l in 0..LANES {
                digits[l] = exps[l].bits(win * t.w, t.w) as usize;
            }
            if digits.iter().all(|&d| d == 0) {
                continue;
            }
            for l in 0..LANES {
                if digits[l] == 0 {
                    for j in 0..k {
                        stage[j][l] = 0;
                    }
                    stage[0][l] = 1;
                } else {
                    let entry = &t.table[(win * epw + digits[l] - 1) * k..][..k];
                    for j in 0..k {
                        stage[j][l] = entry[j];
                    }
                }
            }
            fold_mul_x4(&self.p.limbs, self.c, &acc, &stage, &mut tmp);
            std::mem::swap(&mut acc, &mut tmp);
        }
        std::array::from_fn(|l| {
            let col: Vec<u64> = (0..k).map(|j| acc[j][l]).collect();
            ubig_from_limbs(&col)
        })
    }
}

/// Deterministic Miller-Rabin primality test, correct for all `n < 3.3·10²⁴`
/// with the fixed witness set and strongly reliable for larger inputs.
pub fn is_probable_prime(n: &Ubig) -> bool {
    if n.is_zero() {
        return false;
    }
    if n.limbs.len() == 1 {
        let v = n.limbs[0];
        if v < 2 {
            return false;
        }
        for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            if v == p {
                return true;
            }
            if v % p == 0 {
                return false;
            }
        }
    } else {
        // Quick small-factor screen.
        for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            if n.rem(&Ubig::from_u64(p)).is_zero() {
                return false;
            }
        }
    }
    if !n.is_odd() {
        return false;
    }
    // n − 1 = d · 2^r.
    let n_minus_1 = n.sub(&Ubig::one());
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while !d.is_odd() {
        // Divide by two via shift: reuse shl on a reversed representation —
        // implement an inline right shift.
        let mut limbs = d.limbs.clone();
        let mut carry = 0u64;
        for l in limbs.iter_mut().rev() {
            let new_carry = *l & 1;
            *l = (*l >> 1) | (carry << 63);
            carry = new_carry;
        }
        d = Ubig { limbs };
        d.normalize();
        r += 1;
    }
    let ctx = MontgomeryCtx::new(n.clone());
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let a = Ubig::from_u64(a).rem(n);
        if a.is_zero() {
            continue;
        }
        let mut x = ctx.mod_pow(&a, &d);
        if x == Ubig::one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = ctx.mod_mul(&x, &x);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn bytes_roundtrip() {
        let n = Ubig::from_be_bytes(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11]);
        assert_eq!(n.to_be_bytes(), vec![0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11]);
        assert_eq!(Ubig::zero().to_be_bytes(), vec![0]);
    }

    #[test]
    fn hex_parse() {
        let n = Ubig::from_hex("ff");
        assert_eq!(n, Ubig::from_u64(255));
        let n = Ubig::from_hex("1_0000_0000_0000_0000".replace('_', "").as_str());
        assert_eq!(n.bit_len(), 65);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Ubig::from_hex("ffffffffffffffffffffffffffffffff");
        let b = Ubig::from_hex("123456789abcdef0123456789abcdef0");
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = Ubig::from_hex("ffffffffffffffff");
        let s = a.add(&Ubig::one());
        assert_eq!(s, Ubig::from_hex("10000000000000000"));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        Ubig::from_u64(1).sub(&Ubig::from_u64(2));
    }

    #[test]
    fn mul_known_values() {
        let a = Ubig::from_u64(u64::MAX);
        let sq = a.mul(&a);
        // (2^64 − 1)² = 2^128 − 2^65 + 1.
        let expected = Ubig::one()
            .shl(128)
            .sub(&Ubig::one().shl(65))
            .add(&Ubig::one());
        assert_eq!(sq, expected);
    }

    #[test]
    fn rem_basics() {
        let a = Ubig::from_u64(1000);
        assert_eq!(a.rem(&Ubig::from_u64(7)), Ubig::from_u64(1000 % 7));
        assert_eq!(Ubig::from_u64(5).rem(&Ubig::from_u64(7)), Ubig::from_u64(5));
    }

    #[test]
    fn rem_large() {
        let a = Ubig::from_hex("123456789abcdef0123456789abcdef0123456789abcdef0");
        let m = Ubig::from_hex("fedcba9876543211");
        let r = a.rem(&m);
        // Verify: a = q·m + r with r < m by re-multiplying is awkward
        // without division; instead check r < m and (a − r) mod m == 0.
        assert!(r.cmp_abs(&m) == Ordering::Less);
        let diff = a.sub(&r);
        assert!(diff.rem(&m).is_zero());
    }

    #[test]
    fn mod_pow_small_numbers() {
        let ctx = MontgomeryCtx::new(Ubig::from_u64(1000000007));
        assert_eq!(
            ctx.mod_pow(&Ubig::from_u64(2), &Ubig::from_u64(10)),
            Ubig::from_u64(1024)
        );
        assert_eq!(
            ctx.mod_pow(&Ubig::from_u64(3), &Ubig::from_u64(0)),
            Ubig::one()
        );
        // Fermat: a^(p−1) ≡ 1 (mod p).
        assert_eq!(
            ctx.mod_pow(&Ubig::from_u64(123456), &Ubig::from_u64(1000000006)),
            Ubig::one()
        );
    }

    #[test]
    fn mod_pow_matches_u128_reference() {
        let p = 0xffff_ffff_ffff_ffc5u64; // largest 64-bit prime
        let ctx = MontgomeryCtx::new(Ubig::from_u64(p));
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let base: u64 = rng.gen_range(1..p);
            let exp: u64 = rng.gen();
            let expected = u128_mod_pow(base, exp, p);
            let got = ctx.mod_pow(&Ubig::from_u64(base), &Ubig::from_u64(exp));
            assert_eq!(got, Ubig::from_u64(expected), "base {base} exp {exp}");
        }
    }

    fn u128_mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
        let mut acc: u128 = 1;
        let mut b: u128 = u128::from(base % m);
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc * b % u128::from(m);
            }
            b = b * b % u128::from(m);
            exp >>= 1;
        }
        base = acc as u64;
        base
    }

    #[test]
    fn mod_mul_matches_slow_path() {
        let m = Ubig::from_hex("f123456789abcdef123456789abcdef1");
        let ctx = MontgomeryCtx::new(m.clone());
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let a = Ubig::random_below(&m, &mut rng);
            let b = Ubig::random_below(&m, &mut rng);
            assert_eq!(ctx.mod_mul(&a, &b), a.mul(&b).rem(&m));
        }
    }

    #[test]
    fn mod_pow2_matches_general_modexp() {
        let m = Ubig::from_hex("f123456789abcdef123456789abcdef1");
        let ctx = MontgomeryCtx::new(m);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let exp = Ubig::from_u64(rng.gen());
            assert_eq!(ctx.mod_pow2(&exp), ctx.mod_pow(&Ubig::from_u64(2), &exp));
        }
        assert_eq!(ctx.mod_pow2(&Ubig::zero()), Ubig::one());
    }

    #[test]
    fn mod_inv_prime_works() {
        let p = Ubig::from_u64(1000000007);
        let ctx = MontgomeryCtx::new(p.clone());
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let a = Ubig::random_below(&p, &mut rng);
            if a.is_zero() {
                continue;
            }
            let inv = ctx.mod_inv_prime(&a);
            assert_eq!(ctx.mod_mul(&a, &inv), Ubig::one());
        }
    }

    #[test]
    fn random_below_in_range_and_varied() {
        let bound = Ubig::from_u64(1000);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let v = Ubig::random_below(&bound, &mut rng);
            assert!(v.cmp_abs(&bound) == Ordering::Less);
            seen.insert(v.to_be_bytes());
        }
        assert!(seen.len() > 50, "sampling looks degenerate");
    }

    #[test]
    fn primality_small() {
        for p in [2u64, 3, 5, 7, 11, 101, 65537, 1000000007] {
            assert!(is_probable_prime(&Ubig::from_u64(p)), "{p}");
        }
        for c in [0u64, 1, 4, 9, 100, 65536, 1000000008] {
            assert!(!is_probable_prime(&Ubig::from_u64(c)), "{c}");
        }
    }

    #[test]
    fn primality_carmichael() {
        // 561, 1105, 1729 are Carmichael numbers (fool Fermat, not MR).
        for c in [561u64, 1105, 1729, 2465, 2821] {
            assert!(!is_probable_prime(&Ubig::from_u64(c)), "{c}");
        }
    }

    #[test]
    fn bit_len_and_bit() {
        let n = Ubig::from_u64(0b1011);
        assert_eq!(n.bit_len(), 4);
        assert!(n.bit(0) && n.bit(1) && !n.bit(2) && n.bit(3) && !n.bit(64));
    }

    #[test]
    fn bits_window_extraction() {
        let n = Ubig::from_hex("123456789abcdef0fedcba9876543210");
        for lo in [0usize, 1, 5, 60, 63, 64, 65, 120, 127, 200] {
            for count in [1usize, 4, 6, 17, 63, 64] {
                let mut expected = 0u64;
                for b in (0..count).rev() {
                    expected = (expected << 1) | u64::from(n.bit(lo + b));
                }
                assert_eq!(n.bits(lo, count), expected, "lo {lo} count {count}");
            }
        }
    }

    #[test]
    fn windowed_mod_pow_matches_reference() {
        let m = Ubig::from_hex("f123456789abcdef123456789abcdef1");
        let ctx = MontgomeryCtx::new(m.clone());
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let base = Ubig::random_below(&m, &mut rng);
            let exp = Ubig::random_below(&m, &mut rng);
            assert_eq!(ctx.mod_pow(&base, &exp), ctx.mod_pow_reference(&base, &exp));
        }
        // Degenerate exponents.
        let base = Ubig::from_u64(7);
        for e in [0u64, 1, 2, 3, 63, 64, 65] {
            let exp = Ubig::from_u64(e);
            assert_eq!(ctx.mod_pow(&base, &exp), ctx.mod_pow_reference(&base, &exp), "e {e}");
        }
    }

    #[test]
    fn cios_mod_mul_matches_reference() {
        let m = Ubig::from_hex("f123456789abcdef123456789abcdef1");
        let ctx = MontgomeryCtx::new(m.clone());
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..50 {
            let a = Ubig::random_below(&m, &mut rng);
            let b = Ubig::random_below(&m, &mut rng);
            let fast = ctx.mod_mul(&a, &b);
            assert_eq!(fast, ctx.mod_mul_reference(&a, &b));
            assert_eq!(fast, a.mul(&b).rem(&m));
        }
        assert_eq!(ctx.mod_mul(&Ubig::zero(), &Ubig::from_u64(5)), Ubig::zero());
    }

    #[test]
    fn fixed_base_matches_general_modexp() {
        let m = Ubig::from_hex("f123456789abcdef123456789abcdef1");
        let ctx = MontgomeryCtx::new(m.clone());
        let base = Ubig::from_u64(2);
        let table = ctx.fixed_base_table(&base, m.bit_len(), 6);
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..20 {
            let exp = Ubig::random_below(&m, &mut rng);
            assert_eq!(ctx.pow_fixed_base(&table, &exp), ctx.mod_pow_reference(&base, &exp));
        }
        assert_eq!(ctx.pow_fixed_base(&table, &Ubig::zero()), Ubig::one());
        assert_eq!(ctx.pow_fixed_base(&table, &Ubig::one()), Ubig::from_u64(2));
        // An exponent wider than the table's coverage takes the fallback.
        let wide = Ubig::one().shl(m.bit_len() + 5);
        assert_eq!(ctx.pow_fixed_base(&table, &wide), ctx.mod_pow_reference(&base, &wide));
    }

    #[test]
    fn fixed_base_small_windows_and_single_limb() {
        // k = 1 and every window width exercise the CIOS edge cases.
        let p = 0xffff_ffff_ffff_ffc5u64;
        let ctx = MontgomeryCtx::new(Ubig::from_u64(p));
        let base = Ubig::from_u64(3);
        let mut rng = StdRng::seed_from_u64(34);
        for w in 1..=8usize {
            let table = ctx.fixed_base_table(&base, 64, w);
            for _ in 0..5 {
                let exp = Ubig::from_u64(rng.gen());
                assert_eq!(
                    ctx.pow_fixed_base(&table, &exp),
                    ctx.mod_pow_reference(&base, &exp),
                    "w {w}"
                );
            }
        }
    }

    #[test]
    fn display_hex() {
        assert_eq!(format!("{}", Ubig::from_u64(255)), "0xff");
        assert_eq!(format!("{}", Ubig::zero()), "0x0");
    }

    #[test]
    fn rem_matches_reference() {
        let mut rng = StdRng::seed_from_u64(41);
        let moduli = [
            Ubig::from_u64(7),
            Ubig::from_u64(u64::MAX),
            Ubig::from_hex("ffffffffffffffffffffffffffffff61"),
            Ubig::from_hex(crate::group::MODP_1024_HEX),
        ];
        for m in &moduli {
            for width_limbs in [1usize, 2, 16, 32] {
                let bound = Ubig::one().shl(width_limbs * 64);
                let a = Ubig::random_below(&bound, &mut rng);
                assert_eq!(a.rem(m), a.rem_reference(m), "a {a} m {m}");
            }
            // Exact multiples and boundary values.
            assert_eq!(m.rem(m), Ubig::zero());
            assert_eq!(m.mul(&Ubig::from_u64(12345)).rem(m), Ubig::zero());
            assert_eq!(m.sub(&Ubig::one()).rem(m), m.sub(&Ubig::one()));
            assert_eq!(Ubig::zero().rem(m), Ubig::zero());
        }
    }

    #[test]
    fn mod_pow_x4_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(42);
        let moduli = [
            Ubig::from_u64(0xffff_ffff_ffff_ffc5),
            Ubig::from_hex("ffffffffffffffffffffffffffffff61"),
            Ubig::from_hex("1000000000000000000000000000000000000000000000f1"),
        ];
        for m in &moduli {
            let ctx = MontgomeryCtx::new(m.clone());
            let bases: [Ubig; 4] =
                std::array::from_fn(|_| Ubig::random_below(m, &mut rng));
            // Mixed exponent widths: zero, tiny, and full-width lanes in
            // one quad exercise the lockstep zero-digit handling.
            let exps = [
                Ubig::zero(),
                Ubig::from_u64(3),
                Ubig::random_below(m, &mut rng),
                m.sub(&Ubig::one()),
            ];
            let got = ctx.mod_pow_x4(&bases, &exps);
            for l in 0..4 {
                assert_eq!(got[l], ctx.mod_pow(&bases[l], &exps[l]), "m {m} lane {l}");
            }
        }
    }

    #[test]
    fn pow_fixed_base_x4_matches_scalar() {
        let m = Ubig::from_hex("f123456789abcdef123456789abcdef1");
        let ctx = MontgomeryCtx::new(m.clone());
        let base = Ubig::from_u64(2);
        let mut rng = StdRng::seed_from_u64(43);
        for w in [1usize, 4, 6] {
            let table = ctx.fixed_base_table(&base, m.bit_len(), w);
            let exps: [Ubig; 4] = [
                Ubig::zero(),
                Ubig::one(),
                Ubig::random_below(&m, &mut rng),
                m.sub(&Ubig::one()),
            ];
            let got = ctx.pow_fixed_base_x4(&table, &exps);
            for l in 0..4 {
                assert_eq!(got[l], ctx.pow_fixed_base(&table, &exps[l]), "w {w} lane {l}");
            }
        }
        // A lane wider than the table's coverage routes the quad through
        // the scalar fallback; results must be unchanged.
        let table = ctx.fixed_base_table(&base, m.bit_len(), 6);
        let wide = Ubig::one().shl(m.bit_len() + 7);
        let exps = [
            Ubig::from_u64(5),
            wide.clone(),
            Ubig::zero(),
            Ubig::random_below(&m, &mut rng),
        ];
        let got = ctx.pow_fixed_base_x4(&table, &exps);
        for l in 0..4 {
            assert_eq!(got[l], ctx.pow_fixed_base(&table, &exps[l]), "fallback lane {l}");
        }
    }

    #[test]
    fn wide_modulus_beyond_cios_limit_falls_back() {
        // A 33-limb (2112-bit) odd modulus exceeds MAX_CIOS_LIMBS: both
        // the scalar ctx and the x4 path must route through the
        // mul-then-REDC fallback and still agree with the reference.
        let mut hex = String::from("1");
        hex.push_str(&"0".repeat(527)); // 2^2108
        let m = Ubig::from_hex(&hex).add(&Ubig::from_u64(7)); // odd
        assert!(m.bit_len() > 64 * MAX_CIOS_LIMBS);
        let ctx = MontgomeryCtx::new(m.clone());
        let mut rng = StdRng::seed_from_u64(44);
        let base = Ubig::random_below(&m, &mut rng);
        let exp = Ubig::from_u64(rng.gen());
        assert_eq!(ctx.mod_pow(&base, &exp), ctx.mod_pow_reference(&base, &exp));
        assert_eq!(ctx.mod_mul(&base, &base), ctx.mod_mul_reference(&base, &base));
        let bases: [Ubig; 4] = std::array::from_fn(|_| Ubig::random_below(&m, &mut rng));
        let exps: [Ubig; 4] = std::array::from_fn(|_| Ubig::from_u64(rng.gen()));
        let got = ctx.mod_pow_x4(&bases, &exps);
        for l in 0..4 {
            assert_eq!(got[l], ctx.mod_pow_reference(&bases[l], &exps[l]), "lane {l}");
        }
        // The fixed-base x4 path takes the same wide-modulus fallback.
        let table = ctx.fixed_base_table(&Ubig::from_u64(2), 64, 4);
        let got = ctx.pow_fixed_base_x4(&table, &exps);
        for l in 0..4 {
            assert_eq!(got[l], ctx.pow_fixed_base(&table, &exps[l]), "fixed lane {l}");
        }
    }
}
