//! Byte-level OT rounds: each protocol round as one call that consumes
//! and produces *serialized* messages.
//!
//! The structured API in [`crate::ot`] moves a batch through typed
//! messages (`OtMessageA/B/E`); a sans-IO protocol state machine instead
//! holds party state between *wire frames* and needs to advance exactly
//! one round from the raw payload bytes of the frame it was handed. These
//! wrappers bundle the decode + round logic so a single round is drivable
//! from a frame without the caller ever touching the typed messages.

use crate::group::DhGroup;
use crate::ot::{OtError, OtMessageA, OtMessageB, OtMessageE, OtReceiver, OtSender};
use rand::rngs::StdRng;

/// Sender round 1: starts a batch over `secrets` and returns the state
/// plus the encoded `M_A`.
pub fn sender_round_a(
    group: &DhGroup,
    secrets: Vec<(Vec<u8>, Vec<u8>)>,
    rng: &mut StdRng,
) -> (OtSender, Vec<u8>) {
    let (sender, msg_a) = OtSender::start(group, secrets, rng);
    let bytes = msg_a.encode(group);
    (sender, bytes)
}

/// Receiver round 2: parses an encoded `M_A` and answers with the
/// receiver state plus the encoded blinded-choice `M_B`.
///
/// # Errors
///
/// [`OtError::Malformed`] when `ma_bytes` does not parse,
/// [`OtError::BatchMismatch`] when the batch sizes disagree.
pub fn receiver_round_b(
    group: &DhGroup,
    choices: &[bool],
    ma_bytes: &[u8],
    rng: &mut StdRng,
) -> Result<(OtReceiver, Vec<u8>), OtError> {
    let msg_a = OtMessageA::decode(group, ma_bytes)?;
    let (receiver, msg_b) = OtReceiver::respond(group, choices, &msg_a, rng)?;
    Ok((receiver, msg_b.encode(group)))
}

/// Sender round 3: parses an encoded `M_B` and returns the encoded
/// ciphertext batch `M_E`.
///
/// # Errors
///
/// [`OtError::Malformed`] when `mb_bytes` does not parse,
/// [`OtError::BatchMismatch`] when the batch sizes disagree.
pub fn sender_round_e(
    sender: &OtSender,
    group: &DhGroup,
    mb_bytes: &[u8],
) -> Result<Vec<u8>, OtError> {
    let msg_b = OtMessageB::decode(group, mb_bytes)?;
    Ok(sender.encrypt(group, &msg_b)?.encode())
}

/// Receiver finish: parses an encoded `M_E` and decrypts the chosen
/// secret of every instance.
///
/// # Errors
///
/// [`OtError::Malformed`] when `me_bytes` does not parse,
/// [`OtError::BatchMismatch`] when the batch sizes disagree.
pub fn receiver_finish(
    receiver: &OtReceiver,
    group: &DhGroup,
    me_bytes: &[u8],
) -> Result<Vec<Vec<u8>>, OtError> {
    let msg_e = OtMessageE::decode(me_bytes)?;
    receiver.decrypt(group, &msg_e)
}

/// Batch-aware [`sender_round_a`]: identical RNG consumption and wire
/// bytes, exponentiations routed through the 4-way batch executor.
pub fn sender_round_a_batched(
    group: &DhGroup,
    secrets: Vec<(Vec<u8>, Vec<u8>)>,
    rng: &mut StdRng,
) -> (OtSender, Vec<u8>) {
    let (sender, msg_a) = OtSender::start_batched(group, secrets, rng);
    let bytes = msg_a.encode(group);
    (sender, bytes)
}

/// Batch-aware [`receiver_round_b`].
///
/// # Errors
///
/// See [`receiver_round_b`].
pub fn receiver_round_b_batched(
    group: &DhGroup,
    choices: &[bool],
    ma_bytes: &[u8],
    rng: &mut StdRng,
) -> Result<(OtReceiver, Vec<u8>), OtError> {
    let msg_a = OtMessageA::decode(group, ma_bytes)?;
    let (receiver, msg_b) = OtReceiver::respond_batched(group, choices, &msg_a, rng)?;
    Ok((receiver, msg_b.encode(group)))
}

/// Batch-aware [`sender_round_e`]: the `k¹` derivation is folded into an
/// interleaved multi-exponentiation (see [`OtSender::encrypt_enqueue`]).
///
/// # Errors
///
/// See [`sender_round_e`].
pub fn sender_round_e_batched(
    sender: &OtSender,
    group: &DhGroup,
    mb_bytes: &[u8],
) -> Result<Vec<u8>, OtError> {
    let msg_b = OtMessageB::decode(group, mb_bytes)?;
    Ok(sender.encrypt_batched(group, &msg_b)?.encode())
}

/// Batch-aware [`receiver_finish`].
///
/// # Errors
///
/// See [`receiver_finish`].
pub fn receiver_finish_batched(
    receiver: &OtReceiver,
    group: &DhGroup,
    me_bytes: &[u8],
) -> Result<Vec<Vec<u8>>, OtError> {
    let msg_e = OtMessageE::decode(me_bytes)?;
    receiver.decrypt_batched(group, &msg_e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn byte_rounds_match_typed_rounds() {
        let group = DhGroup::tiny_test_group();
        let secrets = vec![
            (b"zero-0".to_vec(), b"one--0".to_vec()),
            (b"zero-1".to_vec(), b"one--1".to_vec()),
        ];
        let choices = vec![true, false];

        // Typed path.
        let mut rng_s = StdRng::seed_from_u64(10);
        let mut rng_r = StdRng::seed_from_u64(20);
        let (sender_t, msg_a) = OtSender::start(&group, secrets.clone(), &mut rng_s);
        let (receiver_t, msg_b) =
            OtReceiver::respond(&group, &choices, &msg_a, &mut rng_r).unwrap();
        let msg_e = sender_t.encrypt(&group, &msg_b).unwrap();
        let typed_out = receiver_t.decrypt(&group, &msg_e).unwrap();

        // Byte path with identical RNG seeds must draw the same exponents
        // and therefore produce identical wire bytes and plaintexts.
        let mut rng_s = StdRng::seed_from_u64(10);
        let mut rng_r = StdRng::seed_from_u64(20);
        let (sender, ma) = sender_round_a(&group, secrets, &mut rng_s);
        assert_eq!(ma, msg_a.encode(&group));
        let (receiver, mb) = receiver_round_b(&group, &choices, &ma, &mut rng_r).unwrap();
        assert_eq!(mb, msg_b.encode(&group));
        let me = sender_round_e(&sender, &group, &mb).unwrap();
        assert_eq!(me, msg_e.encode());
        let out = receiver_finish(&receiver, &group, &me).unwrap();
        assert_eq!(out, typed_out);
        assert_eq!(out[0], b"one--0");
        assert_eq!(out[1], b"zero-1");
    }

    #[test]
    fn batched_byte_rounds_match_scalar_byte_rounds() {
        // The batched wrappers must be a drop-in: same seeds, same wire
        // bytes, on both a Montgomery-only group and the fold-path fleet
        // group.
        let tiny = DhGroup::tiny_test_group();
        let wk = DhGroup::wavekey_1024();
        for group in [&tiny, &wk] {
            let secrets =
                vec![(b"zero-0".to_vec(), b"one--0".to_vec()), (b"zero-1".to_vec(), b"one--1".to_vec())];
            let choices = vec![true, false];

            let mut rng_s = StdRng::seed_from_u64(30);
            let mut rng_r = StdRng::seed_from_u64(40);
            let (sender, ma) = sender_round_a(group, secrets.clone(), &mut rng_s);
            let (receiver, mb) = receiver_round_b(group, &choices, &ma, &mut rng_r).unwrap();
            let me = sender_round_e(&sender, group, &mb).unwrap();
            let out = receiver_finish(&receiver, group, &me).unwrap();

            let mut rng_s = StdRng::seed_from_u64(30);
            let mut rng_r = StdRng::seed_from_u64(40);
            let (sender_b, ma_b) = sender_round_a_batched(group, secrets, &mut rng_s);
            assert_eq!(ma_b, ma);
            let (receiver_b, mb_b) =
                receiver_round_b_batched(group, &choices, &ma_b, &mut rng_r).unwrap();
            assert_eq!(mb_b, mb);
            let me_b = sender_round_e_batched(&sender_b, group, &mb_b).unwrap();
            assert_eq!(me_b, me);
            let out_b = receiver_finish_batched(&receiver_b, group, &me_b).unwrap();
            assert_eq!(out_b, out);
        }
    }

    #[test]
    fn malformed_bytes_are_rejected_at_every_round() {
        let group = DhGroup::tiny_test_group();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            receiver_round_b(&group, &[true], &[1, 2, 3], &mut rng).unwrap_err(),
            OtError::Malformed
        );
        let (sender, ma) = sender_round_a(&group, vec![(vec![1], vec![2])], &mut rng);
        assert_eq!(sender_round_e(&sender, &group, &[9]).unwrap_err(), OtError::Malformed);
        let (receiver, _) = receiver_round_b(&group, &[true], &ma, &mut rng).unwrap();
        assert_eq!(
            receiver_finish(&receiver, &group, &[0, 0]).unwrap_err(),
            OtError::Malformed
        );
    }

    #[test]
    fn batch_mismatch_is_rejected_at_every_round() {
        let group = DhGroup::tiny_test_group();
        let mut rng = StdRng::seed_from_u64(2);
        let (sender, ma) = sender_round_a(&group, vec![(vec![1], vec![2])], &mut rng);
        // Two choices against a one-instance M_A.
        assert_eq!(
            receiver_round_b(&group, &[true, false], &ma, &mut rng).unwrap_err(),
            OtError::BatchMismatch
        );
        // An M_B with the wrong number of elements.
        let (_, mb) = receiver_round_b(&group, &[true], &ma, &mut rng).unwrap();
        let mut doubled = mb.clone();
        doubled.extend_from_slice(&mb);
        assert_eq!(
            sender_round_e(&sender, &group, &doubled).unwrap_err(),
            OtError::BatchMismatch
        );
    }
}
