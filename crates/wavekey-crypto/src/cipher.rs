//! The OT payload cipher `E(x, k)`: a SHA-256 counter-mode keystream XOR.
//!
//! The "simplest OT" needs a symmetric encryption keyed by the derived
//! group-element hash. A hash-based CTR keystream is the standard
//! instantiation: `keystream_i = SHA-256(k ‖ i)`, ciphertext = plaintext ⊕
//! keystream. Encryption and decryption are the same operation.

use crate::sha256::sha256;

/// Encrypts (or decrypts) `data` with the 32-byte key `key`.
///
/// # Examples
///
/// ```
/// use wavekey_crypto::{ctr_encrypt, ctr_decrypt};
/// let key = [7u8; 32];
/// let ct = ctr_encrypt(&key, b"hello wavekey");
/// assert_eq!(ctr_decrypt(&key, &ct), b"hello wavekey");
/// ```
pub fn ctr_encrypt(key: &[u8; 32], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut counter: u64 = 0;
    let mut block = [0u8; 40];
    block[..32].copy_from_slice(key);
    for chunk in data.chunks(32) {
        block[32..].copy_from_slice(&counter.to_be_bytes());
        let ks = sha256(&block);
        for (i, &b) in chunk.iter().enumerate() {
            out.push(b ^ ks[i]);
        }
        counter += 1;
    }
    out
}

/// Decrypts data encrypted by [`ctr_encrypt`] (XOR is its own inverse).
pub fn ctr_decrypt(key: &[u8; 32], data: &[u8]) -> Vec<u8> {
    ctr_encrypt(key, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_lengths() {
        let key = [0x42u8; 32];
        for len in [0usize, 1, 31, 32, 33, 100, 1000] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = ctr_encrypt(&key, &data);
            assert_eq!(ct.len(), len);
            assert_eq!(ctr_decrypt(&key, &ct), data);
        }
    }

    #[test]
    fn wrong_key_gives_garbage() {
        let k1 = [1u8; 32];
        let k2 = [2u8; 32];
        let ct = ctr_encrypt(&k1, b"secret message here");
        assert_ne!(ctr_decrypt(&k2, &ct), b"secret message here");
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let key = [9u8; 32];
        let pt = vec![0u8; 64];
        let ct = ctr_encrypt(&key, &pt);
        // The keystream itself: must not be all zeros and the two 32-byte
        // blocks must differ (counter works).
        assert_ne!(ct, pt);
        assert_ne!(&ct[..32], &ct[32..]);
    }

    #[test]
    fn deterministic() {
        let key = [3u8; 32];
        assert_eq!(ctr_encrypt(&key, b"abc"), ctr_encrypt(&key, b"abc"));
    }
}
