//! HKDF-style key derivation (extract-then-expand, RFC 5869 construction
//! over our HMAC-SHA256).
//!
//! The code-offset reconciliation publishes `ECC(K_M)` on the open
//! channel, which information-theoretically leaks the code's parity
//! structure (`n − k` bits per block) about the preliminary key. The
//! paper uses `K_M` directly; a hardened deployment passes the reconciled
//! key through a KDF so the delivered key is computationally independent
//! of the leaked helper data (*privacy amplification*). The agreement
//! exposes this as an opt-in step so the paper's exact construction stays
//! the default.

use crate::hmac::hmac_sha256;

/// HKDF-Extract: compresses input keying material into a pseudorandom
/// key using an optional salt.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; 32] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: derives `len` bytes of output keying material from a
/// pseudorandom key and context `info`.
///
/// # Panics
///
/// Panics if `len > 255 × 32` (the RFC 5869 limit for SHA-256).
pub fn hkdf_expand(prk: &[u8; 32], info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "hkdf output too long");
    let mut okm = Vec::with_capacity(len);
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < len {
        let mut block = t.clone();
        block.extend_from_slice(info);
        block.push(counter);
        t = hmac_sha256(prk, &block).to_vec();
        let take = (len - okm.len()).min(32);
        okm.extend_from_slice(&t[..take]);
        counter += 1;
    }
    okm
}

/// One-call HKDF: extract with `salt`, expand to `len` bytes with `info`.
///
/// # Examples
///
/// ```
/// let key = wavekey_crypto::kdf::hkdf(b"salt", b"input keying material", b"wavekey", 32);
/// assert_eq!(key.len(), 32);
/// ```
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    hkdf_expand(&hkdf_extract(salt, ikm), info, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 5869 test case 1 (SHA-256).
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            crate::sha256::to_hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = hkdf_expand(&prk, &info, 42);
        assert_eq!(
            crate::sha256::to_hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 test case 2 (longer inputs/outputs).
    #[test]
    fn rfc5869_case2() {
        let ikm: Vec<u8> = (0x00..=0x4f).collect();
        let salt: Vec<u8> = (0x60..=0xaf).collect();
        let info: Vec<u8> = (0xb0..=0xff).collect();
        let okm = hkdf(&salt, &ikm, &info, 82);
        assert_eq!(
            crate::sha256::to_hex(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    /// RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            crate::sha256::to_hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn different_info_different_keys() {
        let prk = hkdf_extract(b"s", b"ikm");
        assert_ne!(hkdf_expand(&prk, b"a", 32), hkdf_expand(&prk, b"b", 32));
    }

    #[test]
    fn expand_lengths() {
        let prk = hkdf_extract(b"s", b"ikm");
        for len in [1usize, 31, 32, 33, 64, 100, 255] {
            assert_eq!(hkdf_expand(&prk, b"x", len).len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "hkdf output too long")]
    fn expand_rejects_overlong() {
        let prk = hkdf_extract(b"s", b"ikm");
        hkdf_expand(&prk, b"x", 255 * 32 + 1);
    }
}
