//! Property-based tests for the cryptographic substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wavekey_crypto::bigint::{MontgomeryCtx, Ubig};
use wavekey_crypto::cipher::{ctr_decrypt, ctr_encrypt};
use wavekey_crypto::ecc::{Bch, CodeOffset};
use wavekey_crypto::hmac::hmac_sha256;
use wavekey_crypto::sha256::sha256;

proptest! {
    #[test]
    fn ubig_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let n = Ubig::from_be_bytes(&bytes);
        let back = Ubig::from_be_bytes(&n.to_be_bytes());
        prop_assert_eq!(n, back);
    }

    #[test]
    fn ubig_add_commutes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let x = Ubig::from_u64(a).mul(&Ubig::from_u64(c));
        let y = Ubig::from_u64(b).mul(&Ubig::from_u64(c));
        prop_assert_eq!(x.add(&y), y.add(&x));
    }

    #[test]
    fn ubig_add_sub_inverse(a in any::<u64>(), b in any::<u64>()) {
        let x = Ubig::from_u64(a);
        let y = Ubig::from_u64(b);
        let s = x.add(&y);
        prop_assert_eq!(s.sub(&y), x);
    }

    #[test]
    fn ubig_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = Ubig::from_u64(a).mul(&Ubig::from_u64(b));
        let expected = u128::from(a) * u128::from(b);
        let mut bytes = expected.to_be_bytes().to_vec();
        while bytes.len() > 1 && bytes[0] == 0 {
            bytes.remove(0);
        }
        prop_assert_eq!(prod.to_be_bytes(), bytes);
    }

    #[test]
    fn ubig_rem_is_canonical(a in any::<u64>(), b in 1u64..u64::MAX) {
        let r = Ubig::from_u64(a).rem(&Ubig::from_u64(b));
        prop_assert_eq!(r, Ubig::from_u64(a % b));
    }

    #[test]
    fn montgomery_mul_matches_schoolbook(a in any::<u64>(), b in any::<u64>(), m in (3u64..u64::MAX).prop_map(|m| m | 1)) {
        let ctx = MontgomeryCtx::new(Ubig::from_u64(m));
        let got = ctx.mod_mul(&Ubig::from_u64(a % m), &Ubig::from_u64(b % m));
        let expected = (u128::from(a % m) * u128::from(b % m) % u128::from(m)) as u64;
        prop_assert_eq!(got, Ubig::from_u64(expected));
    }

    #[test]
    fn modexp_respects_exponent_addition(base in 2u64..1000, e1 in 0u64..50, e2 in 0u64..50) {
        // b^(e1+e2) = b^e1 · b^e2 (mod m) for odd m.
        let m = Ubig::from_u64(0xffff_ffff_ffff_ffc5);
        let ctx = MontgomeryCtx::new(m);
        let b = Ubig::from_u64(base);
        let lhs = ctx.mod_pow(&b, &Ubig::from_u64(e1 + e2));
        let rhs = ctx.mod_mul(
            &ctx.mod_pow(&b, &Ubig::from_u64(e1)),
            &ctx.mod_pow(&b, &Ubig::from_u64(e2)),
        );
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn ctr_cipher_roundtrips(key in any::<[u8; 32]>(), data in proptest::collection::vec(any::<u8>(), 0..200)) {
        prop_assert_eq!(ctr_decrypt(&key, &ctr_encrypt(&key, &data)), data);
    }

    #[test]
    fn sha256_is_deterministic_and_sensitive(data in proptest::collection::vec(any::<u8>(), 1..100), flip in 0usize..100) {
        let d1 = sha256(&data);
        prop_assert_eq!(d1, sha256(&data));
        let mut tweaked = data.clone();
        let idx = flip % tweaked.len();
        tweaked[idx] ^= 1;
        prop_assert_ne!(d1, sha256(&tweaked));
    }

    #[test]
    fn hmac_distinct_keys_distinct_macs(k1 in any::<u64>(), k2 in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(
            hmac_sha256(&k1.to_be_bytes(), &msg),
            hmac_sha256(&k2.to_be_bytes(), &msg)
        );
    }

    #[test]
    fn bch_corrects_any_pattern_within_radius(
        seed in any::<u64>(),
        positions in proptest::collection::btree_set(0usize..127, 0..=5)
    ) {
        let bch = Bch::new(5).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<bool> = (0..bch.k()).map(|_| rand::Rng::gen(&mut rng)).collect();
        let cw = bch.encode(&msg).unwrap();
        let mut corrupted = cw.clone();
        for &p in &positions {
            corrupted[p] = !corrupted[p];
        }
        prop_assert_eq!(bch.decode(&corrupted).unwrap(), cw);
    }

    #[test]
    fn code_offset_recovers_within_radius(
        seed in any::<u64>(),
        flips in proptest::collection::btree_set(0usize..127, 0..=3)
    ) {
        let co = CodeOffset::new(Bch::new(3).unwrap());
        let mut rng = StdRng::seed_from_u64(seed);
        let key: Vec<bool> = (0..127).map(|_| rand::Rng::gen(&mut rng)).collect();
        let helper = co.commit(&key, &mut rng);
        let mut noisy = key.clone();
        for &f in &flips {
            noisy[f] = !noisy[f];
        }
        let recovered = co.reconcile(&noisy, &helper, key.len());
        prop_assert_eq!(recovered, Some(key));
    }
}
