//! Differential property tests pinning the optimized exponentiation
//! kernels (CIOS Montgomery multiply, sliding-window `mod_pow`,
//! fixed-base `pow_g`) against the retained naive references
//! (`mod_mul_reference`, `mod_pow_reference`: allocate-multiply-then-redc
//! and bit-at-a-time square-and-multiply).
//!
//! Strategy: random operands over a spread of odd moduli — single-limb,
//! multi-limb awkward widths, and the real MODP-1024 group. The
//! MODP-1024 cases are capped at fewer proptest cases since each one
//! costs a 1024-bit exponentiation (or a table build).

use proptest::prelude::*;
use wavekey_crypto::batch::ModexpBatch;
use wavekey_crypto::bigint::{CrandallCtx, MontgomeryCtx, Ubig};
use wavekey_crypto::group::{DhGroup, MODP_1024_HEX, WAVEKEY_1024_HEX};

/// Odd moduli spanning 1..=3 limbs (CIOS exercises carries differently
/// per width). All > 2 so operands can be non-trivial.
fn small_moduli() -> Vec<Ubig> {
    vec![
        Ubig::from_u64(3),
        Ubig::from_u64(0xffff_fffb),              // 32-bit prime
        Ubig::from_u64((1u64 << 61) - 1),         // Mersenne prime M61
        Ubig::from_u64(u64::MAX),                 // 2^64 − 1 (odd, composite)
        Ubig::from_hex("ffffffffffffffffffffffffffffff61"), // 128-bit
        Ubig::from_hex("1000000000000000000000000000000000000000000000f1"), // 193-bit
    ]
}

/// An arbitrary operand below 2^192, reduced by callers as needed.
fn operand() -> impl Strategy<Value = Ubig> {
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(a, b, c)| {
        Ubig::from_hex(&format!("{a:016x}{b:016x}{c:016x}"))
    })
}

proptest! {
    #[test]
    fn cios_mod_mul_matches_reference_small(a in operand(), b in operand()) {
        for m in small_moduli() {
            let ctx = MontgomeryCtx::new(m.clone());
            let fast = ctx.mod_mul(&a, &b);
            let reference = ctx.mod_mul_reference(&a.rem(&m), &b.rem(&m));
            prop_assert_eq!(&fast, &reference, "modulus {:?}", m);
            // Both must also agree with schoolbook mul + rem.
            let naive = a.rem(&m).mul(&b.rem(&m)).rem(&m);
            prop_assert_eq!(&fast, &naive, "modulus {:?}", m);
        }
    }

    #[test]
    fn windowed_mod_pow_matches_reference_small(base in operand(), exp in operand()) {
        for m in small_moduli() {
            let ctx = MontgomeryCtx::new(m.clone());
            prop_assert_eq!(
                ctx.mod_pow(&base, &exp),
                ctx.mod_pow_reference(&base, &exp),
                "modulus {:?}", m
            );
        }
    }

    #[test]
    fn fixed_base_matches_reference_small(base in operand(), exp in operand()) {
        let m = Ubig::from_hex("ffffffffffffffffffffffffffffff61");
        let ctx = MontgomeryCtx::new(m.clone());
        let base = base.rem(&m);
        for w in [1usize, 3, 5] {
            let table = ctx.fixed_base_table(&base, m.bit_len(), w);
            prop_assert_eq!(
                ctx.pow_fixed_base(&table, &exp),
                ctx.mod_pow_reference(&base, &exp),
                "window {}", w
            );
        }
    }
}

proptest! {
    // MODP-1024 cases are individually expensive: cap the case count.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cios_mod_mul_matches_reference_modp1024(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ctx = MontgomeryCtx::new(Ubig::from_hex(MODP_1024_HEX));
        let a = Ubig::random_below(ctx.modulus(), &mut rng);
        let b = Ubig::random_below(ctx.modulus(), &mut rng);
        prop_assert_eq!(ctx.mod_mul(&a, &b), ctx.mod_mul_reference(&a, &b));
    }

    #[test]
    fn windowed_mod_pow_matches_reference_modp1024(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ctx = MontgomeryCtx::new(Ubig::from_hex(MODP_1024_HEX));
        let base = Ubig::random_below(ctx.modulus(), &mut rng);
        let exp = Ubig::random_below(ctx.modulus(), &mut rng);
        prop_assert_eq!(ctx.mod_pow(&base, &exp), ctx.mod_pow_reference(&base, &exp));
    }

    #[test]
    fn pow_g_matches_reference_modp1024(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let group = DhGroup::modp_1024_shared();
        let ctx = MontgomeryCtx::new(Ubig::from_hex(MODP_1024_HEX));
        let x = Ubig::random_below(group.modulus(), &mut rng);
        // Fixed-base comb vs naive square-and-multiply on g = 2.
        prop_assert_eq!(
            group.pow_g(&x),
            ctx.mod_pow_reference(group.generator(), &x)
        );
        // And the inverse power really is the inverse.
        let prod = group.mul(&group.pow_g(&x), &group.inv_pow_g(&x));
        prop_assert_eq!(prod, Ubig::one());
    }
}

proptest! {
    // Each case is several 1024-bit (or multi-limb) exponentiations.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The 4-way interleaved CIOS exponentiation equals the scalar
    /// Montgomery route lane-for-lane, on an awkward 2-limb modulus and
    /// the real MODP-1024.
    #[test]
    fn quad_mod_pow_matches_scalar(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for m in [
            Ubig::from_hex("ffffffffffffffffffffffffffffff61"),
            Ubig::from_hex(MODP_1024_HEX),
        ] {
            let ctx = MontgomeryCtx::new(m.clone());
            let bases: [Ubig; 4] =
                std::array::from_fn(|_| Ubig::random_below(&m, &mut rng));
            let exps: [Ubig; 4] =
                std::array::from_fn(|_| Ubig::random_below(&m, &mut rng));
            let fast = ctx.mod_pow_x4(&bases, &exps);
            for l in 0..4 {
                prop_assert_eq!(&fast[l], &ctx.mod_pow(&bases[l], &exps[l]), "lane {}", l);
            }
        }
    }

    /// The Crandall fold-reduction exponentiation (the WAVEKEY-1024
    /// fleet group's fast path) equals the scalar Montgomery route.
    #[test]
    fn crandall_pow_matches_montgomery(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = Ubig::from_hex(WAVEKEY_1024_HEX);
        let cr = CrandallCtx::new(&p).expect("fleet modulus is Crandall-form");
        let mont = MontgomeryCtx::new(p.clone());
        let bases: [Ubig; 4] = std::array::from_fn(|_| Ubig::random_below(&p, &mut rng));
        let exps: [Ubig; 4] = std::array::from_fn(|_| Ubig::random_below(&p, &mut rng));
        let fold = cr.pow_x4(&bases, &exps);
        for l in 0..4 {
            prop_assert_eq!(&fold[l], &mont.mod_pow(&bases[l], &exps[l]), "lane {}", l);
        }
    }

    /// The batch executor (grouping, quad-packing, dummy-lane padding,
    /// dependent MulPowG jobs) equals the pinned scalar route for any
    /// job count — ragged tails included — with fold-path and
    /// Montgomery-path moduli mixed in one batch.
    #[test]
    fn batch_executor_matches_scalar(seed in any::<u64>(), n in 1usize..10) {
        use rand::SeedableRng;
        let groups = [DhGroup::wavekey_1024_shared(), DhGroup::modp_1024_shared()];
        let fill = |batch: &mut ModexpBatch<'static>| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            for i in 0..n {
                let g = groups[i % groups.len()];
                let x = g.random_exponent(&mut rng);
                match i % 4 {
                    0 => { batch.push_pow_g(g, x); }
                    1 => { batch.push_inv_pow_g(g, x); }
                    2 => {
                        let base = Ubig::random_below(g.modulus(), &mut rng);
                        batch.push_pow(g, base, x);
                    }
                    _ => {
                        let base = Ubig::random_below(g.modulus(), &mut rng);
                        let dep = batch.push_pow(g, base, x);
                        batch.push_mul_pow_g(g, dep, g.random_exponent(&mut rng));
                    }
                }
            }
        };
        let (mut fast, mut slow) = (ModexpBatch::new(), ModexpBatch::new());
        fill(&mut fast);
        fill(&mut slow);
        prop_assert_eq!(fast.execute().into_vec(), slow.execute_scalar().into_vec());
    }
}

#[test]
fn edge_exponents_agree_everywhere() {
    // Zero / one / all-ones / power-of-two exponents hit the window
    // machinery's boundary paths (leading window, zero digits, fallback).
    let ctx = MontgomeryCtx::new(Ubig::from_hex(MODP_1024_HEX));
    let base = Ubig::from_u64(0xdead_beef_1234_5678);
    let exps = [
        Ubig::zero(),
        Ubig::one(),
        Ubig::from_u64(2),
        Ubig::from_u64(u64::MAX),
        Ubig::one().shl(511),
        Ubig::one().shl(512).sub(&Ubig::one()),
        Ubig::from_hex(MODP_1024_HEX).sub(&Ubig::one()), // full-width
    ];
    let table = ctx.fixed_base_table(&base, ctx.modulus().bit_len(), 6);
    for e in &exps {
        let reference = ctx.mod_pow_reference(&base, e);
        assert_eq!(&ctx.mod_pow(&base, e), &reference, "mod_pow exp {e:?}");
        assert_eq!(&ctx.pow_fixed_base(&table, e), &reference, "fixed base exp {e:?}");
    }
    // Exponent wider than the table's coverage takes the fallback path.
    let wide = Ubig::from_hex(MODP_1024_HEX).shl(64);
    assert_eq!(ctx.pow_fixed_base(&table, &wide), ctx.mod_pow_reference(&base, &wide));
}

#[test]
fn mod_pow2_matches_general_path() {
    let ctx = MontgomeryCtx::new(Ubig::from_hex(MODP_1024_HEX));
    for e in [0u64, 1, 5, 63, 64, 600, 1023] {
        let exp = Ubig::from_u64(e);
        assert_eq!(
            ctx.mod_pow2(&exp),
            ctx.mod_pow_reference(&Ubig::from_u64(2), &exp),
            "2^{e}"
        );
    }
}
