//! Minimal JSON tree, writer, and parser.
//!
//! The observability crate is dependency-free by design (the build
//! container cannot reach the cargo registry), so it carries its own tiny
//! JSON implementation: enough to emit the `results/OBS_session.json`
//! artifact and JSON-lines collector output, and to parse them back for
//! round-trip tests and baseline comparisons (`results/BENCH_crypto.json`).
//! Object key order is preserved; numbers round-trip through Rust's
//! shortest-representation `f64` formatting.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also used for non-finite numbers on output).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; stored as `f64` like JavaScript.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's f64 Display is the shortest round-trip form and
                    // is valid JSON for finite values.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns `None` on any syntax error.
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(value)
        } else {
            None
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Option<()> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(bytes, pos);
    match *bytes.get(*pos)? {
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(pairs));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Option<Json> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let b = *bytes.get(*pos)?;
        *pos += 1;
        match b {
            b'"' => return Some(out),
            b'\\' => {
                let esc = *bytes.get(*pos)?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes.get(*pos..*pos + 4)?;
                        *pos += 4;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        // Surrogate pairs are not needed for our artifacts.
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            _ => {
                // Re-decode UTF-8 continuation bytes.
                let start = *pos - 1;
                let mut end = *pos;
                while end < bytes.len() && bytes[end] & 0xc0 == 0x80 {
                    end += 1;
                }
                let s = std::str::from_utf8(&bytes[start..end]).ok()?;
                let c = s.chars().next()?;
                out.push(c);
                *pos = start + c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    if start == *pos {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos]).ok()?.parse::<f64>().ok().map(Json::Num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("ot_round_a".into())),
            ("seconds", Json::Num(0.04375)),
            ("tags", Json::Arr(vec![Json::Str("mobile".into()), Json::Str("server".into())])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).expect("parse"), doc);
        }
    }

    #[test]
    fn escapes_and_rejects_garbage() {
        let doc = Json::obj(vec![("s", Json::Str("a\"b\\c\nd\u{1}é".into()))]);
        assert_eq!(Json::parse(&doc.to_string_compact()).expect("parse"), doc);
        assert!(Json::parse("{\"a\":}").is_none());
        assert!(Json::parse("[1,2,]").is_none());
        assert!(Json::parse("{} extra").is_none());
    }

    #[test]
    fn numbers_round_trip_shortest_form() {
        for n in [0.0, -1.5, 1e-9, 203000000.0, 0.1, f64::MAX] {
            let text = Json::Num(n).to_string_compact();
            assert_eq!(Json::parse(&text).expect("parse").as_f64(), Some(n));
        }
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }
}
