//! The session flight recorder: a bounded ring of the most recent
//! [`SessionTrace`]s.
//!
//! Long-running services (e.g. `wavekey_core::service::AccessService`)
//! can attach one as their collector and always have the last N sessions
//! available for post-incident inspection without unbounded memory growth.

use crate::collector::Collector;
use crate::trace::{SessionTrace, TraceSet};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Bounded ring buffer of recent session traces; usable as a [`Collector`]
/// (spans and events are ignored, sessions are retained).
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<SessionTrace>>,
}

impl FlightRecorder {
    /// A recorder keeping at most `capacity` sessions (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder { capacity, ring: Mutex::new(VecDeque::with_capacity(capacity)) }
    }

    /// Number of retained sessions.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight ring poisoned").len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The retained sessions, oldest first.
    pub fn recent(&self) -> Vec<SessionTrace> {
        self.ring.lock().expect("flight ring poisoned").iter().cloned().collect()
    }

    /// The most recent session, if any.
    pub fn latest(&self) -> Option<SessionTrace> {
        self.ring.lock().expect("flight ring poisoned").back().cloned()
    }

    /// Copy the retained sessions into a [`TraceSet`] for aggregation.
    pub fn trace_set(&self) -> TraceSet {
        let mut set = TraceSet::new();
        for t in self.recent() {
            set.push(t);
        }
        set
    }
}

impl Collector for FlightRecorder {
    fn record_session(&self, trace: &SessionTrace) {
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.record_session(&SessionTrace::new(i));
        }
        let ids: Vec<u64> = rec.recent().iter().map(|t| t.session_id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(rec.latest().expect("latest").session_id, 4);
        assert_eq!(rec.trace_set().len(), 3);
    }

    #[test]
    fn capacity_floor_is_one() {
        let rec = FlightRecorder::new(0);
        rec.record_session(&SessionTrace::new(1));
        rec.record_session(&SessionTrace::new(2));
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.latest().expect("latest").session_id, 2);
    }
}
