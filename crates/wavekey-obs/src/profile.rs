//! Hierarchical span aggregation: a call tree keyed by span path.
//!
//! The RAII spans of [`crate::Obs`] already measure durations; this module
//! adds *attribution*. Each thread keeps a stack of the spans currently
//! open on it, and every closing span records its full path — the open
//! ancestors joined with `;`, e.g. `enrol_mix;wave;manager_step` — into a
//! [`ProfileStore`] of per-path counts and inclusive time. Pre-measured
//! durations ([`crate::Obs::record_duration`]) attribute as leaves under
//! whatever spans are open, so the agreement's logically-clocked stage
//! timings land in the right subtree for free.
//!
//! Two exports:
//!
//! * [`collapsed`] — flamegraph-compatible collapsed-stack text, one
//!   `path weight` line per path, weight = *exclusive* time in integer
//!   microseconds (the format `inferno`/`flamegraph.pl` consume).
//! * [`tree`] — a [`ProfileNode`] forest with inclusive/exclusive seconds,
//!   counts, and children, rendered to JSON via [`ProfileNode::to_json`].
//!
//! Everything here runs only on the *enabled* obs path; a disabled handle
//! never touches the thread-local stack or the store, preserving the
//! one-pointer-test disabled cost.

use crate::json::Json;
use std::collections::HashMap;
use std::sync::Mutex;

/// Aggregated samples for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PathStat {
    /// How many spans closed on this path.
    pub count: u64,
    /// Total inclusive seconds across those spans.
    pub total_s: f64,
}

/// Thread-safe accumulator of per-path span statistics.
#[derive(Debug, Default)]
pub struct ProfileStore {
    paths: Mutex<HashMap<String, PathStat>>,
}

impl ProfileStore {
    /// An empty store.
    pub fn new() -> ProfileStore {
        ProfileStore::default()
    }

    /// Add one closed span's inclusive time under `path`.
    pub fn record(&self, path: &str, seconds: f64) {
        let mut paths = self.paths.lock().expect("profile store poisoned");
        match paths.get_mut(path) {
            Some(stat) => {
                stat.count += 1;
                stat.total_s += seconds;
            }
            None => {
                paths.insert(path.to_string(), PathStat { count: 1, total_s: seconds });
            }
        }
    }

    /// Copy out every `(path, stat)`, sorted by path.
    pub fn snapshot(&self) -> Vec<(String, PathStat)> {
        let mut out: Vec<(String, PathStat)> =
            self.paths.lock().expect("profile store poisoned").iter().map(|(p, s)| (p.clone(), *s)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.paths.lock().expect("profile store poisoned").is_empty()
    }
}

/// One node of the aggregated call tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Span name (one path segment).
    pub name: String,
    /// Spans closed exactly at this path.
    pub count: u64,
    /// Inclusive seconds: this path's own recorded time, or the sum of its
    /// children's when the path itself was never closed directly (a pure
    /// interior node).
    pub inclusive_s: f64,
    /// Exclusive seconds: inclusive minus the children's inclusive time,
    /// floored at zero (clock jitter can make a child measure marginally
    /// longer than its parent).
    pub exclusive_s: f64,
    /// Child nodes, sorted by name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// JSON rendering of the subtree.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("count", Json::Num(self.count as f64)),
            ("inclusive_s", Json::Num(self.inclusive_s)),
            ("exclusive_s", Json::Num(self.exclusive_s)),
            ("children", Json::Arr(self.children.iter().map(ProfileNode::to_json).collect())),
        ])
    }
}

/// Build the call-tree forest from a [`ProfileStore::snapshot`].
pub fn tree(snapshot: &[(String, PathStat)]) -> Vec<ProfileNode> {
    fn build(prefix: &str, name: &str, snapshot: &[(String, PathStat)]) -> ProfileNode {
        let path = if prefix.is_empty() { name.to_string() } else { format!("{prefix};{name}") };
        let own = snapshot
            .iter()
            .find(|(p, _)| *p == path)
            .map(|(_, s)| *s)
            .unwrap_or_default();
        let children: Vec<ProfileNode> = child_names(&path, snapshot)
            .into_iter()
            .map(|child| build(&path, &child, snapshot))
            .collect();
        let children_inclusive: f64 = children.iter().map(|c| c.inclusive_s).sum();
        let inclusive_s = if own.count > 0 { own.total_s } else { children_inclusive };
        ProfileNode {
            name: name.to_string(),
            count: own.count,
            inclusive_s,
            exclusive_s: (inclusive_s - children_inclusive).max(0.0),
            children,
        }
    }
    child_names("", snapshot).into_iter().map(|root| build("", &root, snapshot)).collect()
}

/// Distinct next path segments under `prefix`, in sorted order.
fn child_names(prefix: &str, snapshot: &[(String, PathStat)]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (path, _) in snapshot {
        let rest = if prefix.is_empty() {
            path.as_str()
        } else {
            match path.strip_prefix(prefix).and_then(|r| r.strip_prefix(';')) {
                Some(rest) => rest,
                None => continue,
            }
        };
        let segment = rest.split(';').next().unwrap_or(rest);
        if segment.is_empty() {
            continue;
        }
        if !names.iter().any(|n| n == segment) {
            names.push(segment.to_string());
        }
    }
    names.sort();
    names
}

/// Render a snapshot as flamegraph collapsed-stack text: one
/// `path weight` line per path (sorted), weight = exclusive time in
/// integer microseconds.
pub fn collapsed(snapshot: &[(String, PathStat)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (path, stat) in snapshot {
        // Exclusive = own total minus direct children's totals.
        let child_prefix = format!("{path};");
        let children_total: f64 = snapshot
            .iter()
            .filter(|(p, _)| {
                p.strip_prefix(&child_prefix).is_some_and(|rest| !rest.contains(';'))
            })
            .map(|(_, s)| s.total_s)
            .sum();
        let exclusive_us = ((stat.total_s - children_total).max(0.0) * 1e6).round() as u64;
        let _ = writeln!(out, "{path} {exclusive_us}");
    }
    out
}

/// JSON rendering of the whole forest plus a flat per-path table.
pub fn report_json(snapshot: &[(String, PathStat)]) -> Json {
    let forest = tree(snapshot);
    Json::obj(vec![
        ("paths", Json::Num(snapshot.len() as f64)),
        ("tree", Json::Arr(forest.iter().map(ProfileNode::to_json).collect())),
        (
            "flat",
            Json::Arr(
                snapshot
                    .iter()
                    .map(|(path, stat)| {
                        Json::obj(vec![
                            ("path", Json::Str(path.clone())),
                            ("count", Json::Num(stat.count as f64)),
                            ("total_s", Json::Num(stat.total_s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(paths: &[(&str, u64, f64)]) -> Vec<(String, PathStat)> {
        let store = ProfileStore::new();
        for (path, count, total) in paths {
            for _ in 0..*count {
                store.record(path, total / *count as f64);
            }
        }
        store.snapshot()
    }

    #[test]
    fn tree_attributes_inclusive_and_exclusive_time() {
        let snap = store_with(&[
            ("root", 1, 1.0),
            ("root;child_a", 2, 0.4),
            ("root;child_a;leaf", 2, 0.1),
            ("root;child_b", 1, 0.3),
        ]);
        let forest = tree(&snap);
        assert_eq!(forest.len(), 1);
        let root = &forest[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.count, 1);
        assert!((root.inclusive_s - 1.0).abs() < 1e-9);
        assert!((root.exclusive_s - 0.3).abs() < 1e-9, "1.0 - (0.4 + 0.3)");
        assert_eq!(root.children.len(), 2);
        let a = &root.children[0];
        assert_eq!(a.name, "child_a");
        assert_eq!(a.count, 2);
        assert!((a.exclusive_s - 0.3).abs() < 1e-9, "0.4 - 0.1");
        assert_eq!(a.children[0].name, "leaf");
        assert!((a.children[0].exclusive_s - 0.1).abs() < 1e-9);
    }

    #[test]
    fn interior_node_without_direct_samples_sums_children() {
        // "outer" never closed directly (e.g. only pre-measured leaves
        // were recorded under it).
        let snap = store_with(&[("outer;leaf_a", 1, 0.2), ("outer;leaf_b", 1, 0.3)]);
        let forest = tree(&snap);
        let outer = &forest[0];
        assert_eq!(outer.count, 0);
        assert!((outer.inclusive_s - 0.5).abs() < 1e-9);
        assert_eq!(outer.exclusive_s, 0.0);
    }

    #[test]
    fn collapsed_emits_exclusive_microsecond_weights() {
        let snap = store_with(&[("root", 1, 0.001), ("root;leaf", 1, 0.0004)]);
        let text = collapsed(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["root 600", "root;leaf 400"]);
    }

    #[test]
    fn deep_grandchildren_do_not_double_subtract() {
        // Only *direct* children subtract from a path's exclusive time.
        let snap = store_with(&[("a", 1, 1.0), ("a;b", 1, 0.6), ("a;b;c", 1, 0.2)]);
        let text = collapsed(&snap);
        assert_eq!(text.lines().next(), Some("a 400000"), "1.0 - 0.6 only");
    }

    #[test]
    fn report_json_shape() {
        let snap = store_with(&[("root", 1, 0.5)]);
        let json = report_json(&snap);
        assert_eq!(json.get("paths").and_then(Json::as_f64), Some(1.0));
        assert!(json.get("tree").and_then(Json::as_arr).is_some());
        assert!(json.get("flat").and_then(Json::as_arr).is_some());
    }
}
