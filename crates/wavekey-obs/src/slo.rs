//! Declarative SLOs: error budgets, burn rates, machine-readable verdicts.
//!
//! An [`SloSpec`] states an objective the way an operator would: "p99
//! latency under 250 ms over the last 500 samples, with at least 95%
//! success". Evaluation is pure arithmetic over a sample set:
//!
//! * the **error budget** is the fraction of samples allowed over the
//!   threshold, `1 − objective` (for a p99 objective, 1% of samples);
//! * the **burn rate** is the observed violation fraction divided by the
//!   budget — `1.0` means the budget is exactly spent, `> 1.0` means the
//!   SLO is violated, and `budget_remaining = 1 − burn_rate` is what is
//!   left (negative when overspent);
//! * the verdict **passes** iff the burn rate is at most one *and* the
//!   success rate clears its floor.
//!
//! Two evaluators: [`SloSpec::evaluate`] over raw samples (exact — used by
//! the load generator, which keeps per-session latencies), and
//! [`SloSpec::evaluate_histogram`] over a log-linear
//! [`Histogram`] snapshot (bucket-resolution — usable on a live registry
//! without retaining samples). Reports serialize through
//! [`SloReport::to_json`] so `ci.sh` can gate on them.

use crate::json::Json;
use crate::metrics::Histogram;
use crate::trace::percentile_sorted;

/// One declarative service-level objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Verdict name (e.g. `"enrol_p99"`).
    pub name: String,
    /// Objective percentile as a fraction (0.99 = "99% of samples must
    /// land at or under the threshold").
    pub objective: f64,
    /// Latency threshold, in the same unit as the samples (seconds
    /// throughout this workspace).
    pub threshold: f64,
    /// Evaluate only the most recent `window` samples; 0 = all samples.
    pub window: usize,
    /// Success-rate floor in `[0, 1]`; 0.0 disables the floor.
    pub min_success_rate: f64,
}

impl SloSpec {
    /// A latency SLO with no success-rate floor and no window.
    pub fn latency(name: &str, objective: f64, threshold: f64) -> SloSpec {
        SloSpec {
            name: name.to_string(),
            objective,
            threshold,
            window: 0,
            min_success_rate: 0.0,
        }
    }

    /// Builder: add a success-rate floor.
    pub fn with_success_floor(mut self, floor: f64) -> SloSpec {
        self.min_success_rate = floor;
        self
    }

    /// Builder: evaluate only the most recent `window` samples.
    pub fn with_window(mut self, window: usize) -> SloSpec {
        self.window = window;
        self
    }

    /// Exact evaluation over raw samples (plus an externally computed
    /// success rate, since a latency sample set alone cannot know how many
    /// attempts never produced one).
    pub fn evaluate(&self, samples: &[f64], success_rate: f64) -> SloVerdict {
        let window = if self.window > 0 && samples.len() > self.window {
            &samples[samples.len() - self.window..]
        } else {
            samples
        };
        let mut sorted: Vec<f64> = window.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let violations = window.iter().filter(|v| **v > self.threshold).count() as u64;
        self.verdict(window.len() as u64, violations, percentile_sorted(&sorted, self.objective), success_rate)
    }

    /// Bucket-resolution evaluation over a histogram snapshot: a sample
    /// counts as a violation when its bucket's representative midpoint
    /// exceeds the threshold (consistent with [`Histogram::quantile`],
    /// which also answers in midpoints).
    pub fn evaluate_histogram(&self, histogram: &Histogram, success_rate: f64) -> SloVerdict {
        let violations = histogram
            .buckets()
            .iter()
            .filter(|b| b.midpoint > self.threshold)
            .map(|b| b.count)
            .sum();
        self.verdict(
            histogram.count(),
            violations,
            histogram.quantile(self.objective),
            success_rate,
        )
    }

    fn verdict(&self, samples: u64, violations: u64, observed: f64, success_rate: f64) -> SloVerdict {
        let budget = (1.0 - self.objective) * samples as f64;
        let burn_rate = if samples == 0 {
            0.0
        } else if budget > 0.0 {
            violations as f64 / budget
        } else if violations > 0 {
            f64::INFINITY
        } else {
            0.0
        };
        SloVerdict {
            name: self.name.clone(),
            samples,
            violations,
            budget,
            burn_rate,
            budget_remaining: 1.0 - burn_rate,
            observed,
            threshold: self.threshold,
            objective: self.objective,
            success_rate,
            min_success_rate: self.min_success_rate,
            pass: burn_rate <= 1.0 && success_rate >= self.min_success_rate,
        }
    }
}

/// The machine-readable outcome of evaluating one [`SloSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerdict {
    /// Spec name.
    pub name: String,
    /// Samples evaluated (post-window).
    pub samples: u64,
    /// Samples over the threshold.
    pub violations: u64,
    /// Allowed violations, `(1 − objective) · samples` (fractional).
    pub budget: f64,
    /// `violations / budget`; ≤ 1.0 is within budget.
    pub burn_rate: f64,
    /// `1 − burn_rate`; negative when the budget is overspent.
    pub budget_remaining: f64,
    /// The observed value at the objective percentile.
    pub observed: f64,
    /// The spec's threshold, restated for self-contained reports.
    pub threshold: f64,
    /// The spec's objective, restated.
    pub objective: f64,
    /// The success rate the caller supplied.
    pub success_rate: f64,
    /// The spec's floor, restated.
    pub min_success_rate: f64,
    /// Whether the objective holds.
    pub pass: bool,
}

impl SloVerdict {
    /// JSON rendering (one entry of the `slo` array in `BENCH_load.json`).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("samples", Json::Num(self.samples as f64)),
            ("violations", Json::Num(self.violations as f64)),
            ("budget", Json::Num(self.budget)),
            ("burn_rate", Json::Num(self.burn_rate)),
            ("budget_remaining", Json::Num(self.budget_remaining)),
            ("observed", Json::Num(self.observed)),
            ("threshold", Json::Num(self.threshold)),
            ("objective", Json::Num(self.objective)),
            ("success_rate", Json::Num(self.success_rate)),
            ("min_success_rate", Json::Num(self.min_success_rate)),
            ("pass", Json::Bool(self.pass)),
        ])
    }
}

/// A set of verdicts with a single overall answer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloReport {
    /// The individual verdicts, in evaluation order.
    pub verdicts: Vec<SloVerdict>,
}

impl SloReport {
    /// An empty report.
    pub fn new() -> SloReport {
        SloReport::default()
    }

    /// Append one verdict.
    pub fn push(&mut self, verdict: SloVerdict) {
        self.verdicts.push(verdict);
    }

    /// Whether every verdict passes (vacuously true when empty).
    pub fn all_pass(&self) -> bool {
        self.verdicts.iter().all(|v| v.pass)
    }

    /// JSON array of verdicts.
    pub fn to_json(&self) -> Json {
        Json::Arr(self.verdicts.iter().map(SloVerdict::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 100 samples, 3 over a 0.1s threshold, p99 objective: the budget is
    /// exactly 1 sample, so burn rate is exactly 3.0 and the remaining
    /// budget exactly −2.0.
    #[test]
    fn burn_rate_fixture_overspent() {
        let mut samples = vec![0.05; 97];
        samples.extend([0.2, 0.3, 0.4]);
        let v = SloSpec::latency("p99", 0.99, 0.1).evaluate(&samples, 1.0);
        assert_eq!(v.samples, 100);
        assert_eq!(v.violations, 3);
        assert!((v.budget - 1.0).abs() < 1e-12);
        assert!((v.burn_rate - 3.0).abs() < 1e-12);
        assert!((v.budget_remaining - -2.0).abs() < 1e-12);
        assert!(!v.pass);
    }

    /// 200 samples, 1 violation, p99 objective: budget 2, burn rate 0.5,
    /// half the budget left.
    #[test]
    fn burn_rate_fixture_within_budget() {
        let mut samples = vec![0.05; 199];
        samples.push(0.2);
        let v = SloSpec::latency("p99", 0.99, 0.1).evaluate(&samples, 1.0);
        assert!((v.budget - 2.0).abs() < 1e-12);
        assert!((v.burn_rate - 0.5).abs() < 1e-12);
        assert!((v.budget_remaining - 0.5).abs() < 1e-12);
        assert!(v.pass);
    }

    /// Burn rate exactly 1.0 still passes: the budget is spent, not blown.
    #[test]
    fn burn_rate_exactly_one_passes() {
        let mut samples = vec![0.05; 95];
        samples.extend([0.2; 5]);
        let v = SloSpec::latency("p95", 0.95, 0.1).evaluate(&samples, 1.0);
        assert!((v.burn_rate - 1.0).abs() < 1e-12);
        assert!(v.pass);
    }

    #[test]
    fn success_floor_fails_independently_of_latency() {
        let samples = vec![0.01; 50];
        let spec = SloSpec::latency("auth", 0.99, 0.1).with_success_floor(0.95);
        assert!(spec.evaluate(&samples, 0.96).pass);
        assert!(!spec.evaluate(&samples, 0.90).pass);
    }

    #[test]
    fn window_restricts_to_recent_samples() {
        // 90 good old samples, then 10 recent ones of which 5 are bad: the
        // windowed spec only sees the last 10.
        let mut samples = vec![0.01; 90];
        samples.extend([0.01, 0.01, 0.01, 0.01, 0.01, 0.5, 0.5, 0.5, 0.5, 0.5]);
        let spec = SloSpec::latency("recent", 0.5, 0.1).with_window(10);
        let v = spec.evaluate(&samples, 1.0);
        assert_eq!(v.samples, 10);
        assert_eq!(v.violations, 5);
        assert!((v.burn_rate - 1.0).abs() < 1e-12);
        let unwindowed = SloSpec::latency("all", 0.5, 0.1).evaluate(&samples, 1.0);
        assert_eq!(unwindowed.samples, 100);
        assert_eq!(unwindowed.violations, 5);
        assert!((unwindowed.burn_rate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn observed_percentile_interpolates_exactly() {
        // Samples 1..=100: the p90 rank is 0.9·99 = 89.1, interpolating
        // between sorted[89]=90 and sorted[90]=91 → 90.1.
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let v = SloSpec::latency("p90", 0.90, 1000.0).evaluate(&samples, 1.0);
        assert!((v.observed - 90.1).abs() < 1e-9, "observed {}", v.observed);
        assert!(v.pass);
    }

    #[test]
    fn empty_and_degenerate_specs() {
        let v = SloSpec::latency("empty", 0.99, 0.1).evaluate(&[], 1.0);
        assert_eq!(v.samples, 0);
        assert_eq!(v.burn_rate, 0.0);
        assert!(v.pass);
        // objective = 1.0 → zero budget: any violation is an infinite burn.
        let v = SloSpec::latency("strict", 1.0, 0.1).evaluate(&[0.2], 1.0);
        assert!(v.burn_rate.is_infinite());
        assert!(!v.pass);
        let v = SloSpec::latency("strict", 1.0, 0.1).evaluate(&[0.05], 1.0);
        assert_eq!(v.burn_rate, 0.0);
        assert!(v.pass);
    }

    #[test]
    fn histogram_evaluation_matches_exact_within_bucket_error() {
        let mut h = Histogram::new();
        let mut samples = Vec::new();
        for i in 0..1000 {
            // 1–10 ms spread with a 1% tail at ~80 ms.
            let v = if i % 100 == 99 { 0.08 } else { 0.001 + (i % 90) as f64 * 1e-4 };
            h.observe(v);
            samples.push(v);
        }
        let spec = SloSpec::latency("p99", 0.99, 0.05);
        let exact = spec.evaluate(&samples, 1.0);
        let approx = spec.evaluate_histogram(&h, 1.0);
        assert_eq!(exact.violations, approx.violations);
        assert_eq!(exact.pass, approx.pass);
        // Midpoint representatives stay within one sub-bucket (≈6%).
        assert!((approx.observed - exact.observed).abs() / exact.observed < 0.07);
    }

    #[test]
    fn report_aggregates_and_serializes() {
        let mut report = SloReport::new();
        report.push(SloSpec::latency("a", 0.99, 1.0).evaluate(&[0.1; 10], 1.0));
        assert!(report.all_pass());
        report.push(SloSpec::latency("b", 0.5, 0.01).evaluate(&[0.1; 10], 1.0));
        assert!(!report.all_pass());
        let json = report.to_json();
        let arr = json.as_arr().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("pass"), Some(&Json::Bool(true)));
        assert_eq!(arr[1].get("pass"), Some(&Json::Bool(false)));
    }
}
