//! Metrics: counters, gauges, and log-linear histograms behind a sharded
//! registry.
//!
//! The registry is keyed by metric name and sharded across 16 mutexes
//! (hash of the name picks the shard) so concurrent instrumented code paths
//! rarely contend. Histograms are log-linear — 16 linear sub-buckets per
//! power of two — which bounds the relative quantile error at ≈6% while
//! keeping updates O(1) and allocation-free after the first observation.
//!
//! Two exporters are provided: a Prometheus-style text rendering
//! ([`Registry::prometheus_text`]) and a JSON tree ([`Registry::to_json`])
//! used by the `results/OBS_session.json` artifact.

use crate::json::Json;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

const SHARDS: usize = 16;

/// Number of linear sub-buckets per power of two.
const SUB_BUCKETS: usize = 16;
/// Smallest binary exponent tracked (values below land in bucket 0).
const MIN_EXP: i32 = -64;
/// Largest binary exponent tracked (values above land in the last bucket).
const MAX_EXP: i32 = 63;
const BUCKETS: usize = ((MAX_EXP - MIN_EXP + 1) as usize) * SUB_BUCKETS;

/// A log-linear histogram over non-negative `f64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u32>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { counts: Vec::new(), count: 0, sum: 0.0, min: f64::INFINITY, max: 0.0 }
    }

    fn bucket_index(value: f64) -> usize {
        if !(value > 0.0) || !value.is_finite() {
            return 0;
        }
        let exp = value.log2().floor() as i32;
        let exp = exp.clamp(MIN_EXP, MAX_EXP);
        let lower = (exp as f64).exp2();
        let frac = (value / lower - 1.0).clamp(0.0, 1.0 - f64::EPSILON);
        let sub = (frac * SUB_BUCKETS as f64) as usize;
        ((exp - MIN_EXP) as usize) * SUB_BUCKETS + sub.min(SUB_BUCKETS - 1)
    }

    /// The representative (midpoint) value of a bucket.
    fn bucket_value(index: usize) -> f64 {
        let exp = MIN_EXP + (index / SUB_BUCKETS) as i32;
        let sub = index % SUB_BUCKETS;
        let lower = (exp as f64).exp2();
        lower * (1.0 + (sub as f64 + 0.5) / SUB_BUCKETS as f64)
    }

    /// The inclusive lower edge of a bucket: values `v` with
    /// `lower_edge ≤ v < upper_edge` land in it (modulo the underflow and
    /// overflow clamps at the ends).
    fn bucket_lower_edge(index: usize) -> f64 {
        let exp = MIN_EXP + (index / SUB_BUCKETS) as i32;
        let sub = index % SUB_BUCKETS;
        (exp as f64).exp2() * (1.0 + sub as f64 / SUB_BUCKETS as f64)
    }

    /// The exclusive upper edge of a bucket (hence a valid Prometheus
    /// `le=` bound: every sample in the bucket is strictly below it).
    fn bucket_upper_edge(index: usize) -> f64 {
        let exp = MIN_EXP + (index / SUB_BUCKETS) as i32;
        let sub = index % SUB_BUCKETS;
        (exp as f64).exp2() * (1.0 + (sub as f64 + 1.0) / SUB_BUCKETS as f64)
    }

    /// The non-empty buckets in value order, with their edges, midpoint
    /// representatives, and counts. Feeds the Prometheus
    /// `_bucket{le="..."}` exposition and the bucket-resolution SLO
    /// evaluator.
    pub fn buckets(&self) -> Vec<Bucket> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| Bucket {
                lower: Self::bucket_lower_edge(i),
                upper: Self::bucket_upper_edge(i),
                midpoint: Self::bucket_value(i),
                count: *c as u64,
            })
            .collect()
    }

    /// Record one sample. Negative, zero, and non-finite samples all land
    /// in the underflow bucket but still count toward `count`/`sum`.
    pub fn observe(&mut self, value: f64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all finite samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all finite samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observed sample (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observed sample (`0.0` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate quantile `q ∈ [0, 1]`: the representative value of the
    /// first bucket whose cumulative count reaches `q · count`. Clamped to
    /// the exact observed min/max so the tails never over-shoot.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += *c as u64;
            if cumulative >= target {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One non-empty histogram bucket (see [`Histogram::buckets`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive lower edge.
    pub lower: f64,
    /// Exclusive upper edge.
    pub upper: f64,
    /// Midpoint representative (what [`Histogram::quantile`] answers in).
    pub midpoint: f64,
    /// Samples in the bucket.
    pub count: u64,
}

/// One metric slot in the registry.
#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// Point-in-time copy of one named metric.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// Monotonic event count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Full histogram copy.
    Histogram(Histogram),
}

/// Thread-safe, sharded metric registry.
///
/// Metric kind is fixed by first use: incrementing a name that currently
/// holds a gauge (or vice versa) silently re-types the slot — instrumented
/// code keeps naming disciplined via the `stage`/`span.` prefixes instead
/// of the registry policing it.
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Mutex<HashMap<String, Metric>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Add `delta` to the named counter (creating it at zero).
    pub fn inc_counter(&self, name: &str, delta: u64) {
        let mut shard = self.shard(name).lock().expect("metrics shard poisoned");
        match shard.get_mut(name) {
            Some(Metric::Counter(v)) => *v += delta,
            Some(slot) => *slot = Metric::Counter(delta),
            None => {
                shard.insert(name.to_string(), Metric::Counter(delta));
            }
        }
    }

    /// Set the named gauge.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut shard = self.shard(name).lock().expect("metrics shard poisoned");
        shard.insert(name.to_string(), Metric::Gauge(value));
    }

    /// Record a histogram sample under `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut shard = self.shard(name).lock().expect("metrics shard poisoned");
        match shard.get_mut(name) {
            Some(Metric::Histogram(h)) => h.observe(value),
            Some(slot) => {
                let mut h = Histogram::new();
                h.observe(value);
                *slot = Metric::Histogram(h);
            }
            None => {
                let mut h = Histogram::new();
                h.observe(value);
                shard.insert(name.to_string(), Metric::Histogram(h));
            }
        }
    }

    /// Copy out every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let mut out: Vec<(String, MetricSnapshot)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("metrics shard poisoned");
            for (name, metric) in shard.iter() {
                let snap = match metric {
                    Metric::Counter(v) => MetricSnapshot::Counter(*v),
                    Metric::Gauge(v) => MetricSnapshot::Gauge(*v),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.clone()),
                };
                out.push((name.clone(), snap));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Render every metric in Prometheus text exposition format.
    /// Histograms are true Prometheus histograms: cumulative
    /// `_bucket{le="..."}` series over the non-empty log-linear buckets
    /// (each `le` is the bucket's exclusive upper edge, so the cumulative
    /// counts are exact), a closing `le="+Inf"` bucket, then `_sum` and
    /// `_count`.
    ///
    /// Counter / gauge names may carry a Prometheus label suffix —
    /// `wavekey_failures_total{label="timeout_ota"}` — which is preserved
    /// verbatim: sanitization applies to the *family* (the part before
    /// `{`) only, and the `# TYPE` header is emitted once per family, not
    /// once per labeled series. A labeled histogram merges `le` into the
    /// existing label set.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (name, metric) in self.snapshot() {
            let (family, labels) = match name.find('{') {
                Some(split) => (sanitize(&name[..split]), &name[split..]),
                None => (sanitize(&name), ""),
            };
            match metric {
                MetricSnapshot::Counter(v) => {
                    if typed.insert(family.clone()) {
                        let _ = writeln!(out, "# TYPE {family} counter");
                    }
                    let _ = writeln!(out, "{family}{labels} {v}");
                }
                MetricSnapshot::Gauge(v) => {
                    if typed.insert(family.clone()) {
                        let _ = writeln!(out, "# TYPE {family} gauge");
                    }
                    let _ = writeln!(out, "{family}{labels} {v}");
                }
                MetricSnapshot::Histogram(h) => {
                    if typed.insert(family.clone()) {
                        let _ = writeln!(out, "# TYPE {family} histogram");
                    }
                    // Merge `le` into any pre-existing label suffix.
                    let bucket_labels = |le: &str| match labels.strip_suffix('}') {
                        Some(prefix) if !labels.is_empty() => {
                            format!("{prefix},le=\"{le}\"}}")
                        }
                        _ => format!("{{le=\"{le}\"}}"),
                    };
                    let mut cumulative = 0u64;
                    for bucket in h.buckets() {
                        cumulative += bucket.count;
                        let _ = writeln!(
                            out,
                            "{family}_bucket{} {cumulative}",
                            bucket_labels(&format!("{}", bucket.upper))
                        );
                    }
                    let _ =
                        writeln!(out, "{family}_bucket{} {}", bucket_labels("+Inf"), h.count());
                    let _ = writeln!(out, "{family}_sum{labels} {}", h.sum());
                    let _ = writeln!(out, "{family}_count{labels} {}", h.count());
                }
            }
        }
        out
    }

    /// Export every metric as a JSON object keyed by metric name.
    pub fn to_json(&self) -> Json {
        let mut pairs = Vec::new();
        for (name, metric) in self.snapshot() {
            let value = match metric {
                MetricSnapshot::Counter(v) => Json::obj(vec![
                    ("type", Json::Str("counter".into())),
                    ("value", Json::Num(v as f64)),
                ]),
                MetricSnapshot::Gauge(v) => Json::obj(vec![
                    ("type", Json::Str("gauge".into())),
                    ("value", Json::Num(v)),
                ]),
                MetricSnapshot::Histogram(h) => Json::obj(vec![
                    ("type", Json::Str("histogram".into())),
                    ("count", Json::Num(h.count() as f64)),
                    ("mean", Json::Num(h.mean())),
                    ("p50", Json::Num(h.quantile(0.50))),
                    ("p90", Json::Num(h.quantile(0.90))),
                    ("p99", Json::Num(h.quantile(0.99))),
                    ("min", Json::Num(h.min())),
                    ("max", Json::Num(h.max())),
                ]),
            };
            pairs.push((name, value));
        }
        Json::Obj(pairs)
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map everything else to `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_track_known_uniform_distribution() {
        // 1..=10_000 uniformly: p50 ≈ 5000, p90 ≈ 9000, p99 ≈ 9900. The
        // log-linear layout guarantees ≤ 1/16 relative bucket error.
        let mut h = Histogram::new();
        for v in 1..=10_000 {
            h.observe(v as f64);
        }
        for (q, expected) in [(0.50, 5000.0), (0.90, 9000.0), (0.99, 9900.0)] {
            let got = h.quantile(q);
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.08, "q{q}: got {got}, expected ≈{expected} (rel {rel:.3})");
        }
        assert_eq!(h.count(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1e-6);
        // Tail quantiles use midpoint representatives clamped to the
        // exact observed min/max, so they stay within one sub-bucket.
        assert!((1.0..1.07).contains(&h.quantile(0.0)));
        assert!((9300.0..=10_000.0).contains(&h.quantile(1.0)));
    }

    #[test]
    fn histogram_handles_sub_second_timings_and_degenerate_input() {
        let mut h = Histogram::new();
        for i in 0..1000 {
            h.observe(1e-6 * (1.0 + i as f64 / 1000.0)); // 1–2 µs spread
        }
        let p50 = h.quantile(0.5);
        assert!((1.4e-6..1.6e-6).contains(&p50), "p50 = {p50}");

        let mut empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), 0.0);
        empty.observe(0.0);
        empty.observe(-3.0);
        assert_eq!(empty.count(), 2);
        // Non-positive samples share the underflow bucket; the clamp to
        // [min, max] caps the representative at the observed max (0.0).
        assert_eq!(empty.quantile(0.5), 0.0);
        assert_eq!(empty.min(), -3.0);
    }

    #[test]
    fn histogram_merge_matches_combined_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for i in 0..500 {
            let v = (i as f64 * 7.3) % 100.0 + 0.5;
            if i % 2 == 0 { a.observe(v) } else { b.observe(v) }
            all.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.quantile(0.5), all.quantile(0.5));
        assert_eq!(a.quantile(0.99), all.quantile(0.99));
    }

    #[test]
    fn registry_counters_exact_under_concurrency() {
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        reg.inc_counter("sessions_total", 1);
                        reg.observe("span.seconds", (t * 1000 + i) as f64 * 1e-6);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("thread");
        }
        let snap = reg.snapshot();
        let counter = snap.iter().find(|(n, _)| n == "sessions_total").expect("counter");
        match &counter.1 {
            MetricSnapshot::Counter(v) => assert_eq!(*v, 8000),
            other => panic!("wrong kind: {other:?}"),
        }
        let hist = snap.iter().find(|(n, _)| n == "span.seconds").expect("hist");
        match &hist.1 {
            MetricSnapshot::Histogram(h) => assert_eq!(h.count(), 8000),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = Registry::new();
        reg.inc_counter("enroll_total", 3);
        reg.set_gauge("deadline_budget_seconds", 2.12);
        reg.observe("stage.ot_round_a", 0.05);
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE enroll_total counter"));
        assert!(text.contains("enroll_total 3"));
        assert!(text.contains("# TYPE deadline_budget_seconds gauge"));
        assert!(text.contains("# TYPE stage_ot_round_a histogram"));
        assert!(text.contains("stage_ot_round_a_count 1"));
        assert!(text.contains("stage_ot_round_a_bucket{le=\"+Inf\"} 1"));
        // 0.05 lands in [0.048828125, 0.05078125): exponent −5, sub-bucket 9.
        assert!(text.contains("stage_ot_round_a_bucket{le=\"0.05078125\"} 1"), "{text}");
        assert!(text.contains("stage_ot_round_a_sum 0.05"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_label_aware() {
        let reg = Registry::new();
        for v in [0.5, 0.5, 3.0] {
            reg.observe("lat{tenant=\"a\"}", v);
        }
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE lat histogram"));
        // 0.5 is an exact lower edge (2^-1, sub 0): upper edge 0.53125.
        assert!(text.contains("lat_bucket{tenant=\"a\",le=\"0.53125\"} 2"), "{text}");
        // 3.0 is the lower edge of (2^1, sub 8): upper edge 3.125; the
        // cumulative count includes the two earlier samples.
        assert!(text.contains("lat_bucket{tenant=\"a\",le=\"3.125\"} 3"), "{text}");
        assert!(text.contains("lat_bucket{tenant=\"a\",le=\"+Inf\"} 3"));
        assert!(text.contains("lat_sum{tenant=\"a\"} 4"));
        assert!(text.contains("lat_count{tenant=\"a\"} 3"));
        assert_eq!(text.matches("# TYPE lat histogram").count(), 1);
    }

    #[test]
    fn bucket_boundaries_pin_power_of_two_edges() {
        // Every power of two is the inclusive lower edge of its
        // exponent's sub-bucket 0, and a value just below it lands in the
        // previous exponent's top sub-bucket.
        for exp in -16i32..=16 {
            let v = (exp as f64).exp2();
            let idx = Histogram::bucket_index(v);
            assert_eq!(idx, ((exp - MIN_EXP) as usize) * SUB_BUCKETS, "2^{exp}");
            assert_eq!(Histogram::bucket_lower_edge(idx), v, "2^{exp} lower edge");
            assert_eq!(
                Histogram::bucket_upper_edge(idx),
                v * (1.0 + 1.0 / SUB_BUCKETS as f64),
                "2^{exp} upper edge"
            );
            let below = v * (1.0 - 1e-12);
            assert_eq!(
                Histogram::bucket_index(below),
                ((exp - 1 - MIN_EXP) as usize) * SUB_BUCKETS + (SUB_BUCKETS - 1),
                "just below 2^{exp}"
            );
        }
    }

    #[test]
    fn bucket_edges_bracket_every_sample() {
        // Seeded LCG sweep: every sample must satisfy
        // lower ≤ v < upper for its own bucket, and the bucket list must
        // partition the sample set exactly.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut h = Histogram::new();
        let mut samples = Vec::new();
        for _ in 0..4096 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Spread over ~12 powers of two around seconds-scale timings.
            let v = 1e-4 * (1.0 + (state >> 40) as f64 / 1e3);
            let idx = Histogram::bucket_index(v);
            assert!(
                Histogram::bucket_lower_edge(idx) <= v && v < Histogram::bucket_upper_edge(idx),
                "{v} not inside bucket {idx}"
            );
            h.observe(v);
            samples.push(v);
        }
        let buckets = h.buckets();
        assert_eq!(buckets.iter().map(|b| b.count).sum::<u64>(), 4096);
        for b in &buckets {
            let exact = samples.iter().filter(|v| b.lower <= **v && **v < b.upper).count();
            assert_eq!(exact as u64, b.count, "bucket [{}, {})", b.lower, b.upper);
            assert!(b.lower < b.midpoint && b.midpoint < b.upper);
        }
        // Ascending, non-overlapping.
        for pair in buckets.windows(2) {
            assert!(pair[0].upper <= pair[1].lower + 1e-18);
        }
    }

    #[test]
    fn prometheus_text_preserves_label_suffixes() {
        let reg = Registry::new();
        reg.inc_counter("wavekey_failures_total{label=\"timeout_ota\"}", 2);
        reg.inc_counter("wavekey_failures_total{label=\"worker_panic\"}", 1);
        reg.inc_counter("wavekey_failures_total{label=\"timeout_ota\"}", 1);
        let text = reg.prometheus_text();
        // The labels survive untouched (no `_`-mangling of `{`, `"`, `=`)
        // and the family gets exactly one TYPE header.
        assert!(text.contains("wavekey_failures_total{label=\"timeout_ota\"} 3"));
        assert!(text.contains("wavekey_failures_total{label=\"worker_panic\"} 1"));
        assert_eq!(text.matches("# TYPE wavekey_failures_total counter").count(), 1);
        assert!(!text.contains("wavekey_failures_total_label"));
    }

    #[test]
    fn eviction_reason_series_export_as_one_labeled_family() {
        // The gateway's eviction counters: one family, one labeled series
        // per reason, exported coherently by both exporters.
        let reg = Registry::new();
        for (reason, n) in [("idle", 3u64), ("backpressure", 2), ("shutdown", 1)] {
            for _ in 0..n {
                reg.inc_counter(&format!("wavekey_evictions_total{{reason=\"{reason}\"}}"), 1);
            }
        }
        let text = reg.prometheus_text();
        assert_eq!(text.matches("# TYPE wavekey_evictions_total counter").count(), 1);
        assert!(text.contains("wavekey_evictions_total{reason=\"idle\"} 3"), "{text}");
        assert!(text.contains("wavekey_evictions_total{reason=\"backpressure\"} 2"));
        assert!(text.contains("wavekey_evictions_total{reason=\"shutdown\"} 1"));
        // Snapshot order is sorted by full name, so scrapes are stable
        // run-to-run (the timeline-determinism artifacts depend on this).
        let series: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("wavekey_evictions_total{"))
            .collect();
        assert_eq!(
            series,
            vec![
                "wavekey_evictions_total{reason=\"backpressure\"} 2",
                "wavekey_evictions_total{reason=\"idle\"} 3",
                "wavekey_evictions_total{reason=\"shutdown\"} 1",
            ]
        );
        // The JSON exporter keys by the full labeled name with exact counts.
        let json = reg.to_json();
        let idle = json
            .get("wavekey_evictions_total{reason=\"idle\"}")
            .and_then(|m| m.get("value"))
            .and_then(Json::as_f64);
        assert_eq!(idle, Some(3.0));
    }
}
