//! Pluggable sinks for spans, events, and session traces.
//!
//! A [`Collector`] receives every record an enabled [`crate::Obs`] handle
//! produces. Three sinks ship with the crate: [`NullCollector`] (reports
//! itself inert, so the handle collapses to the zero-overhead disabled
//! path), [`MemoryCollector`] (in-process buffers for tests and report
//! bins), and [`JsonLinesCollector`] (one JSON object per record, for
//! post-hoc analysis). [`MultiCollector`] fans records out to several
//! sinks at once.

use crate::event::CausalEvent;
use crate::json::Json;
use crate::span::{EventRecord, SpanRecord};
use crate::trace::SessionTrace;
use std::io::{self, BufWriter, Write};
use std::sync::Mutex;

/// A sink for observability records. All methods must be thread-safe; the
/// handle may be cloned across threads.
pub trait Collector: Send + Sync {
    /// Whether attaching this collector should enable instrumentation at
    /// all. Defaults to `true`; [`NullCollector`] overrides to `false`.
    fn is_enabled(&self) -> bool {
        true
    }
    /// A span finished.
    fn record_span(&self, _span: &SpanRecord) {}
    /// A point event fired.
    fn record_event(&self, _event: &EventRecord) {}
    /// A session completed (successfully or not).
    fn record_session(&self, _trace: &SessionTrace) {}
    /// A causal event was emitted (see [`crate::event`]). Defaults to a
    /// no-op so pre-existing collectors keep compiling unchanged.
    fn record_causal(&self, _event: &CausalEvent) {}
}

/// The zero-overhead default: discards everything, and tells the handle to
/// disable instrumentation entirely (no clock reads, no locks).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn is_enabled(&self) -> bool {
        false
    }
}

/// In-memory sink: keeps every record, in arrival order.
#[derive(Debug, Default)]
pub struct MemoryCollector {
    spans: Mutex<Vec<(String, f64)>>,
    events: Mutex<Vec<(String, f64)>>,
    sessions: Mutex<Vec<SessionTrace>>,
    causal: Mutex<Vec<CausalEvent>>,
}

impl MemoryCollector {
    /// An empty collector.
    pub fn new() -> MemoryCollector {
        MemoryCollector::default()
    }

    /// All recorded spans as `(name, seconds)`.
    pub fn spans(&self) -> Vec<(String, f64)> {
        self.spans.lock().expect("spans poisoned").clone()
    }

    /// All recorded events as `(name, value)`.
    pub fn events(&self) -> Vec<(String, f64)> {
        self.events.lock().expect("events poisoned").clone()
    }

    /// All recorded session traces.
    pub fn sessions(&self) -> Vec<SessionTrace> {
        self.sessions.lock().expect("sessions poisoned").clone()
    }

    /// All recorded causal events (unbounded; tests and report bins only —
    /// long-running processes should sink into [`crate::EventLog`]).
    pub fn causal_events(&self) -> Vec<CausalEvent> {
        self.causal.lock().expect("causal poisoned").clone()
    }
}

impl Collector for MemoryCollector {
    fn record_span(&self, span: &SpanRecord) {
        self.spans.lock().expect("spans poisoned").push((span.name.to_string(), span.seconds));
    }
    fn record_event(&self, event: &EventRecord) {
        self.events
            .lock()
            .expect("events poisoned")
            .push((event.name.to_string(), event.value));
    }
    fn record_session(&self, trace: &SessionTrace) {
        self.sessions.lock().expect("sessions poisoned").push(trace.clone());
    }
    fn record_causal(&self, event: &CausalEvent) {
        self.causal.lock().expect("causal poisoned").push(event.clone());
    }
}

/// One observability record parsed back from a JSON line.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsRecord {
    /// A span: name and seconds.
    Span(String, f64),
    /// An event: name and value.
    Event(String, f64),
    /// A full session trace.
    Session(SessionTrace),
    /// A causal timeline event.
    Causal(CausalEvent),
}

/// JSON-lines sink: one compact JSON object per record. Write errors are
/// swallowed (telemetry must never take down the pipeline it observes).
pub struct JsonLinesCollector {
    out: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonLinesCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonLinesCollector").finish_non_exhaustive()
    }
}

impl JsonLinesCollector {
    /// Wrap any writer (kept behind a mutex; one line per record).
    pub fn new<W: Write + Send + 'static>(writer: W) -> JsonLinesCollector {
        JsonLinesCollector { out: Mutex::new(Box::new(writer)) }
    }

    /// Create (truncate) a file at `path`, buffered.
    pub fn create(path: &std::path::Path) -> io::Result<JsonLinesCollector> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(JsonLinesCollector::new(BufWriter::new(std::fs::File::create(path)?)))
    }

    fn write_line(&self, json: &Json) {
        let mut out = self.out.lock().expect("jsonl writer poisoned");
        let _ = writeln!(out, "{}", json.to_string_compact());
    }

    /// Flush the underlying writer.
    pub fn flush(&self) {
        let _ = self.out.lock().expect("jsonl writer poisoned").flush();
    }

    /// Parse one line previously produced by this collector.
    pub fn parse_line(line: &str) -> Option<ObsRecord> {
        let json = Json::parse(line.trim())?;
        match json.get("type")?.as_str()? {
            "span" => Some(ObsRecord::Span(
                json.get("name")?.as_str()?.to_string(),
                json.get("seconds")?.as_f64()?,
            )),
            "event" => Some(ObsRecord::Event(
                json.get("name")?.as_str()?.to_string(),
                json.get("value")?.as_f64()?,
            )),
            "session" => Some(ObsRecord::Session(SessionTrace::from_json(
                json.get("trace")?,
            )?)),
            "causal" => Some(ObsRecord::Causal(CausalEvent::from_json(&json)?)),
            _ => None,
        }
    }
}

impl Drop for JsonLinesCollector {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl Collector for JsonLinesCollector {
    fn record_span(&self, span: &SpanRecord) {
        self.write_line(&Json::obj(vec![
            ("type", Json::Str("span".into())),
            ("name", Json::Str(span.name.into())),
            ("seconds", Json::Num(span.seconds)),
        ]));
    }
    fn record_event(&self, event: &EventRecord) {
        self.write_line(&Json::obj(vec![
            ("type", Json::Str("event".into())),
            ("name", Json::Str(event.name.into())),
            ("value", Json::Num(event.value)),
        ]));
    }
    fn record_session(&self, trace: &SessionTrace) {
        self.write_line(&Json::obj(vec![
            ("type", Json::Str("session".into())),
            ("trace", trace.to_json()),
        ]));
    }
    fn record_causal(&self, event: &CausalEvent) {
        self.write_line(&event.to_json());
    }
}

/// Fans every record out to several collectors (e.g. a flight recorder
/// plus a JSON-lines file).
#[derive(Default)]
pub struct MultiCollector {
    sinks: Vec<std::sync::Arc<dyn Collector>>,
}

impl std::fmt::Debug for MultiCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiCollector").field("sinks", &self.sinks.len()).finish()
    }
}

impl MultiCollector {
    /// Fan out to `sinks` (inert sinks are dropped).
    pub fn new(sinks: Vec<std::sync::Arc<dyn Collector>>) -> MultiCollector {
        MultiCollector { sinks: sinks.into_iter().filter(|s| s.is_enabled()).collect() }
    }
}

impl Collector for MultiCollector {
    fn is_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }
    fn record_span(&self, span: &SpanRecord) {
        for s in &self.sinks {
            s.record_span(span);
        }
    }
    fn record_event(&self, event: &EventRecord) {
        for s in &self.sinks {
            s.record_event(event);
        }
    }
    fn record_session(&self, trace: &SessionTrace) {
        for s in &self.sinks {
            s.record_session(trace);
        }
    }
    fn record_causal(&self, event: &CausalEvent) {
        for s in &self.sinks {
            s.record_causal(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::stage;
    use std::sync::Arc;

    /// Shared Vec<u8> writer so the test can read back what was written.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().expect("buf").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_round_trips_all_record_kinds() {
        let buf = SharedBuf::default();
        let collector = JsonLinesCollector::new(buf.clone());
        collector.record_span(&SpanRecord { name: "ot_round_a", seconds: 0.043 });
        collector.record_event(&EventRecord { name: "seed_mismatch_bits", value: 4.0 });
        let mut trace = SessionTrace::new(11);
        trace.outcome = "success".into();
        trace.seed_len = 48;
        trace.seed_mismatch_bits = Some(4);
        trace.record_stage(stage::ECC_RECONCILE, 0.0011);
        collector.record_session(&trace);
        let causal = crate::event::CausalEvent {
            session_id: 11,
            seq: 2,
            actor: "manager",
            kind: "retransmit",
            state: None,
            frame: Some("ot_b".into()),
            n: Some(1),
        };
        collector.record_causal(&causal);
        collector.flush();

        let text = String::from_utf8(buf.0.lock().expect("buf").clone()).expect("utf8");
        let records: Vec<ObsRecord> = text
            .lines()
            .map(|l| JsonLinesCollector::parse_line(l).expect("parse line"))
            .collect();
        assert_eq!(
            records,
            vec![
                ObsRecord::Span("ot_round_a".into(), 0.043),
                ObsRecord::Event("seed_mismatch_bits".into(), 4.0),
                ObsRecord::Session(trace),
                ObsRecord::Causal(causal),
            ]
        );
    }

    #[test]
    fn multi_collector_fans_out_and_drops_inert_sinks() {
        let a = Arc::new(MemoryCollector::new());
        let b = Arc::new(MemoryCollector::new());
        let multi = MultiCollector::new(vec![
            a.clone(),
            Arc::new(NullCollector),
            b.clone(),
        ]);
        assert!(multi.is_enabled());
        multi.record_span(&SpanRecord { name: "x", seconds: 1.0 });
        assert_eq!(a.spans().len(), 1);
        assert_eq!(b.spans().len(), 1);

        let empty = MultiCollector::new(vec![Arc::new(NullCollector)]);
        assert!(!empty.is_enabled());
    }
}
