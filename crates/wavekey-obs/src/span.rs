//! The [`Obs`] handle: the single object instrumented code touches.
//!
//! `Obs` is a cheaply clonable handle that is either *disabled* (the
//! default — a `None` inside, so every instrumentation call is a branch on
//! a niche-optimized pointer and nothing else: no clock read, no
//! allocation, no lock) or *enabled*, in which case spans, events, and
//! session traces flow to the attached [`Collector`] and into the
//! process-wide sharded metrics [`Registry`].
//!
//! Span timings use [`std::time::Instant`], the monotonic clock.

use crate::collector::Collector;
use crate::metrics::Registry;
use crate::trace::SessionTrace;
use std::sync::Arc;
use std::time::Instant;

/// A completed span: a named duration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (static so the disabled path never allocates).
    pub name: &'static str,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
}

/// A point event carrying one value (count, size, ratio, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name.
    pub name: &'static str,
    /// Associated value.
    pub value: f64,
}

struct Inner {
    collector: Arc<dyn Collector>,
    registry: Registry,
}

/// Observability handle passed into instrumented code.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("enabled", &self.is_enabled()).finish()
    }
}

impl Obs {
    /// The zero-overhead disabled handle (also what `Default` gives).
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle feeding `collector` and a fresh registry.
    ///
    /// If the collector reports itself inert ([`Collector::is_enabled`] is
    /// `false`, as [`crate::NullCollector`]'s does), this returns the
    /// disabled handle, so "attach a `NullCollector`" is exactly as cheap
    /// as not attaching anything.
    pub fn new(collector: Arc<dyn Collector>) -> Obs {
        if !collector.is_enabled() {
            return Obs::disabled();
        }
        Obs { inner: Some(Arc::new(Inner { collector, registry: Registry::new() })) }
    }

    /// Convenience: an enabled handle with a [`crate::MemoryCollector`],
    /// returning both.
    pub fn with_memory() -> (Obs, Arc<crate::MemoryCollector>) {
        let collector = Arc::new(crate::MemoryCollector::new());
        (Obs::new(collector.clone()), collector)
    }

    /// Whether instrumentation is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open an RAII span; the duration is recorded when the guard drops.
    /// On a disabled handle this does not even read the clock.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard { live: self.inner.as_deref().map(|inner| (inner, name, Instant::now())) }
    }

    /// Record an already-measured duration as a span (used where code
    /// already times a stage for protocol-logic reasons, e.g. the
    /// agreement's logical clocks — avoids double clock reads).
    pub fn record_duration(&self, name: &'static str, seconds: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.collector.record_span(&SpanRecord { name, seconds });
            inner.registry.observe(&format!("span.{name}"), seconds);
        }
    }

    /// Record a point event with a value; also feeds a histogram of the
    /// same name.
    pub fn event(&self, name: &'static str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.collector.record_event(&EventRecord { name, value });
            inner.registry.observe(name, value);
        }
    }

    /// Increment a counter by 1.
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment a counter by `delta`.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.registry.inc_counter(name, delta);
        }
    }

    /// Set a gauge.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.registry.set_gauge(name, value);
        }
    }

    /// Record a histogram sample without an associated collector event.
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.registry.observe(name, value);
        }
    }

    /// Record a finished session trace: forwards to the collector and
    /// derives the standard metrics (`sessions_total`/`sessions_success`
    /// counters, `stage.*` timing histograms, `seed_mismatch_ratio`).
    pub fn session(&self, trace: &SessionTrace) {
        if let Some(inner) = self.inner.as_deref() {
            inner.collector.record_session(trace);
            inner.registry.inc_counter("sessions_total", 1);
            if trace.is_success() {
                inner.registry.inc_counter("sessions_success", 1);
            }
            for s in &trace.stages {
                inner.registry.observe(&format!("stage.{}", s.name), s.seconds);
            }
            if let Some(ratio) = trace.seed_mismatch_ratio() {
                inner.registry.observe("seed_mismatch_ratio", ratio);
            }
            if let Some(consumed) = trace.deadline_consumed_s {
                inner.registry.observe("deadline_consumed_seconds", consumed);
            }
        }
    }

    /// Run `f` against the registry, if enabled (snapshotting, exporting).
    pub fn with_registry<T>(&self, f: impl FnOnce(&Registry) -> T) -> Option<T> {
        self.inner.as_deref().map(|inner| f(&inner.registry))
    }

    /// Prometheus text exposition of the registry (empty when disabled).
    pub fn prometheus_text(&self) -> String {
        self.with_registry(Registry::prometheus_text).unwrap_or_default()
    }
}

/// RAII guard returned by [`Obs::span`]; records the span on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    live: Option<(&'a Inner, &'static str, Instant)>,
}

impl SpanGuard<'_> {
    /// End the span now, returning the measured seconds (0.0 if disabled).
    pub fn finish(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        if let Some((inner, name, start)) = self.live.take() {
            let seconds = start.elapsed().as_secs_f64();
            inner.collector.record_span(&SpanRecord { name, seconds });
            inner.registry.observe(&format!("span.{name}"), seconds);
            seconds
        } else {
            0.0
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::NullCollector;

    #[test]
    fn disabled_handle_is_inert_everywhere() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        {
            let _g = obs.span("x");
        }
        obs.record_duration("x", 1.0);
        obs.event("e", 2.0);
        obs.inc("c");
        obs.gauge("g", 3.0);
        obs.session(&SessionTrace::new(1));
        assert_eq!(obs.prometheus_text(), "");
        assert!(obs.with_registry(|_| ()).is_none());
    }

    #[test]
    fn null_collector_collapses_to_disabled() {
        let obs = Obs::new(Arc::new(NullCollector));
        assert!(!obs.is_enabled());
    }

    #[test]
    fn spans_and_metrics_flow_when_enabled() {
        let (obs, mem) = Obs::with_memory();
        assert!(obs.is_enabled());
        {
            let _g = obs.span("ot_round_a");
        }
        let secs = obs.span("explicit").finish();
        assert!(secs >= 0.0);
        obs.record_duration("premeasured", 0.25);
        obs.event("seed_mismatch_bits", 3.0);
        obs.inc("enroll_total");

        let spans = mem.spans();
        let names: Vec<_> = spans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["ot_round_a", "explicit", "premeasured"]);
        assert_eq!(spans[2].1, 0.25);
        assert_eq!(mem.events(), vec![("seed_mismatch_bits".to_string(), 3.0)]);

        let text = obs.prometheus_text();
        assert!(text.contains("span_premeasured_count 1"));
        assert!(text.contains("enroll_total 1"));
    }

    #[test]
    fn session_updates_derived_metrics() {
        let (obs, mem) = Obs::with_memory();
        let mut t = SessionTrace::new(5);
        t.outcome = "success".into();
        t.seed_len = 48;
        t.seed_mismatch_bits = Some(6);
        t.record_stage(crate::trace::stage::OT_ROUND_A, 0.04);
        obs.session(&t);
        assert_eq!(mem.sessions().len(), 1);
        let text = obs.prometheus_text();
        assert!(text.contains("sessions_total 1"));
        assert!(text.contains("sessions_success 1"));
        assert!(text.contains("stage_ot_round_a_count 1"));
        assert!(text.contains("seed_mismatch_ratio_count 1"));
    }

    #[test]
    fn concurrent_spans_lose_nothing() {
        let (obs, mem) = Obs::with_memory();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let obs = obs.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let _g = obs.span("hot");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("thread");
        }
        assert_eq!(mem.spans().len(), 4000);
        let count = obs
            .with_registry(|r| {
                r.snapshot()
                    .into_iter()
                    .find(|(n, _)| n == "span.hot")
                    .map(|(_, m)| match m {
                        crate::metrics::MetricSnapshot::Histogram(h) => h.count(),
                        _ => 0,
                    })
                    .unwrap_or(0)
            })
            .expect("registry");
        assert_eq!(count, 4000);
    }
}
