//! The [`Obs`] handle: the single object instrumented code touches.
//!
//! `Obs` is a cheaply clonable handle that is either *disabled* (the
//! default — a `None` inside, so every instrumentation call is a branch on
//! a niche-optimized pointer and nothing else: no clock read, no
//! allocation, no lock) or *enabled*, in which case spans, events, and
//! session traces flow to the attached [`Collector`] and into the
//! process-wide sharded metrics [`Registry`].
//!
//! Span timings use [`std::time::Instant`], the monotonic clock.

use crate::collector::Collector;
use crate::event::CausalEvent;
use crate::metrics::Registry;
use crate::profile::{PathStat, ProfileStore};
use crate::trace::SessionTrace;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

thread_local! {
    /// The spans currently open on this thread, outermost first. Touched
    /// only on the *enabled* path — a disabled handle never reaches it, so
    /// the disabled span cost stays one pointer test.
    static SPAN_STACK: RefCell<Vec<&'static str>> = RefCell::new(Vec::new());
}

/// A completed span: a named duration.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (static so the disabled path never allocates).
    pub name: &'static str,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
}

/// A point event carrying one value (count, size, ratio, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name.
    pub name: &'static str,
    /// Associated value.
    pub value: f64,
}

struct Inner {
    collector: Arc<dyn Collector>,
    registry: Registry,
    profile: ProfileStore,
}

impl Inner {
    /// Record a span's time both flat (collector + `span.{name}`
    /// histogram, as always) and hierarchically under `path` (the
    /// `;`-joined ancestry) in the profile store.
    fn record_span_at(&self, name: &'static str, path: &str, seconds: f64) {
        self.collector.record_span(&SpanRecord { name, seconds });
        self.registry.observe(&format!("span.{name}"), seconds);
        self.profile.record(path, seconds);
    }
}

/// The current thread's span path with `name` appended (`;`-joined).
fn path_with(name: &str) -> String {
    SPAN_STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            name.to_string()
        } else {
            let mut path = stack.join(";");
            path.push(';');
            path.push_str(name);
            path
        }
    })
}

/// Observability handle passed into instrumented code.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("enabled", &self.is_enabled()).finish()
    }
}

impl Obs {
    /// The zero-overhead disabled handle (also what `Default` gives).
    pub fn disabled() -> Obs {
        Obs { inner: None }
    }

    /// An enabled handle feeding `collector` and a fresh registry.
    ///
    /// If the collector reports itself inert ([`Collector::is_enabled`] is
    /// `false`, as [`crate::NullCollector`]'s does), this returns the
    /// disabled handle, so "attach a `NullCollector`" is exactly as cheap
    /// as not attaching anything.
    pub fn new(collector: Arc<dyn Collector>) -> Obs {
        if !collector.is_enabled() {
            return Obs::disabled();
        }
        Obs {
            inner: Some(Arc::new(Inner {
                collector,
                registry: Registry::new(),
                profile: ProfileStore::new(),
            })),
        }
    }

    /// Convenience: an enabled handle with a [`crate::MemoryCollector`],
    /// returning both.
    pub fn with_memory() -> (Obs, Arc<crate::MemoryCollector>) {
        let collector = Arc::new(crate::MemoryCollector::new());
        (Obs::new(collector.clone()), collector)
    }

    /// Whether instrumentation is live.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open an RAII span; the duration is recorded when the guard drops.
    /// On a disabled handle this does not even read the clock. When
    /// enabled, the span also joins the thread's open-span stack, so its
    /// closing time is attributed hierarchically in the profile call tree
    /// (see [`crate::profile`]).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            live: self.inner.as_deref().map(|inner| {
                let depth = SPAN_STACK.with(|stack| {
                    let mut stack = stack.borrow_mut();
                    stack.push(name);
                    stack.len() - 1
                });
                (inner, name, Instant::now(), depth)
            }),
        }
    }

    /// Record an already-measured duration as a span (used where code
    /// already times a stage for protocol-logic reasons, e.g. the
    /// agreement's logical clocks — avoids double clock reads). Attributes
    /// as a leaf under the spans currently open on this thread.
    pub fn record_duration(&self, name: &'static str, seconds: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.record_span_at(name, &path_with(name), seconds);
        }
    }

    /// Record a point event with a value; also feeds a histogram of the
    /// same name.
    pub fn event(&self, name: &'static str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.collector.record_event(&EventRecord { name, value });
            inner.registry.observe(name, value);
        }
    }

    /// Increment a counter by 1.
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment a counter by `delta`.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.registry.inc_counter(name, delta);
        }
    }

    /// Set a gauge.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.registry.set_gauge(name, value);
        }
    }

    /// Record a histogram sample without an associated collector event.
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.registry.observe(name, value);
        }
    }

    /// Record a finished session trace: forwards to the collector and
    /// derives the standard metrics (`sessions_total`/`sessions_success`
    /// counters, `stage.*` timing histograms, `seed_mismatch_ratio`).
    pub fn session(&self, trace: &SessionTrace) {
        if let Some(inner) = self.inner.as_deref() {
            inner.collector.record_session(trace);
            inner.registry.inc_counter("sessions_total", 1);
            if trace.is_success() {
                inner.registry.inc_counter("sessions_success", 1);
            }
            for s in &trace.stages {
                inner.registry.observe(&format!("stage.{}", s.name), s.seconds);
            }
            if let Some(ratio) = trace.seed_mismatch_ratio() {
                inner.registry.observe("seed_mismatch_ratio", ratio);
            }
            if let Some(consumed) = trace.deadline_consumed_s {
                inner.registry.observe("deadline_consumed_seconds", consumed);
            }
        }
    }

    /// Forward a causal event to the collector (see [`crate::event`]).
    /// Instrumented code normally goes through an
    /// [`crate::event::EventScope`], which stamps the causal identity and
    /// calls this.
    pub fn causal(&self, event: &CausalEvent) {
        if let Some(inner) = self.inner.as_deref() {
            inner.collector.record_causal(event);
        }
    }

    /// Snapshot of the hierarchical span profile: `(path, stat)` sorted by
    /// path (empty when disabled or nothing has been recorded).
    pub fn profile_snapshot(&self) -> Vec<(String, PathStat)> {
        self.inner.as_deref().map(|inner| inner.profile.snapshot()).unwrap_or_default()
    }

    /// The profile as flamegraph collapsed-stack text (empty when
    /// disabled).
    pub fn profile_collapsed(&self) -> String {
        crate::profile::collapsed(&self.profile_snapshot())
    }

    /// The profile as a JSON call tree (`Json::Null` when disabled).
    pub fn profile_json(&self) -> crate::json::Json {
        if self.inner.is_none() {
            return crate::json::Json::Null;
        }
        crate::profile::report_json(&self.profile_snapshot())
    }

    /// Run `f` against the registry, if enabled (snapshotting, exporting).
    pub fn with_registry<T>(&self, f: impl FnOnce(&Registry) -> T) -> Option<T> {
        self.inner.as_deref().map(|inner| f(&inner.registry))
    }

    /// Prometheus text exposition of the registry (empty when disabled).
    pub fn prometheus_text(&self) -> String {
        self.with_registry(Registry::prometheus_text).unwrap_or_default()
    }
}

/// RAII guard returned by [`Obs::span`]; records the span on drop.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard<'a> {
    live: Option<(&'a Inner, &'static str, Instant, usize)>,
}

impl SpanGuard<'_> {
    /// End the span now, returning the measured seconds (0.0 if disabled).
    pub fn finish(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        if let Some((inner, name, start, depth)) = self.live.take() {
            let seconds = start.elapsed().as_secs_f64();
            // Pop this span off the thread's stack and take the ancestry
            // as the profile path. RAII guards nest LIFO; if a guard was
            // held across manual stack surgery (another thread's guard
            // moved here, say) fall back to attributing at the root.
            let path = SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                if stack.get(depth).copied() == Some(name) {
                    let path = stack[..=depth].join(";");
                    stack.truncate(depth);
                    path
                } else {
                    name.to_string()
                }
            });
            inner.record_span_at(name, &path, seconds);
            seconds
        } else {
            0.0
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::NullCollector;

    #[test]
    fn disabled_handle_is_inert_everywhere() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        {
            let _g = obs.span("x");
        }
        obs.record_duration("x", 1.0);
        obs.event("e", 2.0);
        obs.inc("c");
        obs.gauge("g", 3.0);
        obs.session(&SessionTrace::new(1));
        assert_eq!(obs.prometheus_text(), "");
        assert!(obs.with_registry(|_| ()).is_none());
    }

    #[test]
    fn null_collector_collapses_to_disabled() {
        let obs = Obs::new(Arc::new(NullCollector));
        assert!(!obs.is_enabled());
    }

    #[test]
    fn spans_and_metrics_flow_when_enabled() {
        let (obs, mem) = Obs::with_memory();
        assert!(obs.is_enabled());
        {
            let _g = obs.span("ot_round_a");
        }
        let secs = obs.span("explicit").finish();
        assert!(secs >= 0.0);
        obs.record_duration("premeasured", 0.25);
        obs.event("seed_mismatch_bits", 3.0);
        obs.inc("enroll_total");

        let spans = mem.spans();
        let names: Vec<_> = spans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["ot_round_a", "explicit", "premeasured"]);
        assert_eq!(spans[2].1, 0.25);
        assert_eq!(mem.events(), vec![("seed_mismatch_bits".to_string(), 3.0)]);

        let text = obs.prometheus_text();
        assert!(text.contains("span_premeasured_count 1"));
        assert!(text.contains("enroll_total 1"));
    }

    #[test]
    fn session_updates_derived_metrics() {
        let (obs, mem) = Obs::with_memory();
        let mut t = SessionTrace::new(5);
        t.outcome = "success".into();
        t.seed_len = 48;
        t.seed_mismatch_bits = Some(6);
        t.record_stage(crate::trace::stage::OT_ROUND_A, 0.04);
        obs.session(&t);
        assert_eq!(mem.sessions().len(), 1);
        let text = obs.prometheus_text();
        assert!(text.contains("sessions_total 1"));
        assert!(text.contains("sessions_success 1"));
        assert!(text.contains("stage_ot_round_a_count 1"));
        assert!(text.contains("seed_mismatch_ratio_count 1"));
    }

    #[test]
    fn nested_spans_build_hierarchical_profile_paths() {
        let (obs, _mem) = Obs::with_memory();
        {
            let _outer = obs.span("outer");
            {
                let _inner = obs.span("inner");
                obs.record_duration("leaf", 0.25);
            }
            obs.record_duration("sibling", 0.5);
        }
        obs.record_duration("root_leaf", 0.125);
        let snap = obs.profile_snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            vec!["outer", "outer;inner", "outer;inner;leaf", "outer;sibling", "root_leaf"]
        );
        let leaf = snap.iter().find(|(p, _)| p == "outer;inner;leaf").expect("leaf");
        assert_eq!(leaf.1.count, 1);
        assert_eq!(leaf.1.total_s, 0.25);
        // Exports exist and contain the paths.
        assert!(obs.profile_collapsed().contains("outer;inner;leaf "));
        let json = obs.profile_json();
        assert!(json.get("tree").is_some());
        // Flat span recording is unchanged: names stay bare.
        let text = obs.prometheus_text();
        assert!(text.contains("span_leaf_count 1"));
    }

    #[test]
    fn disabled_handle_has_empty_profile_and_inert_causal() {
        let obs = Obs::disabled();
        {
            let _g = obs.span("x");
        }
        obs.record_duration("y", 1.0);
        assert!(obs.profile_snapshot().is_empty());
        assert_eq!(obs.profile_collapsed(), "");
        assert_eq!(obs.profile_json(), crate::json::Json::Null);
        obs.causal(&CausalEvent {
            session_id: 1,
            seq: 0,
            actor: "manager",
            kind: "deliver",
            state: None,
            frame: None,
            n: None,
        });
    }

    #[test]
    fn causal_events_reach_the_collector() {
        let (obs, mem) = Obs::with_memory();
        let scope = crate::event::EventScope::new(&obs, 42, "mobile");
        scope.emit_state("ot_round_a");
        scope.emit_state("done");
        let events = mem.causal_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].session_id, 42);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].state.as_deref(), Some("done"));
    }

    #[test]
    fn profile_paths_are_per_thread() {
        let (obs, _mem) = Obs::with_memory();
        let _outer = obs.span("main_only");
        let handle = {
            let obs = obs.clone();
            std::thread::spawn(move || {
                // This thread's stack is empty: no "main_only" ancestry.
                let _g = obs.span("worker");
            })
        };
        handle.join().expect("thread");
        let snap = obs.profile_snapshot();
        assert!(snap.iter().any(|(p, _)| p == "worker"));
        assert!(!snap.iter().any(|(p, _)| p == "main_only;worker"));
    }

    #[test]
    fn concurrent_spans_lose_nothing() {
        let (obs, mem) = Obs::with_memory();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let obs = obs.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let _g = obs.span("hot");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("thread");
        }
        assert_eq!(mem.spans().len(), 4000);
        let count = obs
            .with_registry(|r| {
                r.snapshot()
                    .into_iter()
                    .find(|(n, _)| n == "span.hot")
                    .map(|(_, m)| match m {
                        crate::metrics::MetricSnapshot::Histogram(h) => h.count(),
                        _ => 0,
                    })
                    .unwrap_or(0)
            })
            .expect("registry");
        assert_eq!(count, 4000);
    }
}
