//! # wavekey-obs
//!
//! Dependency-free observability substrate for the WaveKey workspace:
//! structured spans, metrics, and a session flight recorder.
//!
//! The paper's evaluation (WaveKey, ICDCS 2024 — Tables I–III, Fig. 7) is
//! entirely about per-stage quantities: seed mismatch ratio ε, OT round
//! latency against the `2 + τ` arrival deadline, key-agreement success
//! rate. This crate gives the whole workspace one shared way to measure
//! them:
//!
//! * **Spans & events** — [`Obs`] is a cheaply clonable handle; `obs.span
//!   ("ot_round_a")` returns an RAII guard timed with the monotonic clock.
//!   A *disabled* handle (the default) is a `None` niche: instrumented
//!   code pays one pointer test, no clock read, no allocation, no lock.
//! * **Collectors** — the pluggable [`Collector`] trait with
//!   [`NullCollector`] (inert; collapses the handle to the disabled
//!   path), [`MemoryCollector`], [`JsonLinesCollector`], a fan-out
//!   [`MultiCollector`], and the ring-buffer [`FlightRecorder`].
//! * **Metrics** — counters, gauges, and log-linear histograms
//!   (p50/p90/p99) behind a sharded [`Registry`], with Prometheus-style
//!   text and JSON exporters.
//! * **Session traces** — [`SessionTrace`] captures one key-establishment
//!   attempt end to end: per-stage timings (see [`stage`]), seed mismatch,
//!   deadline slack consumed, and outcome. [`TraceSet`] aggregates many
//!   traces into the `results/OBS_session.json` report.
//! * **Causal events** — [`event`] adds the bounded, lock-sharded
//!   [`EventLog`] of per-session [`CausalEvent`] timelines (session id,
//!   sequence number, actor, state/frame context), emitted through cheap
//!   per-session [`EventScope`] handles and exported as deterministic
//!   JSONL.
//! * **Profiles** — [`profile`] aggregates the RAII spans into a call
//!   tree keyed by span path (inclusive/exclusive time, counts), exported
//!   as JSON and flamegraph collapsed-stack text.
//! * **SLOs** — [`slo`] evaluates declarative objectives (percentile +
//!   threshold + window + success floor) into error budgets, burn rates,
//!   and machine-readable verdicts that `ci.sh` gates on.
//!
//! ```
//! use wavekey_obs::{Obs, SessionTrace, stage};
//!
//! let (obs, memory) = Obs::with_memory();
//! {
//!     let _guard = obs.span(stage::OT_ROUND_A); // recorded on drop
//! }
//! let mut trace = SessionTrace::new(1);
//! trace.outcome = "success".into();
//! trace.record_stage(stage::OT_ROUND_A, 0.043);
//! obs.session(&trace);
//! assert_eq!(memory.sessions().len(), 1);
//! assert!(obs.prometheus_text().contains("sessions_total 1"));
//! ```
//!
//! Everything is `std`-only by design: the build container cannot reach
//! the cargo registry, and an observability layer must not tax the crates
//! it instruments.

#![deny(missing_docs)]

pub mod collector;
pub mod event;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod slo;
pub mod span;
pub mod trace;

pub use collector::{
    Collector, JsonLinesCollector, MemoryCollector, MultiCollector, NullCollector, ObsRecord,
};
pub use event::{CausalEvent, EventLog, EventScope};
pub use flight::FlightRecorder;
pub use json::Json;
pub use metrics::{Bucket, Histogram, MetricSnapshot, Registry};
pub use profile::{PathStat, ProfileNode, ProfileStore};
pub use slo::{SloReport, SloSpec, SloVerdict};
pub use span::{EventRecord, Obs, SpanGuard, SpanRecord};
pub use trace::{stage, SessionTrace, StageStats, StageTiming, TraceSet};
