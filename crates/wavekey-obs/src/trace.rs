//! The session flight-record: a structured [`SessionTrace`] per
//! key-establishment attempt, plus [`TraceSet`] aggregation into the
//! per-stage p50/p90/p99 report consumed by `results/OBS_session.json`.
//!
//! Stage names are centralized in [`stage`] so instrumented crates, the
//! exporters, and DESIGN.md §8 all speak the same taxonomy.

use crate::json::Json;

/// Canonical stage names used across the instrumented pipeline.
///
/// The order here mirrors the protocol: sensing (gesture/IMU/RFID),
/// inference (encoder forward), quantization, then the agreement rounds of
/// WaveKey §V (OT rounds, preliminary keys, code-offset reconciliation,
/// HMAC key confirmation).
pub mod stage {
    /// Synthetic gesture generation (simulation stand-in for the wave).
    pub const GESTURE_SYNTH: &str = "gesture_synth";
    /// IMU sampling + mobile-side pipeline (§IV-B).
    pub const IMU_PIPELINE: &str = "imu_pipeline";
    /// RFID recording + server-side pipeline (§IV-B).
    pub const RFID_PIPELINE: &str = "rfid_pipeline";
    /// Autoencoder forward passes on both modalities (§IV-C).
    pub const ENCODER_FORWARD: &str = "encoder_forward";
    /// Equiprobable quantization + Gray coding into key-seeds (§IV-D).
    pub const QUANTIZATION: &str = "quantization";
    /// OT round A: both parties prepare and send `M_A` (§V-B).
    pub const OT_ROUND_A: &str = "ot_round_a";
    /// OT round B: both parties respond with `M_B` (§V-B).
    pub const OT_ROUND_B: &str = "ot_round_b";
    /// OT round E: both parties encrypt `M_E` (§V-B).
    pub const OT_ROUND_E: &str = "ot_round_e";
    /// Preliminary key assembly from decrypted OT payloads (§V-B).
    pub const PRELIM_KEY: &str = "prelim_key";
    /// BCH code-offset reconciliation, both directions (§V-C).
    pub const ECC_RECONCILE: &str = "ecc_reconcile";
    /// HMAC key-confirmation exchange (§V-C).
    pub const HMAC_CONFIRM: &str = "hmac_confirm";
    /// All stages in pipeline order (used for stable report ordering).
    pub const ALL: &[&str] = &[
        GESTURE_SYNTH,
        IMU_PIPELINE,
        RFID_PIPELINE,
        ENCODER_FORWARD,
        QUANTIZATION,
        OT_ROUND_A,
        OT_ROUND_B,
        OT_ROUND_E,
        PRELIM_KEY,
        ECC_RECONCILE,
        HMAC_CONFIRM,
    ];
}

/// One timed stage inside a session.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name, normally one of [`stage`]'s constants.
    pub name: String,
    /// Wall-clock compute time spent in the stage, in seconds.
    pub seconds: f64,
}

/// Structured record of one key-establishment session.
///
/// Every field that depends on reaching a protocol phase is optional: a
/// session that times out in OT round A has no reconciliation timing and no
/// final key, but its partial trace is still recorded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionTrace {
    /// Monotonic id (unique per process, assigned by the caller).
    pub session_id: u64,
    /// `"success"`, or a short failure label (e.g. `"timeout_ot_a"`,
    /// `"confirmation_failed"`).
    pub outcome: String,
    /// Final key length in bits (0 if the session failed).
    pub key_bits: usize,
    /// Key-seed length in bits (`l_s` per party, §IV-D).
    pub seed_len: usize,
    /// Hamming distance between the two parties' key-seeds, when both
    /// seeds were derived.
    pub seed_mismatch_bits: Option<usize>,
    /// Bit mismatches between the preliminary keys entering
    /// reconciliation (§V-C), when the protocol got that far.
    pub preliminary_mismatch_bits: Option<usize>,
    /// Preliminary key length in bits, for turning the above into a ratio.
    pub preliminary_len_bits: Option<usize>,
    /// The `2 + τ` arrival deadline both parties enforce, in seconds.
    pub deadline_s: Option<f64>,
    /// How much of the deadline budget the slowest checked arrival
    /// consumed, in seconds (deadline minus remaining slack).
    pub deadline_consumed_s: Option<f64>,
    /// End-to-end logical protocol time (includes modeled channel delays).
    pub elapsed_s: Option<f64>,
    /// Per-stage compute timings, in pipeline order as recorded.
    pub stages: Vec<StageTiming>,
}

impl SessionTrace {
    /// A fresh trace for `session_id` with no stages recorded.
    pub fn new(session_id: u64) -> SessionTrace {
        SessionTrace { session_id, ..SessionTrace::default() }
    }

    /// Append a stage timing (accumulates if the stage repeats).
    pub fn record_stage(&mut self, name: &str, seconds: f64) {
        if let Some(existing) = self.stages.iter_mut().find(|s| s.name == name) {
            existing.seconds += seconds;
        } else {
            self.stages.push(StageTiming { name: name.to_string(), seconds });
        }
    }

    /// Total seconds recorded for `name`, if present.
    pub fn stage_seconds(&self, name: &str) -> Option<f64> {
        self.stages.iter().find(|s| s.name == name).map(|s| s.seconds)
    }

    /// Seed mismatch ratio (mismatch bits / seed bits), when known.
    ///
    /// The paper reports this as ε, the fraction the OT layer and BCH
    /// reconciliation must absorb (Fig. 7 keys off it).
    pub fn seed_mismatch_ratio(&self) -> Option<f64> {
        match (self.seed_mismatch_bits, self.seed_len) {
            (Some(bits), len) if len > 0 => Some(bits as f64 / len as f64),
            _ => None,
        }
    }

    /// Whether the session established a confirmed key.
    pub fn is_success(&self) -> bool {
        self.outcome == "success"
    }

    /// Sum of all per-stage compute seconds.
    pub fn total_compute_s(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }

    /// Serialize to a JSON object (stable field names; used by the
    /// JSON-lines collector and `results/OBS_session.json`).
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        let opt_count = |v: Option<usize>| v.map(|n| Json::Num(n as f64)).unwrap_or(Json::Null);
        Json::obj(vec![
            ("session_id", Json::Num(self.session_id as f64)),
            ("outcome", Json::Str(self.outcome.clone())),
            ("key_bits", Json::Num(self.key_bits as f64)),
            ("seed_len", Json::Num(self.seed_len as f64)),
            ("seed_mismatch_bits", opt_count(self.seed_mismatch_bits)),
            ("preliminary_mismatch_bits", opt_count(self.preliminary_mismatch_bits)),
            ("preliminary_len_bits", opt_count(self.preliminary_len_bits)),
            ("deadline_s", opt_num(self.deadline_s)),
            ("deadline_consumed_s", opt_num(self.deadline_consumed_s)),
            ("elapsed_s", opt_num(self.elapsed_s)),
            (
                "stages",
                Json::Obj(
                    self.stages
                        .iter()
                        .map(|s| (s.name.clone(), Json::Num(s.seconds)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Rebuild a trace from [`SessionTrace::to_json`] output.
    pub fn from_json(json: &Json) -> Option<SessionTrace> {
        let num = |k: &str| json.get(k).and_then(Json::as_f64);
        let opt_count = |k: &str| match json.get(k) {
            Some(Json::Num(n)) => Some(Some(*n as usize)),
            Some(Json::Null) | None => Some(None),
            _ => None,
        };
        let opt_num = |k: &str| match json.get(k) {
            Some(Json::Num(n)) => Some(Some(*n)),
            Some(Json::Null) | None => Some(None),
            _ => None,
        };
        let stages = match json.get("stages")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(name, v)| {
                    v.as_f64().map(|seconds| StageTiming { name: name.clone(), seconds })
                })
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(SessionTrace {
            session_id: num("session_id")? as u64,
            outcome: json.get("outcome")?.as_str()?.to_string(),
            key_bits: num("key_bits")? as usize,
            seed_len: num("seed_len")? as usize,
            seed_mismatch_bits: opt_count("seed_mismatch_bits")?,
            preliminary_mismatch_bits: opt_count("preliminary_mismatch_bits")?,
            preliminary_len_bits: opt_count("preliminary_len_bits")?,
            deadline_s: opt_num("deadline_s")?,
            deadline_consumed_s: opt_num("deadline_consumed_s")?,
            elapsed_s: opt_num("elapsed_s")?,
            stages,
        })
    }
}

/// Aggregate statistics for one stage across a [`TraceSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage name.
    pub name: String,
    /// Number of sessions that recorded the stage.
    pub count: usize,
    /// Mean seconds.
    pub mean_s: f64,
    /// Median seconds (exact, from sorted samples).
    pub p50_s: f64,
    /// 90th percentile seconds.
    pub p90_s: f64,
    /// 99th percentile seconds.
    pub p99_s: f64,
    /// Maximum seconds.
    pub max_s: f64,
}

/// A collection of session traces with aggregate reporting.
#[derive(Debug, Clone, Default)]
pub struct TraceSet {
    traces: Vec<SessionTrace>,
}

/// Exact percentile over a sorted sample slice (nearest-rank with linear
/// interpolation, matching `wavekey_math::stats::percentile` semantics).
/// Shared with the SLO engine ([`crate::slo`]), which reports the
/// observed value at each objective percentile.
pub(crate) fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl TraceSet {
    /// An empty set.
    pub fn new() -> TraceSet {
        TraceSet::default()
    }

    /// Add one trace.
    pub fn push(&mut self, trace: SessionTrace) {
        self.traces.push(trace);
    }

    /// All traces, in insertion order.
    pub fn traces(&self) -> &[SessionTrace] {
        &self.traces
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Fraction of sessions whose outcome is `"success"`.
    pub fn success_rate(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().filter(|t| t.is_success()).count() as f64 / self.traces.len() as f64
    }

    /// Per-stage timing statistics. Stages in [`stage::ALL`] come first in
    /// pipeline order; any custom stages follow in first-seen order.
    pub fn stage_stats(&self) -> Vec<StageStats> {
        let mut order: Vec<String> = stage::ALL.iter().map(|s| s.to_string()).collect();
        for t in &self.traces {
            for s in &t.stages {
                if !order.contains(&s.name) {
                    order.push(s.name.clone());
                }
            }
        }
        let mut out = Vec::new();
        for name in order {
            let mut samples: Vec<f64> =
                self.traces.iter().filter_map(|t| t.stage_seconds(&name)).collect();
            if samples.is_empty() {
                continue;
            }
            samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN stage timing"));
            let count = samples.len();
            let mean = samples.iter().sum::<f64>() / count as f64;
            out.push(StageStats {
                name,
                count,
                mean_s: mean,
                p50_s: percentile_sorted(&samples, 0.50),
                p90_s: percentile_sorted(&samples, 0.90),
                p99_s: percentile_sorted(&samples, 0.99),
                max_s: samples[count - 1],
            });
        }
        out
    }

    /// Statistics over a numeric field extracted from each trace
    /// (`None` entries are skipped): `(count, mean, p50, p90, p99, max)`.
    pub fn field_stats<F: Fn(&SessionTrace) -> Option<f64>>(
        &self,
        extract: F,
    ) -> Option<(usize, f64, f64, f64, f64, f64)> {
        let mut samples: Vec<f64> = self.traces.iter().filter_map(extract).collect();
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN field"));
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        Some((
            count,
            mean,
            percentile_sorted(&samples, 0.50),
            percentile_sorted(&samples, 0.90),
            percentile_sorted(&samples, 0.99),
            samples[count - 1],
        ))
    }

    /// An arbitrary percentile (`q` in `[0, 1]`) of a numeric field
    /// extracted from each trace, or `None` when no trace has the field.
    /// Complements [`TraceSet::field_stats`] for quantiles outside the
    /// standard p50/p90/p99 set (e.g. the τ-calibration's p95).
    pub fn field_percentile<F: Fn(&SessionTrace) -> Option<f64>>(
        &self,
        extract: F,
        q: f64,
    ) -> Option<f64> {
        let mut samples: Vec<f64> = self.traces.iter().filter_map(extract).collect();
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN field"));
        Some(percentile_sorted(&samples, q))
    }

    /// Build the `results/OBS_session.json` document: session counts,
    /// seed-mismatch statistics, deadline accounting, per-stage
    /// p50/p90/p99, and the raw per-session traces.
    pub fn report_json(&self, label: &str) -> Json {
        let stage_stats = self.stage_stats();
        let stages = Json::Arr(
            stage_stats
                .iter()
                .map(|s| {
                    Json::obj(vec![
                        ("name", Json::Str(s.name.clone())),
                        ("count", Json::Num(s.count as f64)),
                        ("mean_ms", Json::Num(s.mean_s * 1e3)),
                        ("p50_ms", Json::Num(s.p50_s * 1e3)),
                        ("p90_ms", Json::Num(s.p90_s * 1e3)),
                        ("p99_ms", Json::Num(s.p99_s * 1e3)),
                        ("max_ms", Json::Num(s.max_s * 1e3)),
                    ])
                })
                .collect(),
        );
        let mismatch = match self.field_stats(|t| t.seed_mismatch_ratio()) {
            Some((count, mean, p50, p90, p99, max)) => Json::obj(vec![
                ("count", Json::Num(count as f64)),
                ("mean_ratio", Json::Num(mean)),
                ("p50_ratio", Json::Num(p50)),
                ("p90_ratio", Json::Num(p90)),
                ("p99_ratio", Json::Num(p99)),
                ("max_ratio", Json::Num(max)),
            ]),
            None => Json::Null,
        };
        let deadline = match self.field_stats(|t| t.deadline_consumed_s) {
            Some((count, mean, p50, p90, p99, max)) => Json::obj(vec![
                ("count", Json::Num(count as f64)),
                (
                    "budget_s",
                    self.traces
                        .iter()
                        .find_map(|t| t.deadline_s)
                        .map(Json::Num)
                        .unwrap_or(Json::Null),
                ),
                ("consumed_mean_s", Json::Num(mean)),
                ("consumed_p50_s", Json::Num(p50)),
                ("consumed_p90_s", Json::Num(p90)),
                ("consumed_p99_s", Json::Num(p99)),
                ("consumed_max_s", Json::Num(max)),
            ]),
            None => Json::Null,
        };
        Json::obj(vec![
            ("label", Json::Str(label.to_string())),
            ("sessions", Json::Num(self.traces.len() as f64)),
            (
                "successes",
                Json::Num(self.traces.iter().filter(|t| t.is_success()).count() as f64),
            ),
            ("success_rate", Json::Num(self.success_rate())),
            ("seed_mismatch", mismatch),
            ("deadline", deadline),
            ("stages", stages),
            ("traces", Json::Arr(self.traces.iter().map(SessionTrace::to_json).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(id: u64, base: f64) -> SessionTrace {
        let mut t = SessionTrace::new(id);
        t.outcome = "success".into();
        t.key_bits = 256;
        t.seed_len = 48;
        t.seed_mismatch_bits = Some(3);
        t.deadline_s = Some(2.12);
        t.deadline_consumed_s = Some(0.1 * base);
        t.elapsed_s = Some(base);
        t.record_stage(stage::OT_ROUND_A, 0.040 * base);
        t.record_stage(stage::OT_ROUND_B, 0.030 * base);
        t.record_stage(stage::ECC_RECONCILE, 0.001 * base);
        t
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut t = sample_trace(7, 1.0);
        t.preliminary_mismatch_bits = Some(5);
        t.preliminary_len_bits = Some(256);
        let json = t.to_json();
        let back = SessionTrace::from_json(&json).expect("round trip");
        assert_eq!(back, t);
        // And through the actual text form.
        let reparsed = crate::json::Json::parse(&json.to_string_compact()).expect("parse");
        assert_eq!(SessionTrace::from_json(&reparsed).expect("round trip"), t);
    }

    #[test]
    fn failed_sessions_round_trip_with_missing_fields() {
        let mut t = SessionTrace::new(9);
        t.outcome = "timeout_ot_a".into();
        t.seed_len = 48;
        t.record_stage(stage::OT_ROUND_A, 0.05);
        let back =
            SessionTrace::from_json(&t.to_json()).expect("round trip with None fields");
        assert_eq!(back, t);
        assert!(!back.is_success());
        assert_eq!(back.seed_mismatch_ratio(), None);
    }

    #[test]
    fn record_stage_accumulates_repeats() {
        let mut t = SessionTrace::new(1);
        t.record_stage(stage::ECC_RECONCILE, 0.5);
        t.record_stage(stage::ECC_RECONCILE, 0.25);
        assert_eq!(t.stage_seconds(stage::ECC_RECONCILE), Some(0.75));
        assert_eq!(t.stages.len(), 1);
    }

    #[test]
    fn trace_set_aggregates_percentiles_and_success_rate() {
        let mut set = TraceSet::new();
        for i in 0..100 {
            let mut t = sample_trace(i, 1.0 + i as f64 / 100.0);
            if i >= 90 {
                t.outcome = "timeout_ot_b".into();
            }
            set.push(t);
        }
        assert!((set.success_rate() - 0.9).abs() < 1e-12);
        let stats = set.stage_stats();
        let ot_a = stats.iter().find(|s| s.name == stage::OT_ROUND_A).expect("ot_a");
        assert_eq!(ot_a.count, 100);
        // base spans 1.00..1.99 → ot_a spans 40.0..79.6 ms
        assert!(ot_a.p50_s > 0.055 && ot_a.p50_s < 0.065, "p50 {}", ot_a.p50_s);
        assert!(ot_a.p99_s > ot_a.p90_s && ot_a.p90_s > ot_a.p50_s);
        assert!(ot_a.max_s <= 0.0796 + 1e-12);
        // Stage ordering follows the pipeline taxonomy.
        let names: Vec<_> = stats.iter().map(|s| s.name.as_str()).collect();
        let ia = names.iter().position(|n| *n == stage::OT_ROUND_A).expect("a");
        let ib = names.iter().position(|n| *n == stage::ECC_RECONCILE).expect("ecc");
        assert!(ia < ib);

        // field_percentile agrees with field_stats at the shared quantiles
        // and interpolates in between.
        let (_, _, p50, p90, _, max) =
            set.field_stats(|t| t.elapsed_s).expect("elapsed samples");
        assert_eq!(set.field_percentile(|t| t.elapsed_s, 0.50), Some(p50));
        assert_eq!(set.field_percentile(|t| t.elapsed_s, 0.90), Some(p90));
        let p95 = set.field_percentile(|t| t.elapsed_s, 0.95).expect("p95");
        assert!(p95 > p90 && p95 < max, "p95 {p95} not between p90 {p90} and max {max}");
        assert_eq!(set.field_percentile(|t| t.stage_seconds("no_such_stage"), 0.5), None);

        let report = set.report_json("unit");
        assert_eq!(report.get("sessions").and_then(Json::as_f64), Some(100.0));
        let mismatch = report.get("seed_mismatch").expect("mismatch");
        let ratio = mismatch.get("mean_ratio").and_then(Json::as_f64).expect("ratio");
        assert!((ratio - 3.0 / 48.0).abs() < 1e-12);
        assert_eq!(report.get("traces").and_then(Json::as_arr).map(<[Json]>::len), Some(100));
    }

    #[test]
    fn percentile_interpolation_pins_exact_values() {
        // Rank = q · (n − 1), linearly interpolated between neighbours.
        let sorted: Vec<f64> = (1..=5).map(|v| v as f64).collect();
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 3.0);
        // q=0.6 → rank 2.4 → 3 + 0.4·(4−3) = 3.4.
        assert!((percentile_sorted(&sorted, 0.6) - 3.4).abs() < 1e-12);
        // q=0.9 over 1..=100 → rank 89.1 → 90.1.
        let big: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert!((percentile_sorted(&big, 0.9) - 90.1).abs() < 1e-9);
        // Degenerates.
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        assert_eq!(percentile_sorted(&[7.0], 0.99), 7.0);
        // Out-of-range q clamps.
        assert_eq!(percentile_sorted(&sorted, -1.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 2.0), 5.0);
    }
}
