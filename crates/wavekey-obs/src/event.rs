//! Causal structured event log: bounded, lock-sharded, per-session.
//!
//! Metrics say *how much*; the event log says *what happened, in order*.
//! Every record is a [`CausalEvent`] carrying a causal identity — session
//! id, a per-session monotone sequence number, the emitting actor, and
//! optional protocol context (machine state, frame kind, occurrence
//! counter). Deliberately absent: wall-clock timestamps. The protocol's
//! logical clocks include `Instant`-measured compute, so any real-time
//! field would break the determinism guarantee this log exists to
//! provide — with a fixed seed, the exported JSONL timelines are
//! byte-identical run to run, which is what lets a tail or divergent
//! session be replayed as a causal narrative.
//!
//! Producers emit through an [`EventScope`]: a cheap per-session handle
//! (disabled = a `None`, no allocation) that stamps the session id and a
//! shared atomic sequence counter, so the mobile machine, server machine,
//! and the session manager wrapper of one session interleave into a single
//! totally-ordered timeline. Storage is the [`EventLog`] collector:
//! sixteen mutex shards keyed by session id, each session's timeline
//! bounded by a per-session cap (overflow increments a drop counter
//! instead of growing without bound).

use crate::collector::Collector;
use crate::json::Json;
use crate::span::Obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const SHARDS: usize = 16;

/// Default bound on events retained per session.
pub const DEFAULT_PER_SESSION_CAP: usize = 256;

/// One structured event with causal identity.
#[derive(Debug, Clone, PartialEq)]
pub struct CausalEvent {
    /// The session this event belongs to.
    pub session_id: u64,
    /// Per-session monotone sequence number (shared across the session's
    /// actors, so one total order per session).
    pub seq: u64,
    /// Which component emitted the event (`"mobile"`, `"server"`,
    /// `"manager"`, `"driver"`).
    pub actor: &'static str,
    /// Event kind (`"state"`, `"deliver"`, `"nak"`, `"retransmit"`, ...).
    pub kind: &'static str,
    /// Machine state after a transition, when the event is one.
    pub state: Option<String>,
    /// Protocol frame kind involved, when the event concerns a frame.
    pub frame: Option<String>,
    /// Occurrence counter / small payload (retransmit attempt, NAK budget
    /// used, ...), when meaningful.
    pub n: Option<u64>,
}

impl CausalEvent {
    /// Compact JSON representation (one JSONL timeline line).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("type", Json::Str("causal".into())),
            ("session", Json::Num(self.session_id as f64)),
            ("seq", Json::Num(self.seq as f64)),
            ("actor", Json::Str(self.actor.into())),
            ("kind", Json::Str(self.kind.into())),
        ];
        if let Some(state) = &self.state {
            pairs.push(("state", Json::Str(state.clone())));
        }
        if let Some(frame) = &self.frame {
            pairs.push(("frame", Json::Str(frame.clone())));
        }
        if let Some(n) = self.n {
            pairs.push(("n", Json::Num(n as f64)));
        }
        Json::obj(pairs)
    }

    /// Parse a JSON value previously produced by [`CausalEvent::to_json`].
    ///
    /// `actor`/`kind` are interned against the known vocabulary (they are
    /// `&'static str` so the hot emit path never allocates); unknown
    /// values map to `"other"`.
    pub fn from_json(json: &Json) -> Option<CausalEvent> {
        Some(CausalEvent {
            session_id: json.get("session")?.as_f64()? as u64,
            seq: json.get("seq")?.as_f64()? as u64,
            actor: intern(json.get("actor")?.as_str()?),
            kind: intern(json.get("kind")?.as_str()?),
            state: json.get("state").and_then(Json::as_str).map(str::to_string),
            frame: json.get("frame").and_then(Json::as_str).map(str::to_string),
            n: json.get("n").and_then(Json::as_f64).map(|v| v as u64),
        })
    }
}

/// The emit-side vocabulary, so parsing can return `&'static str`.
fn intern(s: &str) -> &'static str {
    const KNOWN: &[&str] = &[
        "mobile", "server", "manager", "driver", "state", "deliver", "duplicate",
        "reorder_hold", "reorder_release", "retransmit", "nak", "defer", "evict",
        "complete", "fail", "worker_panic",
    ];
    KNOWN.iter().find(|k| **k == s).copied().unwrap_or("other")
}

struct ScopeInner {
    obs: Obs,
    session_id: u64,
    actor: &'static str,
    seq: Arc<AtomicU64>,
}

/// Per-session emitting handle: stamps session id, actor, and a shared
/// sequence counter onto every event and forwards it to the scope's
/// [`Obs`] handle (thence to any [`Collector::record_causal`] sink).
///
/// Cloning (or [`EventScope::with_actor`]) shares the sequence counter, so
/// all of one session's actors write into one total order. The disabled
/// scope (from [`EventScope::disabled`], or `new` over a disabled `Obs`)
/// holds nothing and allocates nothing — instrumented protocol code pays
/// one pointer test.
#[derive(Clone)]
pub struct EventScope {
    inner: Option<Arc<ScopeInner>>,
}

impl std::fmt::Debug for EventScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventScope").field("enabled", &self.is_enabled()).finish()
    }
}

impl Default for EventScope {
    fn default() -> Self {
        EventScope::disabled()
    }
}

impl EventScope {
    /// The inert scope: every emit is a no-op.
    pub fn disabled() -> EventScope {
        EventScope { inner: None }
    }

    /// A scope for `session_id` emitting as `actor`; collapses to the
    /// disabled scope when `obs` is disabled.
    pub fn new(obs: &Obs, session_id: u64, actor: &'static str) -> EventScope {
        EventScope::starting_at(obs, session_id, actor, 0)
    }

    /// Like [`EventScope::new`] but with the sequence counter starting at
    /// `first_seq`. Used for post-mortem events (worker panic) emitted
    /// after the session's own scope is gone: a large `first_seq` sorts
    /// them to the end of the timeline without colliding with live
    /// sequence numbers.
    pub fn starting_at(
        obs: &Obs,
        session_id: u64,
        actor: &'static str,
        first_seq: u64,
    ) -> EventScope {
        if !obs.is_enabled() {
            return EventScope::disabled();
        }
        EventScope {
            inner: Some(Arc::new(ScopeInner {
                obs: obs.clone(),
                session_id,
                actor,
                seq: Arc::new(AtomicU64::new(first_seq)),
            })),
        }
    }

    /// A sibling scope for another actor of the same session, sharing the
    /// sequence counter.
    pub fn with_actor(&self, actor: &'static str) -> EventScope {
        match &self.inner {
            Some(inner) => EventScope {
                inner: Some(Arc::new(ScopeInner {
                    obs: inner.obs.clone(),
                    session_id: inner.session_id,
                    actor,
                    seq: Arc::clone(&inner.seq),
                })),
            },
            None => EventScope::disabled(),
        }
    }

    /// Whether emits reach a collector.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The session this scope stamps (0 when disabled).
    pub fn session_id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.session_id)
    }

    /// Emit a bare event.
    pub fn emit(&self, kind: &'static str) {
        self.emit_full(kind, None, None, None);
    }

    /// Emit a state-transition event.
    pub fn emit_state(&self, state: &str) {
        self.emit_full("state", Some(state), None, None);
    }

    /// Emit a frame-related event.
    pub fn emit_frame(&self, kind: &'static str, frame: &str) {
        self.emit_full(kind, None, Some(frame), None);
    }

    /// Emit an event carrying an occurrence counter.
    pub fn emit_n(&self, kind: &'static str, n: u64) {
        self.emit_full(kind, None, None, Some(n));
    }

    /// Emit with every field under caller control.
    pub fn emit_full(
        &self,
        kind: &'static str,
        state: Option<&str>,
        frame: Option<&str>,
        n: Option<u64>,
    ) {
        let Some(inner) = &self.inner else { return };
        let event = CausalEvent {
            session_id: inner.session_id,
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            actor: inner.actor,
            kind,
            state: state.map(str::to_string),
            frame: frame.map(str::to_string),
            n,
        };
        inner.obs.causal(&event);
    }
}

/// Bounded, lock-sharded per-session event store; a [`Collector`] that
/// only listens to [`Collector::record_causal`].
///
/// Sessions hash (by id) onto sixteen mutex shards, and each session's
/// timeline is capped at `per_session_cap` events — overflow is counted,
/// not stored, so a pathological session cannot grow the log without
/// bound. Because storage is keyed per session and each session is driven
/// by exactly one thread at a time, cross-thread arrival interleaving
/// cannot perturb a timeline: the JSONL export (sessions by id, events by
/// seq) is deterministic whenever the traffic is.
pub struct EventLog {
    shards: Vec<Mutex<HashMap<u64, Vec<CausalEvent>>>>,
    per_session_cap: usize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("sessions", &self.session_ids().len())
            .field("cap", &self.per_session_cap)
            .finish()
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(DEFAULT_PER_SESSION_CAP)
    }
}

impl EventLog {
    /// An empty log retaining at most `per_session_cap` events per session.
    pub fn new(per_session_cap: usize) -> EventLog {
        EventLog {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            per_session_cap: per_session_cap.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    fn shard(&self, session_id: u64) -> &Mutex<HashMap<u64, Vec<CausalEvent>>> {
        &self.shards[(session_id as usize) % SHARDS]
    }

    /// Store one event (dropped and counted past the per-session cap).
    pub fn record(&self, event: CausalEvent) {
        let mut shard = self.shard(event.session_id).lock().expect("event shard poisoned");
        let timeline = shard.entry(event.session_id).or_default();
        if timeline.len() < self.per_session_cap {
            timeline.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total stored events across all sessions.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("event shard poisoned").values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Whether no events are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped by the per-session cap.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// All session ids with at least one event, ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().expect("event shard poisoned").keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// One session's timeline, ordered by sequence number.
    pub fn timeline(&self, session_id: u64) -> Vec<CausalEvent> {
        let shard = self.shard(session_id).lock().expect("event shard poisoned");
        let mut events = shard.get(&session_id).cloned().unwrap_or_default();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Every timeline as deterministic JSONL: sessions ascending by id,
    /// events ascending by seq, one compact JSON object per line.
    pub fn timelines_jsonl(&self) -> String {
        let mut events = Vec::new();
        for id in self.session_ids() {
            events.extend(self.timeline(id));
        }
        timelines_jsonl(&events)
    }

    /// Discard everything (between load-generator mixes).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("event shard poisoned").clear();
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

impl Collector for EventLog {
    fn record_causal(&self, event: &CausalEvent) {
        self.record(event.clone());
    }
}

/// Render a flat event slice as deterministic JSONL (stably sorted by
/// `(session_id, seq)`); shared by [`EventLog::timelines_jsonl`] and
/// consumers holding raw [`crate::MemoryCollector`] buffers.
pub fn timelines_jsonl(events: &[CausalEvent]) -> String {
    let mut sorted: Vec<&CausalEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.session_id, e.seq));
    let mut out = String::new();
    for e in sorted {
        out.push_str(&e.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_obs(cap: usize) -> (Obs, Arc<EventLog>) {
        let log = Arc::new(EventLog::new(cap));
        (Obs::new(log.clone()), log)
    }

    #[test]
    fn disabled_scope_is_inert() {
        let scope = EventScope::new(&Obs::disabled(), 7, "mobile");
        assert!(!scope.is_enabled());
        scope.emit("state");
        scope.emit_state("done");
        scope.emit_frame("deliver", "ot_a");
        scope.emit_n("retransmit", 2);
        assert_eq!(scope.session_id(), 0);
    }

    #[test]
    fn scope_actors_share_one_sequence() {
        let (obs, log) = log_obs(64);
        let manager = EventScope::new(&obs, 3, "manager");
        let mobile = manager.with_actor("mobile");
        let server = manager.with_actor("server");
        manager.emit_frame("deliver", "ot_a");
        mobile.emit_state("ot_round_a");
        server.emit_state("ot_round_a");
        manager.emit_n("retransmit", 1);
        let timeline = log.timeline(3);
        assert_eq!(timeline.len(), 4);
        assert_eq!(
            timeline.iter().map(|e| (e.seq, e.actor)).collect::<Vec<_>>(),
            vec![(0, "manager"), (1, "mobile"), (2, "server"), (3, "manager")]
        );
    }

    #[test]
    fn per_session_cap_bounds_and_counts_drops() {
        let (obs, log) = log_obs(4);
        let scope = EventScope::new(&obs, 9, "manager");
        for _ in 0..10 {
            scope.emit("deliver");
        }
        assert_eq!(log.timeline(9).len(), 4);
        assert_eq!(log.dropped(), 6);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn jsonl_export_is_sorted_and_round_trips() {
        let (obs, log) = log_obs(64);
        // Sessions created out of order; export must sort by (id, seq).
        let b = EventScope::new(&obs, 2, "manager");
        let a = EventScope::new(&obs, 1, "mobile");
        b.emit_frame("deliver", "ot_a");
        a.emit_state("ot_round_a");
        b.emit_state("done");
        let jsonl = log.timelines_jsonl();
        let events: Vec<CausalEvent> = jsonl
            .lines()
            .map(|l| CausalEvent::from_json(&Json::parse(l).expect("json")).expect("event"))
            .collect();
        assert_eq!(
            events.iter().map(|e| (e.session_id, e.seq)).collect::<Vec<_>>(),
            vec![(1, 0), (2, 0), (2, 1)]
        );
        assert_eq!(events[0].state.as_deref(), Some("ot_round_a"));
        assert_eq!(events[1].frame.as_deref(), Some("ot_a"));
        // Byte-determinism of the export itself.
        assert_eq!(jsonl, log.timelines_jsonl());
    }

    #[test]
    fn starting_at_sorts_post_mortem_events_last() {
        let (obs, log) = log_obs(64);
        let live = EventScope::new(&obs, 5, "manager");
        live.emit_state("ot_round_a");
        live.emit_state("failed");
        drop(live);
        EventScope::starting_at(&obs, 5, "manager", 1 << 20).emit("worker_panic");
        let timeline = log.timeline(5);
        assert_eq!(timeline.last().expect("event").kind, "worker_panic");
        assert_eq!(timeline.last().expect("event").seq, 1 << 20);
    }
}
