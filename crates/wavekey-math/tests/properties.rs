//! Property-based tests for the math substrate.

use proptest::prelude::*;
use wavekey_math::{
    normal_cdf, normal_inverse_cdf, pearson_correlation, resample_linear, Mat3, Quaternion, Vec3,
};

fn finite_vec3() -> impl Strategy<Value = Vec3> {
    (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0)
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    #[test]
    fn vec3_dot_cauchy_schwarz(a in finite_vec3(), b in finite_vec3()) {
        prop_assert!(a.dot(b).abs() <= a.norm() * b.norm() + 1e-9);
    }

    #[test]
    fn vec3_cross_orthogonal(a in finite_vec3(), b in finite_vec3()) {
        let c = a.cross(b);
        prop_assert!(c.dot(a).abs() < 1e-6 * (1.0 + a.norm() * b.norm() * a.norm()));
        prop_assert!(c.dot(b).abs() < 1e-6 * (1.0 + a.norm() * b.norm() * b.norm()));
    }

    #[test]
    fn rotation_preserves_norm(axis in finite_vec3(), angle in -10.0f64..10.0, v in finite_vec3()) {
        prop_assume!(axis.norm() > 1e-6);
        let q = Quaternion::from_axis_angle(axis, angle);
        prop_assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-8 * (1.0 + v.norm()));
    }

    #[test]
    fn rotation_composition_matches_matrix_product(
        a1 in -3.0f64..3.0, a2 in -3.0f64..3.0, v in finite_vec3()
    ) {
        let q1 = Quaternion::from_axis_angle(Vec3::Z, a1);
        let q2 = Quaternion::from_axis_angle(Vec3::X, a2);
        let via_quat = q1.mul(q2).rotate(v);
        let via_mat = (q1.to_matrix() * q2.to_matrix()) * v;
        prop_assert!((via_quat - via_mat).norm() < 1e-8 * (1.0 + v.norm()));
    }

    #[test]
    fn quaternion_conjugate_inverts(axis in finite_vec3(), angle in -3.0f64..3.0, v in finite_vec3()) {
        prop_assume!(axis.norm() > 1e-6);
        let q = Quaternion::from_axis_angle(axis, angle);
        prop_assert!((q.conjugate().rotate(q.rotate(v)) - v).norm() < 1e-8 * (1.0 + v.norm()));
    }

    #[test]
    fn symmetric_eigen_reconstructs_random_matrices(
        a in -5.0f64..5.0, b in -5.0f64..5.0, c in -5.0f64..5.0,
        d in -5.0f64..5.0, e in -5.0f64..5.0, f in -5.0f64..5.0
    ) {
        let m = Mat3 { rows: [[a, b, c], [b, d, e], [c, e, f]] };
        let (vals, v) = m.symmetric_eigen();
        prop_assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
        let lambda = Mat3 { rows: [[vals[0], 0.0, 0.0], [0.0, vals[1], 0.0], [0.0, 0.0, vals[2]]] };
        let rebuilt = v * lambda * v.transpose();
        for i in 0..3 {
            for j in 0..3 {
                prop_assert!((rebuilt.rows[i][j] - m.rows[i][j]).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn normal_cdf_monotone(x in -6.0f64..6.0, dx in 0.0f64..3.0) {
        prop_assert!(normal_cdf(x + dx) >= normal_cdf(x) - 1e-12);
    }

    #[test]
    fn normal_inverse_roundtrip(p in 0.001f64..0.999) {
        prop_assert!((normal_cdf(normal_inverse_cdf(p)) - p).abs() < 1e-7);
    }

    #[test]
    fn correlation_bounded_and_scale_invariant(
        xs in proptest::collection::vec(-100.0f64..100.0, 3..50),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0
    ) {
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0 + 1.0).collect();
        let r = pearson_correlation(&xs, &ys);
        prop_assert!(r.abs() <= 1.0 + 1e-9);
        // Affine transforms with positive scale preserve correlation.
        let xs2: Vec<f64> = xs.iter().map(|x| x * scale + shift).collect();
        let r2 = pearson_correlation(&xs2, &ys);
        prop_assert!((r - r2).abs() < 1e-6);
    }

    #[test]
    fn resample_at_sample_points_is_exact(
        values in proptest::collection::vec(-100.0f64..100.0, 2..30)
    ) {
        let ts: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let out = resample_linear(&ts, &values, 0.0, 1.0, values.len()).unwrap();
        for (a, b) in out.iter().zip(&values) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
