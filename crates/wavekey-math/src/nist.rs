//! NIST SP 800-22 randomness tests used by the §VI-D evaluation.
//!
//! The paper concatenates the keys (and key-seeds) produced by each
//! volunteer into "key-chains" and applies the NIST *runs test*. We
//! implement the runs test exactly as specified in SP 800-22 §2.3, together
//! with the monobit frequency test (§2.1) that the runs test requires as a
//! prerequisite.

use serde::{Deserialize, Serialize};

/// Outcome of a randomness test: the test statistic and its p-value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomnessReport {
    /// The raw test statistic (test-specific meaning).
    pub statistic: f64,
    /// The p-value; sequences with `p >= 0.01` (or the paper's 0.05
    /// threshold) are considered random.
    pub p_value: f64,
}

/// NIST SP 800-22 §2.1 frequency (monobit) test.
///
/// Checks that the numbers of ones and zeros are approximately equal.
///
/// # Panics
///
/// Panics if `bits` is empty.
///
/// # Examples
///
/// ```
/// use wavekey_math::monobit_test;
/// let bits: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
/// let report = monobit_test(&bits);
/// assert!(report.p_value > 0.9); // perfectly balanced
/// ```
pub fn monobit_test(bits: &[bool]) -> RandomnessReport {
    assert!(!bits.is_empty(), "monobit test requires a non-empty sequence");
    let n = bits.len() as f64;
    let sum: i64 = bits.iter().map(|&b| if b { 1i64 } else { -1i64 }).sum();
    let s_obs = (sum as f64).abs() / n.sqrt();
    let p_value = erfc_local(s_obs / std::f64::consts::SQRT_2);
    RandomnessReport { statistic: s_obs, p_value }
}

/// NIST SP 800-22 §2.3 runs test.
///
/// A *run* is a maximal block of identical bits. The test checks whether
/// the number of runs matches the expectation for a random sequence with
/// the observed ones-proportion π.
///
/// Per the specification, when the prerequisite frequency condition
/// `|π − 1/2| ≥ 2/√n` fails, the test is not applicable and a p-value of
/// `0.0` is reported.
///
/// # Panics
///
/// Panics if `bits` has fewer than 2 elements.
pub fn runs_test(bits: &[bool]) -> RandomnessReport {
    assert!(bits.len() >= 2, "runs test requires at least two bits");
    let n = bits.len() as f64;
    let pi = bits.iter().filter(|&&b| b).count() as f64 / n;

    // Prerequisite: the sequence must pass the frequency condition.
    let tau = 2.0 / n.sqrt();
    if (pi - 0.5).abs() >= tau {
        return RandomnessReport { statistic: 0.0, p_value: 0.0 };
    }

    let v_obs = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count();
    let v_obs = v_obs as f64;
    let num = (v_obs - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    let p_value = erfc_local(num / den);
    RandomnessReport { statistic: v_obs, p_value }
}

/// Complementary error function (same approximation as `stats::erfc`,
/// duplicated privately to keep the module self-contained).
fn erfc_local(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let tau = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

/// Packs bytes into a bit vector, most-significant bit first.
///
/// Convenience for feeding established keys (byte strings) into the tests.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<bool> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push((b >> i) & 1 == 1);
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from NIST SP 800-22 §2.3.4:
    /// ε = 1001101011, n = 10 → V_obs = 7, P-value ≈ 0.147232.
    #[test]
    fn runs_test_nist_worked_example() {
        let bits: Vec<bool> = "1001101011".chars().map(|c| c == '1').collect();
        let report = runs_test(&bits);
        assert_eq!(report.statistic, 7.0);
        assert!((report.p_value - 0.147232).abs() < 1e-4, "p = {}", report.p_value);
    }

    /// The worked example from NIST SP 800-22 §2.1.4:
    /// ε = 1011010101, n = 10 → S_obs ≈ 0.632455, P-value ≈ 0.527089.
    #[test]
    fn monobit_test_nist_worked_example() {
        let bits: Vec<bool> = "1011010101".chars().map(|c| c == '1').collect();
        let report = monobit_test(&bits);
        assert!((report.statistic - 0.632455).abs() < 1e-5);
        assert!((report.p_value - 0.527089).abs() < 1e-4, "p = {}", report.p_value);
    }

    #[test]
    fn runs_test_rejects_constant_sequence() {
        let bits = vec![true; 1000];
        let report = runs_test(&bits);
        assert_eq!(report.p_value, 0.0);
    }

    #[test]
    fn runs_test_rejects_alternating_long_sequence() {
        // Perfect alternation has far too many runs: p-value ~ 0.
        let bits: Vec<bool> = (0..10_000).map(|i| i % 2 == 0).collect();
        let report = runs_test(&bits);
        assert!(report.p_value < 1e-6);
    }

    #[test]
    fn runs_test_accepts_lcg_bits() {
        // A simple 64-bit LCG produces bits that pass the runs test.
        let mut state: u64 = 0x1234_5678_9abc_def0;
        let mut bits = Vec::with_capacity(50_000);
        for _ in 0..50_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            bits.push((state >> 63) & 1 == 1);
        }
        let report = runs_test(&bits);
        assert!(report.p_value > 0.01, "p = {}", report.p_value);
    }

    #[test]
    fn bytes_to_bits_msb_first() {
        let bits = bytes_to_bits(&[0b1010_0001]);
        assert_eq!(
            bits,
            vec![true, false, true, false, false, false, false, true]
        );
    }

    #[test]
    #[should_panic(expected = "at least two bits")]
    fn runs_test_rejects_tiny_input() {
        runs_test(&[true]);
    }
}
