//! Descriptive statistics and the standard normal distribution.
//!
//! The equiprobable quantizer of WaveKey (Eq. (1) of the paper) needs the
//! normal CDF `Φ` and its inverse to place bin boundaries such that a
//! standard-normal latent element falls into each of the `N_b` bins with
//! equal probability. The hyper-parameter studies additionally need
//! percentiles (the 99th-percentile bit-mismatch rate determines the ECC
//! correction rate η) and Pearson correlation (used in tests to check that
//! the two modalities actually co-vary).

/// Arithmetic mean of a slice.
///
/// Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(wavekey_math::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance of a slice.
///
/// Returns `0.0` for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient between two equal-length slices.
///
/// Returns `0.0` when either input is constant (zero variance) or the
/// lengths differ.
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Returns the `p`-th percentile (0.0 ..= 100.0) of a slice using linear
/// interpolation between closest ranks.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile p out of range");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// The standard normal cumulative distribution function `Φ(x)`.
///
/// Implemented via the complementary error function with the Abramowitz &
/// Stegun 7.1.26 polynomial (|error| < 1.5e-7), which is ample for placing
/// quantizer bin boundaries.
///
/// # Examples
///
/// ```
/// let phi = wavekey_math::normal_cdf(0.0);
/// assert!((phi - 0.5).abs() < 1e-6);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function `erfc(x)` (Abramowitz & Stegun 7.1.26).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let tau = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

/// The inverse of the standard normal CDF, `Φ⁻¹(p)` (Acklam's algorithm,
/// refined with one Halley step; |relative error| < 1e-9).
///
/// Used to compute the equiprobable bin boundaries of Eq. (1):
/// `b_i = Φ⁻¹(i / N_b)`.
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
pub fn normal_inverse_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_inverse_cdf requires p in (0,1), got {p}");

    // Coefficients for the rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step using the forward CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Builds a histogram of `xs` over `bins` equal-width bins spanning
/// `[lo, hi]`. Values outside the range are clamped to the edge bins.
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = ((x - lo) / width).floor();
        let idx = idx.clamp(0.0, (bins - 1) as f64) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[5.0]), 5.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(variance(&[1.0]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_linear_relation_is_one() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let ys_neg: Vec<f64> = xs.iter().map(|x| -0.5 * x + 2.0).collect();
        assert!((pearson_correlation(&xs, &ys_neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_constant_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson_correlation(&xs, &ys), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
    }

    #[test]
    #[should_panic(expected = "percentile of empty slice")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn normal_cdf_known_values() {
        // The A&S 7.1.26 approximation is accurate to ~1.5e-7.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.0) - 0.841344746).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.158655254).abs() < 1e-6);
        assert!((normal_cdf(1.959963985) - 0.975).abs() < 1e-6);
    }

    #[test]
    fn inverse_cdf_roundtrip() {
        for &p in &[0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let x = normal_inverse_cdf(p);
            assert!((normal_cdf(x) - p).abs() < 1e-8, "p = {p}");
        }
    }

    #[test]
    fn inverse_cdf_symmetry() {
        for &p in &[0.05, 0.2, 0.4] {
            let a = normal_inverse_cdf(p);
            let b = normal_inverse_cdf(1.0 - p);
            assert!((a + b).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0,1)")]
    fn inverse_cdf_rejects_zero() {
        normal_inverse_cdf(0.0);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [-10.0, 0.1, 0.5, 0.9, 10.0];
        let h = histogram(&xs, 0.0, 1.0, 2);
        // -10 clamps into bin 0; 0.5 lands on the boundary and goes right.
        assert_eq!(h, vec![2, 3]);
    }
}
