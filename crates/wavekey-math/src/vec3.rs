//! 3-D vectors, 3×3 matrices, and unit quaternions.
//!
//! These types implement the pose arithmetic needed by the WaveKey mobile
//! pipeline (§IV-B of the paper): the initial device pose is estimated from
//! accelerometer + magnetometer measurements, subsequent poses are obtained
//! by integrating gyroscope angular velocities, and the measured specific
//! forces are rotated into the world frame to recover linear accelerations.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-dimensional vector of `f64` components.
///
/// # Examples
///
/// ```
/// use wavekey_math::Vec3;
/// let v = Vec3::new(3.0, 0.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit vector along x.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit vector along y.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit vector along z.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector pointing in the same direction.
    ///
    /// Returns [`Vec3::ZERO`] when the norm is smaller than `1e-12`, so the
    /// caller never divides by zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n < 1e-12 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Component-wise multiplication.
    pub fn hadamard(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x * other.x, self.y * other.y, self.z * other.z)
    }

    /// Distance between two points.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Returns the components as an array `[x, y, z]`.
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array `[x, y, z]`.
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// `true` if every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Vec3 {
        Vec3::from_array(a)
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> [f64; 3] {
        v.to_array()
    }
}

/// A 3×3 matrix in row-major order.
///
/// Used as a rotation matrix for device-to-world coordinate transforms.
///
/// # Examples
///
/// ```
/// use wavekey_math::{Mat3, Vec3};
/// let r = Mat3::rotation_z(std::f64::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [[f64; 3]; 3],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::identity()
    }
}

impl Mat3 {
    /// The identity matrix.
    pub fn identity() -> Mat3 {
        Mat3 { rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] }
    }

    /// Builds a matrix from three row vectors.
    pub fn from_rows(r0: Vec3, r1: Vec3, r2: Vec3) -> Mat3 {
        Mat3 { rows: [r0.to_array(), r1.to_array(), r2.to_array()] }
    }

    /// Builds a matrix from three column vectors.
    pub fn from_columns(c0: Vec3, c1: Vec3, c2: Vec3) -> Mat3 {
        Mat3 {
            rows: [
                [c0.x, c1.x, c2.x],
                [c0.y, c1.y, c2.y],
                [c0.z, c1.z, c2.z],
            ],
        }
    }

    /// Returns row `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::from_array(self.rows[i])
    }

    /// Returns column `j` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `j >= 3`.
    pub fn column(&self, j: usize) -> Vec3 {
        Vec3::new(self.rows[0][j], self.rows[1][j], self.rows[2][j])
    }

    /// Matrix transpose. For rotation matrices this is the inverse.
    pub fn transpose(&self) -> Mat3 {
        Mat3::from_rows(self.column(0), self.column(1), self.column(2))
    }

    /// Determinant.
    pub fn determinant(&self) -> f64 {
        let r = &self.rows;
        r[0][0] * (r[1][1] * r[2][2] - r[1][2] * r[2][1])
            - r[0][1] * (r[1][0] * r[2][2] - r[1][2] * r[2][0])
            + r[0][2] * (r[1][0] * r[2][1] - r[1][1] * r[2][0])
    }

    /// Rotation about the x axis by `angle` radians.
    pub fn rotation_x(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3 { rows: [[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]] }
    }

    /// Rotation about the y axis by `angle` radians.
    pub fn rotation_y(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3 { rows: [[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]] }
    }

    /// Rotation about the z axis by `angle` radians.
    pub fn rotation_z(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3 { rows: [[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]] }
    }

    /// Eigen-decomposition of a *symmetric* matrix by cyclic Jacobi
    /// rotations: returns `(eigenvalues, eigenvectors)` with eigenvalues
    /// sorted descending and the i-th eigenvector in column i.
    ///
    /// Used to find the dominant motion axis of a gesture window (the
    /// PCA canonicalization of the IMU representation).
    ///
    /// # Panics
    ///
    /// Debug-panics if the matrix is not symmetric within `1e-9`.
    pub fn symmetric_eigen(&self) -> ([f64; 3], Mat3) {
        debug_assert!(
            (self.rows[0][1] - self.rows[1][0]).abs() < 1e-9
                && (self.rows[0][2] - self.rows[2][0]).abs() < 1e-9
                && (self.rows[1][2] - self.rows[2][1]).abs() < 1e-9,
            "symmetric_eigen requires a symmetric matrix"
        );
        let mut a = *self;
        let mut v = Mat3::identity();
        for _sweep in 0..50 {
            // Largest off-diagonal element.
            let mut off = 0.0f64;
            for i in 0..3 {
                for j in (i + 1)..3 {
                    off = off.max(a.rows[i][j].abs());
                }
            }
            if off < 1e-12 {
                break;
            }
            for p in 0..3 {
                for q in (p + 1)..3 {
                    if a.rows[p][q].abs() < 1e-15 {
                        continue;
                    }
                    // Jacobi rotation annihilating a[p][q].
                    let theta = (a.rows[q][q] - a.rows[p][p]) / (2.0 * a.rows[p][q]);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    let mut rot = Mat3::identity();
                    rot.rows[p][p] = c;
                    rot.rows[q][q] = c;
                    rot.rows[p][q] = s;
                    rot.rows[q][p] = -s;
                    a = rot.transpose() * a * rot;
                    v = v * rot;
                }
            }
        }
        let mut pairs: Vec<(f64, Vec3)> =
            (0..3).map(|i| (a.rows[i][i], v.column(i))).collect();
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite eigenvalues"));
        let values = [pairs[0].0, pairs[1].0, pairs[2].0];
        let vectors = Mat3::from_columns(pairs[0].1, pairs[1].1, pairs[2].1);
        (values, vectors)
    }

    /// `true` if `self` is numerically orthonormal with determinant +1.
    pub fn is_rotation(&self, tol: f64) -> bool {
        let should_be_identity = *self * self.transpose();
        let id = Mat3::identity();
        let mut err: f64 = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                err = err.max((should_be_identity.rows[i][j] - id.rows[i][j]).abs());
            }
        }
        err < tol && (self.determinant() - 1.0).abs() < tol
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul<Mat3> for Mat3 {
    type Output = Mat3;
    fn mul(self, o: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = self.row(i).dot(o.column(j));
            }
        }
        Mat3 { rows: out }
    }
}

/// A unit quaternion representing a 3-D rotation.
///
/// Quaternions are the pose representation used when integrating gyroscope
/// angular velocities: they accumulate rotation without gimbal lock and can
/// be renormalized cheaply after each step.
///
/// # Examples
///
/// ```
/// use wavekey_math::{Quaternion, Vec3};
/// let q = Quaternion::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2);
/// let v = q.rotate(Vec3::X);
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quaternion {
    /// Scalar part.
    pub w: f64,
    /// Vector part, x.
    pub x: f64,
    /// Vector part, y.
    pub y: f64,
    /// Vector part, z.
    pub z: f64,
}

impl Default for Quaternion {
    fn default() -> Self {
        Quaternion::identity()
    }
}

impl Quaternion {
    /// The identity rotation.
    pub fn identity() -> Quaternion {
        Quaternion { w: 1.0, x: 0.0, y: 0.0, z: 0.0 }
    }

    /// Creates a quaternion from raw components (not normalized).
    pub fn new(w: f64, x: f64, y: f64, z: f64) -> Quaternion {
        Quaternion { w, x, y, z }
    }

    /// Rotation of `angle` radians about the (normalized) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Quaternion {
        let axis = axis.normalized();
        let (s, c) = (angle / 2.0).sin_cos();
        Quaternion { w: c, x: axis.x * s, y: axis.y * s, z: axis.z * s }
    }

    /// Quaternion norm.
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalized (unit) quaternion.
    ///
    /// Returns the identity when the norm is smaller than `1e-12`.
    pub fn normalized(self) -> Quaternion {
        let n = self.norm();
        if n < 1e-12 {
            Quaternion::identity()
        } else {
            Quaternion { w: self.w / n, x: self.x / n, y: self.y / n, z: self.z / n }
        }
    }

    /// The conjugate (inverse rotation for unit quaternions).
    pub fn conjugate(self) -> Quaternion {
        Quaternion { w: self.w, x: -self.x, y: -self.y, z: -self.z }
    }

    /// Hamilton product `self * other` (apply `other` first, then `self`).
    pub fn mul(self, o: Quaternion) -> Quaternion {
        Quaternion {
            w: self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            x: self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            y: self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            z: self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        }
    }

    /// Rotates a vector by this quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = q * (0, v) * q⁻¹, expanded without constructing temporaries.
        let u = Vec3::new(self.x, self.y, self.z);
        let s = self.w;
        u * (2.0 * u.dot(v)) + v * (s * s - u.dot(u)) + u.cross(v) * (2.0 * s)
    }

    /// Converts to a rotation matrix.
    pub fn to_matrix(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3 {
            rows: [
                [
                    1.0 - 2.0 * (y * y + z * z),
                    2.0 * (x * y - w * z),
                    2.0 * (x * z + w * y),
                ],
                [
                    2.0 * (x * y + w * z),
                    1.0 - 2.0 * (x * x + z * z),
                    2.0 * (y * z - w * x),
                ],
                [
                    2.0 * (x * z - w * y),
                    2.0 * (y * z + w * x),
                    1.0 - 2.0 * (x * x + y * y),
                ],
            ],
        }
    }

    /// Builds a quaternion from a rotation matrix (Shepperd's method).
    pub fn from_matrix(m: &Mat3) -> Quaternion {
        let r = &m.rows;
        let trace = r[0][0] + r[1][1] + r[2][2];
        let q = if trace > 0.0 {
            let s = (trace + 1.0).sqrt() * 2.0;
            Quaternion {
                w: 0.25 * s,
                x: (r[2][1] - r[1][2]) / s,
                y: (r[0][2] - r[2][0]) / s,
                z: (r[1][0] - r[0][1]) / s,
            }
        } else if r[0][0] > r[1][1] && r[0][0] > r[2][2] {
            let s = (1.0 + r[0][0] - r[1][1] - r[2][2]).sqrt() * 2.0;
            Quaternion {
                w: (r[2][1] - r[1][2]) / s,
                x: 0.25 * s,
                y: (r[0][1] + r[1][0]) / s,
                z: (r[0][2] + r[2][0]) / s,
            }
        } else if r[1][1] > r[2][2] {
            let s = (1.0 + r[1][1] - r[0][0] - r[2][2]).sqrt() * 2.0;
            Quaternion {
                w: (r[0][2] - r[2][0]) / s,
                x: (r[0][1] + r[1][0]) / s,
                y: 0.25 * s,
                z: (r[1][2] + r[2][1]) / s,
            }
        } else {
            let s = (1.0 + r[2][2] - r[0][0] - r[1][1]).sqrt() * 2.0;
            Quaternion {
                w: (r[1][0] - r[0][1]) / s,
                x: (r[0][2] + r[2][0]) / s,
                y: (r[1][2] + r[2][1]) / s,
                z: 0.25 * s,
            }
        };
        q.normalized()
    }

    /// Integrates a body-frame angular velocity `omega` (rad/s) over `dt`
    /// seconds, returning the new orientation.
    ///
    /// This is the dead-reckoning step of §IV-B: during the two-second
    /// gesture the gyroscope drift is negligible, so simple first-order
    /// integration (axis-angle per step) suffices and no Kalman filter is
    /// needed.
    pub fn integrate(self, omega: Vec3, dt: f64) -> Quaternion {
        let angle = omega.norm() * dt;
        if angle < 1e-15 {
            return self;
        }
        let dq = Quaternion::from_axis_angle(omega, angle);
        self.mul(dq).normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 32.0);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.5, 4.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn vec3_norm_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert!((v.normalized().norm() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn vec3_lerp_endpoints() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(2.0, 3.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.5, 2.0, 2.5));
    }

    #[test]
    fn mat3_identity_mul() {
        let v = Vec3::new(1.0, -2.0, 0.5);
        assert_eq!(Mat3::identity() * v, v);
    }

    #[test]
    fn mat3_rotation_z_quarter_turn() {
        let r = Mat3::rotation_z(FRAC_PI_2);
        let v = r * Vec3::X;
        assert!((v - Vec3::Y).norm() < 1e-12);
        assert!(r.is_rotation(1e-12));
    }

    #[test]
    fn mat3_transpose_is_inverse_for_rotations() {
        let r = Mat3::rotation_x(0.3) * Mat3::rotation_y(-1.1) * Mat3::rotation_z(2.2);
        let rt = r.transpose();
        let prod = r * rt;
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((prod.rows[i][j] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mat3_determinant_of_rotation_is_one() {
        let r = Mat3::rotation_x(0.7) * Mat3::rotation_z(-0.4);
        assert!((r.determinant() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_eigen_diagonal() {
        let m = Mat3 { rows: [[3.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 2.0]] };
        let (vals, vecs) = m.symmetric_eigen();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 2.0).abs() < 1e-10);
        assert!((vals[2] - 1.0).abs() < 1e-10);
        // First eigenvector is ±x.
        assert!(vecs.column(0).cross(Vec3::X).norm() < 1e-9);
    }

    #[test]
    fn symmetric_eigen_reconstructs() {
        // A = V Λ Vᵀ must reproduce the input for a random symmetric
        // matrix.
        let m = Mat3 {
            rows: [[4.0, 1.2, -0.7], [1.2, 2.5, 0.3], [-0.7, 0.3, 1.1]],
        };
        let (vals, v) = m.symmetric_eigen();
        let lambda = Mat3 {
            rows: [
                [vals[0], 0.0, 0.0],
                [0.0, vals[1], 0.0],
                [0.0, 0.0, vals[2]],
            ],
        };
        let rebuilt = v * lambda * v.transpose();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (rebuilt.rows[i][j] - m.rows[i][j]).abs() < 1e-9,
                    "({i},{j}): {} vs {}",
                    rebuilt.rows[i][j],
                    m.rows[i][j]
                );
            }
        }
        // Eigenvalues sorted descending.
        assert!(vals[0] >= vals[1] && vals[1] >= vals[2]);
    }

    #[test]
    fn symmetric_eigen_orthonormal_vectors() {
        let m = Mat3 {
            rows: [[2.0, -0.5, 0.1], [-0.5, 3.0, 0.8], [0.1, 0.8, 1.5]],
        };
        let (_, v) = m.symmetric_eigen();
        for i in 0..3 {
            assert!((v.column(i).norm() - 1.0).abs() < 1e-9);
            for j in (i + 1)..3 {
                assert!(v.column(i).dot(v.column(j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn quaternion_rotate_matches_matrix() {
        let q = Quaternion::from_axis_angle(Vec3::new(1.0, 1.0, 0.3), 1.234);
        let m = q.to_matrix();
        let v = Vec3::new(0.2, -0.7, 1.5);
        assert!((q.rotate(v) - m * v).norm() < 1e-12);
    }

    #[test]
    fn quaternion_roundtrip_through_matrix() {
        let q = Quaternion::from_axis_angle(Vec3::new(-0.4, 0.9, 0.1), 2.5);
        let q2 = Quaternion::from_matrix(&q.to_matrix());
        // q and -q represent the same rotation.
        let same = (q.w - q2.w).abs() < 1e-9 || (q.w + q2.w).abs() < 1e-9;
        assert!(same);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!((q.rotate(v) - q2.rotate(v)).norm() < 1e-9);
    }

    #[test]
    fn quaternion_integration_accumulates_rotation() {
        // Integrate a constant π/2 rad/s rotation about z for one second.
        let mut q = Quaternion::identity();
        let omega = Vec3::new(0.0, 0.0, FRAC_PI_2);
        let steps = 1000;
        for _ in 0..steps {
            q = q.integrate(omega, 1.0 / steps as f64);
        }
        let v = q.rotate(Vec3::X);
        assert!((v - Vec3::Y).norm() < 1e-6);
    }

    #[test]
    fn quaternion_conjugate_inverts() {
        let q = Quaternion::from_axis_angle(Vec3::new(0.3, -0.2, 0.8), PI / 3.0);
        let v = Vec3::new(0.5, 0.5, -1.0);
        let back = q.conjugate().rotate(q.rotate(v));
        assert!((back - v).norm() < 1e-12);
    }

    #[test]
    fn quaternion_integrate_zero_omega_is_noop() {
        let q = Quaternion::from_axis_angle(Vec3::Y, 0.5);
        let q2 = q.integrate(Vec3::ZERO, 0.01);
        assert_eq!(q, q2);
    }
}
