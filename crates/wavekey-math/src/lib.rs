//! Mathematical substrate for the WaveKey reproduction.
//!
//! This crate provides the numeric building blocks every other WaveKey crate
//! relies on:
//!
//! * [`vec3`] — 3-D vectors, 3×3 matrices, and unit quaternions used for the
//!   IMU pose estimation and coordinate transforms of §IV-B of the paper.
//! * [`stats`] — descriptive statistics, Pearson correlation, and the normal
//!   distribution (CDF `Φ` and its inverse) that drive the equiprobable
//!   quantizer of Eq. (1).
//! * [`interp`] — linear resampling used to align gyroscope, accelerometer,
//!   and magnetometer streams onto the common 100 Hz grid.
//! * [`nist`] — the NIST SP 800-22 runs test (and the monobit frequency
//!   prerequisite) used by the §VI-D randomness evaluation.
//! * [`entropy`] — Shannon/min-entropy rate estimators complementing the
//!   NIST tests for key-material quality.
//!
//! Everything is implemented from scratch on `f64`; no external numeric
//! dependencies.

pub mod entropy;
pub mod interp;
pub mod nist;
pub mod stats;
pub mod vec3;

pub use entropy::{min_entropy_rate, shannon_entropy_rate};
pub use interp::{resample_linear, resample_linear_into, Interp1d};
pub use nist::{monobit_test, runs_test, RandomnessReport};
pub use stats::{
    mean, normal_cdf, normal_inverse_cdf, pearson_correlation, percentile, std_dev, variance,
};
pub use vec3::{Mat3, Quaternion, Vec3};
