//! Entropy estimators for bit sequences.
//!
//! The §VI-D randomness evaluation uses the NIST runs test; these
//! estimators complement it with Shannon and min-entropy rates over
//! sliding blocks, which is how key-material quality is usually
//! quantified (a key-seed chain can pass a frequency test while having
//! low per-block entropy — exactly the failure mode EXPERIMENTS.md
//! documents for this reproduction's seeds).

use std::collections::HashMap;

/// Shannon entropy rate (bits per bit) estimated from non-overlapping
/// `block_bits`-bit blocks. 1.0 means ideal randomness at this block
/// size.
///
/// # Panics
///
/// Panics if `block_bits` is 0 or larger than 24 (table blow-up), or if
/// fewer than one full block is supplied.
pub fn shannon_entropy_rate(bits: &[bool], block_bits: usize) -> f64 {
    assert!((1..=24).contains(&block_bits), "block size out of range");
    let blocks = bits.len() / block_bits;
    assert!(blocks > 0, "need at least one full block");
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for b in 0..blocks {
        let mut v = 0u32;
        for i in 0..block_bits {
            v = (v << 1) | u32::from(bits[b * block_bits + i]);
        }
        *counts.entry(v).or_insert(0) += 1;
    }
    let n = blocks as f64;
    let h: f64 = counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum();
    h / block_bits as f64
}

/// Min-entropy rate (bits per bit) from non-overlapping blocks:
/// `−log₂(p_max) / block_bits`. This is the conservative measure
/// cryptography cares about.
///
/// # Panics
///
/// Same as [`shannon_entropy_rate`].
pub fn min_entropy_rate(bits: &[bool], block_bits: usize) -> f64 {
    assert!((1..=24).contains(&block_bits), "block size out of range");
    let blocks = bits.len() / block_bits;
    assert!(blocks > 0, "need at least one full block");
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for b in 0..blocks {
        let mut v = 0u32;
        for i in 0..block_bits {
            v = (v << 1) | u32::from(bits[b * block_bits + i]);
        }
        *counts.entry(v).or_insert(0) += 1;
    }
    let p_max = counts.values().copied().max().unwrap_or(0) as f64 / blocks as f64;
    -p_max.log2() / block_bits as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_bits(n: usize, mut state: u64) -> Vec<bool> {
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 63) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn random_bits_have_high_entropy() {
        let bits = lcg_bits(80_000, 42);
        let h = shannon_entropy_rate(&bits, 8);
        assert!(h > 0.98, "shannon rate {h}");
        let hmin = min_entropy_rate(&bits, 8);
        assert!(hmin > 0.7, "min-entropy rate {hmin}");
    }

    #[test]
    fn constant_bits_have_zero_entropy() {
        let bits = vec![true; 1024];
        assert!(shannon_entropy_rate(&bits, 8) < 1e-9);
        assert!(min_entropy_rate(&bits, 8) < 1e-9);
    }

    #[test]
    fn periodic_bits_have_low_entropy() {
        let bits: Vec<bool> = (0..4096).map(|i| i % 4 == 0).collect();
        let h = shannon_entropy_rate(&bits, 8);
        assert!(h < 0.3, "periodic shannon rate {h}");
    }

    #[test]
    fn min_entropy_never_exceeds_shannon() {
        for seed in [1u64, 7, 99] {
            let bits = lcg_bits(20_000, seed);
            let h = shannon_entropy_rate(&bits, 6);
            let hmin = min_entropy_rate(&bits, 6);
            assert!(hmin <= h + 1e-9, "hmin {hmin} > h {h}");
        }
    }

    #[test]
    #[should_panic(expected = "block size out of range")]
    fn rejects_zero_block() {
        shannon_entropy_rate(&[true; 16], 0);
    }
}
