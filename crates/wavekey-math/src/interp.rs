//! Linear interpolation and resampling.
//!
//! §IV-B of the paper aligns the gyroscope, accelerometer, and magnetometer
//! streams onto a common 100 Hz grid through interpolation; the same
//! primitive resamples simulated sensor streams that arrive with timestamp
//! jitter.

/// A piecewise-linear interpolant over `(t, value)` samples.
///
/// # Examples
///
/// ```
/// use wavekey_math::Interp1d;
/// let interp = Interp1d::new(vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 0.0]).unwrap();
/// assert_eq!(interp.eval(0.5), 5.0);
/// assert_eq!(interp.eval(1.5), 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct Interp1d {
    ts: Vec<f64>,
    values: Vec<f64>,
}

/// Error constructing an [`Interp1d`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The time and value vectors have different lengths.
    LengthMismatch,
    /// Fewer than two samples were provided.
    TooFewSamples,
    /// The time vector is not strictly increasing.
    NonMonotonicTime,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::LengthMismatch => write!(f, "time and value lengths differ"),
            InterpError::TooFewSamples => write!(f, "need at least two samples"),
            InterpError::NonMonotonicTime => write!(f, "time vector must be strictly increasing"),
        }
    }
}

impl std::error::Error for InterpError {}

impl Interp1d {
    /// Builds an interpolant from strictly increasing timestamps `ts` and
    /// their `values`.
    ///
    /// # Errors
    ///
    /// Returns an error when the lengths differ, fewer than two samples are
    /// given, or the timestamps are not strictly increasing.
    pub fn new(ts: Vec<f64>, values: Vec<f64>) -> Result<Self, InterpError> {
        validate_samples(&ts, &values)?;
        Ok(Interp1d { ts, values })
    }

    /// Evaluates the interpolant at time `t`.
    ///
    /// Outside the sample range the boundary value is held (zero-order
    /// extrapolation), which matches how short sensor streams are padded.
    pub fn eval(&self, t: f64) -> f64 {
        eval_samples(&self.ts, &self.values, t)
    }

    /// Evaluates the interpolant at many times at once.
    pub fn eval_many(&self, ts: &[f64]) -> Vec<f64> {
        ts.iter().map(|&t| self.eval(t)).collect()
    }

    /// The time range covered by the samples.
    pub fn domain(&self) -> (f64, f64) {
        (self.ts[0], self.ts[self.ts.len() - 1])
    }
}

/// Shared sample validation for [`Interp1d::new`] and the borrow-based
/// resampling entry points.
fn validate_samples(ts: &[f64], values: &[f64]) -> Result<(), InterpError> {
    if ts.len() != values.len() {
        return Err(InterpError::LengthMismatch);
    }
    if ts.len() < 2 {
        return Err(InterpError::TooFewSamples);
    }
    if ts.windows(2).any(|w| w[1] <= w[0]) {
        return Err(InterpError::NonMonotonicTime);
    }
    Ok(())
}

/// Piecewise-linear evaluation over borrowed samples; the single
/// implementation behind [`Interp1d::eval`] and [`resample_linear_into`],
/// so the owned and borrowed paths are bit-identical by construction.
fn eval_samples(ts: &[f64], values: &[f64], t: f64) -> f64 {
    if t <= ts[0] {
        return values[0];
    }
    let last = ts.len() - 1;
    if t >= ts[last] {
        return values[last];
    }
    // Binary search for the segment containing t.
    let idx = match ts.binary_search_by(|probe| probe.partial_cmp(&t).unwrap()) {
        Ok(i) => return values[i],
        Err(i) => i, // ts[i-1] < t < ts[i]
    };
    let (t0, t1) = (ts[idx - 1], ts[idx]);
    let (v0, v1) = (values[idx - 1], values[idx]);
    let frac = (t - t0) / (t1 - t0);
    v0 + (v1 - v0) * frac
}

/// Resamples `(ts, values)` onto a uniform grid of `n` points at `rate_hz`
/// starting at `start`.
///
/// This is the §IV-B alignment step: simulated sensor streams arrive with
/// timestamp jitter and are interpolated onto the exact 100 Hz grid the
/// paper assumes.
///
/// # Errors
///
/// Propagates [`InterpError`] from sample validation.
pub fn resample_linear(
    ts: &[f64],
    values: &[f64],
    start: f64,
    rate_hz: f64,
    n: usize,
) -> Result<Vec<f64>, InterpError> {
    let mut out = Vec::new();
    resample_linear_into(ts, values, start, rate_hz, n, &mut out)?;
    Ok(out)
}

/// Allocation-free variant of [`resample_linear`]: borrows the sample
/// arrays instead of cloning them and writes the grid into `out`
/// (cleared first, capacity reused). The hot pipelines call this with
/// per-thread scratch buffers so steady-state processing allocates
/// nothing per invocation.
///
/// # Errors
///
/// Propagates [`InterpError`] from sample validation; on error `out` is
/// left cleared.
pub fn resample_linear_into(
    ts: &[f64],
    values: &[f64],
    start: f64,
    rate_hz: f64,
    n: usize,
    out: &mut Vec<f64>,
) -> Result<(), InterpError> {
    out.clear();
    validate_samples(ts, values)?;
    let dt = 1.0 / rate_hz;
    out.reserve(n);
    out.extend((0..n).map(|i| eval_samples(ts, values, start + i as f64 * dt)));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interp_exact_at_samples() {
        let interp = Interp1d::new(vec![0.0, 1.0, 3.0], vec![1.0, 2.0, -2.0]).unwrap();
        assert_eq!(interp.eval(0.0), 1.0);
        assert_eq!(interp.eval(1.0), 2.0);
        assert_eq!(interp.eval(3.0), -2.0);
    }

    #[test]
    fn interp_midpoints() {
        let interp = Interp1d::new(vec![0.0, 2.0], vec![0.0, 4.0]).unwrap();
        assert_eq!(interp.eval(1.0), 2.0);
        assert_eq!(interp.eval(0.5), 1.0);
    }

    #[test]
    fn interp_holds_boundaries() {
        let interp = Interp1d::new(vec![1.0, 2.0], vec![5.0, 7.0]).unwrap();
        assert_eq!(interp.eval(0.0), 5.0);
        assert_eq!(interp.eval(3.0), 7.0);
    }

    #[test]
    fn interp_rejects_bad_input() {
        assert_eq!(
            Interp1d::new(vec![0.0], vec![1.0]).unwrap_err(),
            InterpError::TooFewSamples
        );
        assert_eq!(
            Interp1d::new(vec![0.0, 1.0], vec![1.0]).unwrap_err(),
            InterpError::LengthMismatch
        );
        assert_eq!(
            Interp1d::new(vec![0.0, 0.0], vec![1.0, 2.0]).unwrap_err(),
            InterpError::NonMonotonicTime
        );
    }

    #[test]
    fn resample_produces_uniform_grid() {
        // y = 2t sampled non-uniformly, resampled at 10 Hz.
        let ts = vec![0.0, 0.13, 0.29, 0.55, 1.0];
        let values: Vec<f64> = ts.iter().map(|t| 2.0 * t).collect();
        let out = resample_linear(&ts, &values, 0.0, 10.0, 11).unwrap();
        for (i, v) in out.iter().enumerate() {
            let t = i as f64 * 0.1;
            assert!((v - 2.0 * t).abs() < 1e-12, "t = {t}");
        }
    }

    #[test]
    fn resample_into_matches_owned_and_reuses_buffer() {
        let ts = vec![0.0, 0.13, 0.29, 0.55, 1.0];
        let values: Vec<f64> = ts.iter().map(|t| f64::sin(*t) * 3.0).collect();
        let owned = resample_linear(&ts, &values, 0.05, 25.0, 20).unwrap();
        let mut out = vec![99.0; 4]; // stale contents must be discarded
        resample_linear_into(&ts, &values, 0.05, 25.0, 20, &mut out).unwrap();
        assert_eq!(out, owned);
        // Errors clear the buffer rather than leaving stale data.
        assert!(resample_linear_into(&ts[..1], &values[..1], 0.0, 1.0, 3, &mut out).is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn eval_many_matches_eval() {
        let interp = Interp1d::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 4.0]).unwrap();
        let ts = [0.25, 0.75, 1.5];
        let many = interp.eval_many(&ts);
        for (t, v) in ts.iter().zip(&many) {
            assert_eq!(interp.eval(*t), *v);
        }
    }
}
