//! Property-based tests for the gesture and sensor simulation.

use proptest::prelude::*;
use wavekey_imu::gesture::{GestureConfig, GestureGenerator, VolunteerId};
use wavekey_imu::sensors::{sample_imu, DeviceModel};
use wavekey_imu::GRAVITY;
use wavekey_math::Vec3;

proptest! {
    // Gesture generation is comparatively expensive; keep the case count
    // moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gestures_stay_at_arm_scale(seed in any::<u64>(), volunteer in 0u32..6) {
        let gesture = GestureGenerator::new(VolunteerId(volunteer), seed)
            .generate(&GestureConfig::default());
        let start = gesture.position_at(0.0);
        let mut max_disp = 0.0f64;
        let mut t = 0.0;
        while t < gesture.duration() {
            max_disp = max_disp.max(gesture.position_at(t).distance(start));
            t += 0.05;
        }
        // The recentering spring keeps the hand within arm's reach.
        prop_assert!(max_disp < 2.5, "hand wandered {max_disp} m");
        prop_assert!(max_disp > 0.005, "hand barely moved: {max_disp} m");
    }

    #[test]
    fn gestures_pause_then_move(seed in any::<u64>()) {
        let config = GestureConfig::default();
        let gesture = GestureGenerator::new(VolunteerId(0), seed).generate(&config);
        // Still during the pause.
        prop_assert!(gesture.acceleration_at(config.pause * 0.5).norm() < 1e-9);
        // Active afterwards: total energy must be significant.
        let mut energy = 0.0;
        let mut t = config.pause + 0.3;
        while t < gesture.duration() {
            energy += gesture.acceleration_at(t).norm_squared();
            t += 0.05;
        }
        prop_assert!(energy > 1.0, "gesture energy {energy}");
    }

    #[test]
    fn rotated_gesture_preserves_invariants(seed in any::<u64>(), yaw in -3.0f64..3.0) {
        let gesture = GestureGenerator::new(VolunteerId(1), seed)
            .generate(&GestureConfig::default());
        let rotated = gesture.rotated_yaw(yaw);
        for &t in &[0.7, 1.3, 2.1] {
            // Norms of world quantities are rotation-invariant.
            prop_assert!(
                (gesture.acceleration_at(t).norm() - rotated.acceleration_at(t).norm()).abs()
                    < 1e-9
            );
            // Body-frame angular velocity is untouched.
            prop_assert!((gesture.omega_at(t) - rotated.omega_at(t)).norm() < 1e-12);
            // Vertical (z) components are preserved by yaw rotations.
            prop_assert!(
                (gesture.acceleration_at(t).z - rotated.acceleration_at(t).z).abs() < 1e-9
            );
        }
    }

    #[test]
    fn imu_recordings_are_physical(seed in any::<u64>(), device in 0usize..4) {
        let gesture = GestureGenerator::new(VolunteerId(2), seed)
            .generate(&GestureConfig::default());
        let rec = sample_imu(&gesture, &DeviceModel::ALL[device].spec(), seed);
        prop_assert!(!rec.is_empty());
        // Quiet-period specific force reads gravity.
        let early: Vec<Vec3> = rec
            .ts
            .iter()
            .zip(&rec.accel)
            .filter(|(t, _)| **t < 0.3)
            .map(|(_, a)| *a)
            .collect();
        prop_assume!(!early.is_empty());
        let mean = early.iter().fold(Vec3::ZERO, |s, &a| s + a) / early.len() as f64;
        prop_assert!((mean.norm() - GRAVITY).abs() < 0.5, "|f| = {}", mean.norm());
        // Timestamps strictly increase.
        for w in rec.ts.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }
}
