//! Deterministic sensing-layer fault injection for IMU recordings.
//!
//! The wire-layer chaos suite (`wavekey-core::fault`) stresses the
//! protocol; this module stresses what comes *before* it — the raw
//! sensor stream feeding [`crate::pipeline::process_imu`]. Two fault
//! families the paper's hardware exhibits:
//!
//! * **Sample dropout bursts** — the OS preempts the sensor service and a
//!   contiguous run of samples never lands; timestamps stay strictly
//!   increasing but gap.
//! * **Accelerometer clipping** — energetic gestures saturate the ±4 g
//!   range of consumer parts, flattening the specific-force peaks.
//!
//! Injection is a pure function of `(recording, config, seed)`: the same
//! inputs always produce the same faulted recording, so chaos soaks are
//! replayable sample-for-sample.

use crate::sensors::ImuRecording;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What to inject into an IMU recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuFaultConfig {
    /// Number of contiguous dropout bursts to carve out.
    pub dropout_bursts: usize,
    /// Samples removed per burst.
    pub burst_len: usize,
    /// Saturate every accelerometer component to `±clip_accel` (m/s²);
    /// `None` leaves the accelerometer untouched.
    pub clip_accel: Option<f64>,
}

impl ImuFaultConfig {
    /// No faults: injection returns the recording unchanged.
    pub fn none() -> ImuFaultConfig {
        ImuFaultConfig { dropout_bursts: 0, burst_len: 0, clip_accel: None }
    }

    /// The reference chaos mixture used by the `fault_soak` bench: two
    /// ~50 ms dropout bursts (5 samples at 100 Hz) and clipping at 2 g —
    /// harsh but inside what the interpolating pipeline absorbs.
    pub fn reference() -> ImuFaultConfig {
        ImuFaultConfig { dropout_bursts: 2, burst_len: 5, clip_accel: Some(2.0 * crate::GRAVITY) }
    }
}

impl Default for ImuFaultConfig {
    fn default() -> ImuFaultConfig {
        ImuFaultConfig::none()
    }
}

/// Applies the configured faults to a recording, deterministically in
/// `(recording, config, seed)`. Timestamps, accelerometer, gyroscope,
/// and magnetometer streams stay index-aligned: dropout removes the same
/// sample from all four.
pub fn inject_imu_faults(
    recording: &ImuRecording,
    config: &ImuFaultConfig,
    seed: u64,
) -> ImuRecording {
    let mut out = recording.clone();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD20_B0_07);

    if let Some(clip) = config.clip_accel {
        for a in &mut out.accel {
            a.x = a.x.clamp(-clip, clip);
            a.y = a.y.clamp(-clip, clip);
            a.z = a.z.clamp(-clip, clip);
        }
    }

    if config.dropout_bursts > 0 && config.burst_len > 0 && !out.is_empty() {
        let mut keep = vec![true; out.len()];
        for _ in 0..config.dropout_bursts {
            // Never let the bursts consume the whole recording.
            let start = rng.gen_range(0..out.len());
            for flag in keep.iter_mut().skip(start).take(config.burst_len) {
                *flag = false;
            }
        }
        if keep.iter().filter(|&&k| k).count() >= 2 {
            let filter = |v: &[f64]| -> Vec<f64> {
                v.iter().zip(&keep).filter(|(_, &k)| k).map(|(x, _)| *x).collect()
            };
            out.ts = filter(&out.ts);
            out.accel = out.accel.iter().zip(&keep).filter(|(_, &k)| k).map(|(v, _)| *v).collect();
            out.gyro = out.gyro.iter().zip(&keep).filter(|(_, &k)| k).map(|(v, _)| *v).collect();
            out.mag = out.mag.iter().zip(&keep).filter(|(_, &k)| k).map(|(v, _)| *v).collect();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gesture::{GestureConfig, GestureGenerator, VolunteerId};
    use crate::pipeline::{process_imu, ImuPipelineConfig};
    use crate::sensors::{sample_imu, DeviceModel};

    fn recording(seed: u64) -> ImuRecording {
        let mut generator = GestureGenerator::new(VolunteerId(0), seed);
        let gesture = generator.generate(&GestureConfig::default());
        sample_imu(&gesture, &DeviceModel::GalaxyWatch.spec(), seed)
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        let rec = recording(11);
        let config = ImuFaultConfig::reference();
        let a = inject_imu_faults(&rec, &config, 5);
        let b = inject_imu_faults(&rec, &config, 5);
        assert_eq!(a, b);
        let c = inject_imu_faults(&rec, &config, 6);
        assert_ne!(a, c, "different seeds place different bursts");
    }

    #[test]
    fn none_config_is_the_identity() {
        let rec = recording(12);
        assert_eq!(inject_imu_faults(&rec, &ImuFaultConfig::none(), 0), rec);
    }

    #[test]
    fn dropout_removes_aligned_samples_and_keeps_order() {
        let rec = recording(13);
        let config = ImuFaultConfig { dropout_bursts: 3, burst_len: 7, clip_accel: None };
        let faulted = inject_imu_faults(&rec, &config, 99);
        assert!(faulted.len() < rec.len());
        assert!(faulted.len() >= rec.len().saturating_sub(3 * 7));
        assert_eq!(faulted.ts.len(), faulted.accel.len());
        assert_eq!(faulted.ts.len(), faulted.gyro.len());
        assert_eq!(faulted.ts.len(), faulted.mag.len());
        assert!(
            faulted.ts.windows(2).all(|w| w[0] <= w[1]),
            "timestamps stay monotone across gaps"
        );
    }

    #[test]
    fn clipping_bounds_every_accel_component() {
        let rec = recording(14);
        let clip = 0.5 * crate::GRAVITY; // aggressive: guaranteed to bite (gravity alone exceeds it)
        let config = ImuFaultConfig { dropout_bursts: 0, burst_len: 0, clip_accel: Some(clip) };
        let faulted = inject_imu_faults(&rec, &config, 0);
        assert_eq!(faulted.len(), rec.len());
        assert!(faulted
            .accel
            .iter()
            .all(|a| a.x.abs() <= clip && a.y.abs() <= clip && a.z.abs() <= clip));
        assert_ne!(faulted.accel, rec.accel, "clipping actually altered the stream");
    }

    #[test]
    fn pipeline_survives_reference_faults() {
        // The faulted stream must never panic the pipeline: it either
        // processes (the interpolator bridges the gaps) or fails with the
        // pipeline's typed error.
        for seed in 0..8u64 {
            let rec = recording(20 + seed);
            let faulted = inject_imu_faults(&rec, &ImuFaultConfig::reference(), seed);
            let _ = process_imu(&faulted, &ImuPipelineConfig::default());
        }
    }
}
