//! The mobile-side data-processing pipeline of §IV-B.
//!
//! Given a raw [`ImuRecording`], the pipeline:
//!
//! 1. detects the start of the gesture from the variance rise of the
//!    accelerometer magnitude (the user pauses before waving, §IV-B-1);
//! 2. interpolates gyroscope, accelerometer, and magnetometer onto a
//!    100 Hz grid starting at the detected onset;
//! 3. estimates the initial device pose from the quiet-period
//!    accelerometer (gravity) and magnetometer (north) via TRIAD;
//! 4. dead-reckons subsequent poses by integrating the gyroscope (no
//!    Kalman filter — drift over two seconds is negligible, §IV-B-2);
//! 5. rotates the specific-force samples into the world frame and removes
//!    gravity, producing the 200×3 linear-acceleration matrix `A`.

use crate::sensors::ImuRecording;
use crate::GRAVITY;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use wavekey_dsp::{detect_motion_start, MotionDetectConfig};
use wavekey_math::{resample_linear_into, Mat3, Quaternion, Vec3};

/// The linear-acceleration matrix `A` (paper notation): `samples × 3`
/// world-frame linear accelerations at 100 Hz.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelMatrix {
    rows: Vec<Vec3>,
    /// Gesture onset in recording time (s) — used by the session layer to
    /// enforce the `2 + τ` deadline.
    pub start_time: f64,
}

impl AccelMatrix {
    /// Creates a matrix from rows (used by attack models that synthesize
    /// `A` from estimated trajectories).
    pub fn from_rows(rows: Vec<Vec3>, start_time: f64) -> AccelMatrix {
        AccelMatrix { rows, start_time }
    }

    /// The acceleration rows.
    pub fn rows(&self) -> &[Vec3] {
        &self.rows
    }

    /// Number of rows (the paper's 200).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Flattens to `[x0, y0, z0, x1, …]` for tensor conversion.
    pub fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows.len() * 3);
        for r in &self.rows {
            out.extend_from_slice(&r.to_array());
        }
        out
    }

    /// One axis as a column vector (0 = x, 1 = y, 2 = z).
    ///
    /// # Panics
    ///
    /// Panics if `axis > 2`.
    pub fn column(&self, axis: usize) -> Vec<f64> {
        assert!(axis < 3, "axis out of range");
        self.rows.iter().map(|r| r.to_array()[axis]).collect()
    }
}

/// Configuration of the mobile-side pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuPipelineConfig {
    /// Interpolation rate (Hz); the paper fixes 100 Hz.
    pub target_rate: f64,
    /// Number of output samples; the paper uses 200 (two seconds).
    pub samples: usize,
    /// Motion-onset detection parameters.
    pub detect: MotionDetectConfig,
    /// Length of the quiet window (s) used for the initial pose estimate.
    pub pose_window: f64,
    /// Second-stage onset refinement: re-estimate the onset as the first
    /// crossing of this absolute acceleration threshold (m/s²) by the
    /// smoothed linear-acceleration magnitude. The RFID side applies the
    /// same rule to its phase-derived radial acceleration, so both
    /// windows land on nearly the same physical instant without clock
    /// synchronization. `0.0` disables refinement.
    pub onset_refine_threshold: f64,
}

impl Default for ImuPipelineConfig {
    fn default() -> Self {
        ImuPipelineConfig {
            target_rate: 100.0,
            samples: 200,
            // The variance floor puts the trigger at a *physical* motion
            // level (~0.5 m/s² accelerations) comparable to where the
            // RFID phase detector fires (~millimeter displacements), so
            // the two sides latch onto the gesture onset within a few
            // tens of milliseconds of each other.
            detect: MotionDetectConfig {
                window: 10,
                baseline_len: 30,
                threshold_factor: 8.0,
                variance_floor: 0.09,
            },
            pose_window: 0.25,
            onset_refine_threshold: 0.4,
        }
    }
}

/// Refines a coarse onset to the first crossing of an *absolute
/// acceleration threshold* (m/s²) by the smoothed acceleration-magnitude
/// series `acc` (uniform grid at `rate` Hz starting at `grid_start`).
///
/// Both sides run this rule on the same physical quantity — the mobile on
/// its linear-acceleration magnitude, the server on the radial
/// acceleration derived from the phase (`φ\'\'·λ/4π`) — so the crossing
/// times coincide up to sensor noise and the radial-projection factor,
/// aligning the two 2-second windows to tens of milliseconds without any
/// clock synchronization. `smooth_window` (odd, in samples) sets the
/// moving-average length; use the same *duration* on both sides.
pub fn refine_onset(
    acc: &[f64],
    grid_start: f64,
    rate: f64,
    threshold: f64,
    smooth_window: usize,
) -> f64 {
    let half = smooth_window / 2;
    let smooth: Vec<f64> = (0..acc.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(acc.len());
            acc[lo..hi].iter().map(|v| v.abs()).sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    match smooth.iter().position(|&v| v >= threshold) {
        Some(i) => grid_start + i as f64 / rate,
        None => grid_start,
    }
}

/// Error from the mobile-side pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The variance detector never fired — the user did not move.
    MotionNotDetected,
    /// Not enough data after the onset to fill the requested window.
    RecordingTooShort,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::MotionNotDetected => write!(f, "gesture onset not detected"),
            PipelineError::RecordingTooShort => {
                write!(f, "recording too short after gesture onset")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// [`process_imu`] timed under the canonical `imu_pipeline` span (a no-op
/// with a disabled [`wavekey_obs::Obs`] handle).
///
/// # Errors
///
/// See [`process_imu`].
pub fn process_imu_observed(
    recording: &ImuRecording,
    config: &ImuPipelineConfig,
    obs: &wavekey_obs::Obs,
) -> Result<AccelMatrix, PipelineError> {
    let _span = obs.span(wavekey_obs::stage::IMU_PIPELINE);
    process_imu(recording, config)
}

/// Per-thread intermediate buffers reused across [`process_imu`] calls,
/// mirroring the RFID pipeline's scratch: without them every call built
/// ~10 recording-length temporaries, and the allocator jitter dominated
/// the pipeline's tail latency.
#[derive(Default)]
struct Scratch {
    accel_mag: Vec<f64>,
    axis_vals: Vec<f64>,
    accel: [Vec<f64>; 3],
    gyro: [Vec<f64>; 3],
    quiet: Vec<usize>,
    all_rows: Vec<Vec3>,
    acc_mag_world: Vec<f64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::default();
}

/// Runs the full §IV-B mobile pipeline on a recording.
///
/// # Errors
///
/// Returns [`PipelineError::MotionNotDetected`] when the gesture onset is
/// not found and [`PipelineError::RecordingTooShort`] when fewer than
/// `config.samples` output samples fit after the onset.
pub fn process_imu(
    recording: &ImuRecording,
    config: &ImuPipelineConfig,
) -> Result<AccelMatrix, PipelineError> {
    SCRATCH.with(|cell| process_imu_scratch(recording, config, &mut cell.borrow_mut()))
}

fn process_imu_scratch(
    recording: &ImuRecording,
    config: &ImuPipelineConfig,
    scratch: &mut Scratch,
) -> Result<AccelMatrix, PipelineError> {
    let Scratch { accel_mag, axis_vals, accel, gyro, quiet, all_rows, acc_mag_world } = scratch;
    // 1. Onset detection on the accelerometer magnitude, followed by the
    //    energy-envelope refinement shared (by construction) with the
    //    RFID side.
    accel_mag.clear();
    accel_mag.extend(recording.accel.iter().map(|a| a.norm()));
    let onset_idx = detect_motion_start(accel_mag, &config.detect)
        .ok_or(PipelineError::MotionNotDetected)?;
    let t0_coarse = recording.ts[onset_idx];

    // Processing starts slightly *before* the coarse trigger so the
    // refinement (step 5) can move the window onset backward as well as
    // forward; the extra tail gives it a one-second lookahead.
    let lead = if config.onset_refine_threshold > 0.0 { 0.2 } else { 0.0 };
    let grid_t0 = (t0_coarse - lead).max(recording.ts[0]);
    let extra = if config.onset_refine_threshold > 0.0 {
        (1.2 * config.target_rate) as usize
    } else {
        0
    };
    let last_ts = *recording.ts.last().expect("non-empty recording");
    if grid_t0 + (config.samples - 1) as f64 / config.target_rate > last_ts + 1e-9 {
        return Err(PipelineError::RecordingTooShort);
    }
    let usable_samples = (((last_ts - grid_t0) * config.target_rate).floor() as usize + 1)
        .min(config.samples + extra);

    // 2. Interpolate each stream/axis onto the uniform grid.
    let mut grid_into = |series: &[Vec3], dst: &mut [Vec<f64>; 3]| {
        for (axis, out) in dst.iter_mut().enumerate() {
            axis_vals.clear();
            axis_vals.extend(series.iter().map(|v| v.to_array()[axis]));
            resample_linear_into(
                &recording.ts,
                axis_vals,
                grid_t0,
                config.target_rate,
                usable_samples,
                out,
            )
            .expect("recording timestamps are strictly increasing");
        }
    };
    grid_into(&recording.accel, accel);
    grid_into(&recording.gyro, gyro);
    let t0 = grid_t0;

    // 3. Initial pose and gyroscope bias from the quiet window
    //    immediately before the onset. Estimating the bias while the
    //    device is provably still (the user's deliberate pause) and
    //    subtracting it is what keeps the dead-reckoned pose accurate
    //    over long recordings — the dominant drift term is the constant
    //    bias, not the white noise.
    quiet.clear();
    quiet.extend(
        recording
            .ts
            .iter()
            .enumerate()
            .filter(|(_, &t)| t >= t0 - config.pose_window && t < t0 - 0.02)
            .map(|(i, _)| i),
    );
    let (accel_avg, mag_avg, gyro_bias) = if quiet.is_empty() {
        (recording.accel[onset_idx], recording.mag[onset_idx], Vec3::ZERO)
    } else {
        let n = quiet.len() as f64;
        let a = quiet.iter().fold(Vec3::ZERO, |s, &i| s + recording.accel[i]) / n;
        let m = quiet.iter().fold(Vec3::ZERO, |s, &i| s + recording.mag[i]) / n;
        let w = quiet.iter().fold(Vec3::ZERO, |s, &i| s + recording.gyro[i]) / n;
        (a, m, w)
    };
    let mut q = initial_pose(accel_avg, mag_avg);

    // 4. Integrate the gyroscope and rotate specific force to world over
    //    the whole (extended) grid.
    let dt = 1.0 / config.target_rate;
    let g_world = Vec3::new(0.0, 0.0, -GRAVITY);
    all_rows.clear();
    all_rows.reserve(usable_samples);
    for i in 0..usable_samples {
        let f_body = Vec3::new(accel[0][i], accel[1][i], accel[2][i]);
        let a_world = q.rotate(f_body) + g_world;
        all_rows.push(a_world);
        let omega = Vec3::new(gyro[0][i], gyro[1][i], gyro[2][i]) - gyro_bias;
        q = q.integrate(omega, dt);
    }

    // 5. Onset refinement on the *true* linear-acceleration magnitude —
    //    the same physical quantity the RFID side derives from its phase,
    //    so the two 2-second windows align without clock synchronization.
    let mut start_idx = ((t0_coarse - grid_t0) * config.target_rate).round() as usize;
    if config.onset_refine_threshold > 0.0 {
        let lookahead = ((1.0 * config.target_rate) as usize).min(all_rows.len());
        acc_mag_world.clear();
        acc_mag_world.extend(all_rows[..lookahead].iter().map(|a| a.norm()));
        let t0_refined = refine_onset(
            acc_mag_world,
            grid_t0,
            config.target_rate,
            config.onset_refine_threshold,
            31,
        );
        start_idx = ((t0_refined - grid_t0) * config.target_rate).round() as usize;
    }
    let start_idx = start_idx.min(all_rows.len().saturating_sub(1));
    if start_idx + config.samples > all_rows.len() {
        return Err(PipelineError::RecordingTooShort);
    }
    let rows = all_rows[start_idx..start_idx + config.samples].to_vec();
    let start_time = grid_t0 + start_idx as f64 / config.target_rate;

    Ok(AccelMatrix { rows, start_time })
}

/// TRIAD initial-pose estimate from a quiet-period accelerometer average
/// (gravity reference) and magnetometer average (north reference).
///
/// Only the horizontal component of the magnetic field is used, so the
/// (unknown) field inclination cancels out.
fn initial_pose(accel: Vec3, mag: Vec3) -> Quaternion {
    // Body-frame observations.
    let up_b = accel.normalized(); // specific force at rest = +g "up"
    let north_b = (mag - up_b * mag.dot(up_b)).normalized();
    let north_b = if north_b == Vec3::ZERO { orthogonal_to(up_b) } else { north_b };
    // The magnetometer's horizontal component points toward magnetic
    // north; the world-frame field is (cos I, 0, −sin I), so horizontal
    // world north is +x.
    let east_b = up_b.cross(north_b).normalized();

    // Rotation body→world maps (north_b, east_b, up_b) to (x, −y?, z)…
    // world frame: x = north, z = up, y = x × z? Use right-handed y = z × x.
    let north_w = Vec3::X;
    let up_w = Vec3::Z;
    let east_w = up_w.cross(north_w); // = +Y

    // R maps body axes to world: R * north_b = north_w etc. Build via
    // R = W * Bᵀ with column triads.
    let w = Mat3::from_columns(north_w, east_w, up_w);
    let b = Mat3::from_columns(north_b, east_b, up_b);
    let r = w * b.transpose();
    Quaternion::from_matrix(&r)
}

fn orthogonal_to(v: Vec3) -> Vec3 {
    let candidate = if v.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
    (candidate - v * candidate.dot(v)).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gesture::{Gesture, GestureConfig, GestureGenerator, VolunteerId};
    use crate::sensors::{sample_imu, DeviceModel};
    use wavekey_math::pearson_correlation;

    fn run_pipeline(seed: u64) -> (Gesture, AccelMatrix) {
        let gesture =
            GestureGenerator::new(VolunteerId(0), seed).generate(&GestureConfig::default());
        let rec = sample_imu(&gesture, &DeviceModel::GalaxyWatch.spec(), seed);
        let a = process_imu(&rec, &ImuPipelineConfig::default()).expect("pipeline");
        (gesture, a)
    }

    #[test]
    fn produces_200_rows() {
        let (_, a) = run_pipeline(1);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn onset_is_near_true_pause_end() {
        let (gesture, a) = run_pipeline(2);
        assert!(
            (a.start_time - gesture.pause()).abs() < 0.2,
            "onset {} vs pause end {}",
            a.start_time,
            gesture.pause()
        );
    }

    #[test]
    fn recovered_acceleration_tracks_ground_truth() {
        // The headline requirement: after calibration, the recovered
        // world-frame linear acceleration must correlate strongly with the
        // true trajectory acceleration.
        let (gesture, a) = run_pipeline(3);
        for axis in 0..3 {
            let recovered = a.column(axis);
            let truth: Vec<f64> = (0..200)
                .map(|i| {
                    let t = a.start_time + i as f64 / 100.0;
                    gesture.acceleration_at(t).to_array()[axis]
                })
                .collect();
            let corr = pearson_correlation(&recovered, &truth);
            assert!(corr > 0.9, "axis {axis}: correlation {corr}");
        }
    }

    #[test]
    fn gravity_is_removed() {
        // The residual between recovered and true acceleration must stay
        // well below g; otherwise the pose estimate is leaking gravity.
        let (gesture, a) = run_pipeline(4);
        let mean_err: f64 = (0..a.len())
            .map(|i| {
                let t = a.start_time + i as f64 / 100.0;
                (a.rows()[i] - gesture.acceleration_at(t)).norm()
            })
            .sum::<f64>()
            / a.len() as f64;
        assert!(mean_err < 2.5, "mean |a_rec − a_true| = {mean_err} m/s²");
    }

    #[test]
    fn too_quiet_recording_fails() {
        // A gesture with no active phase: variance never rises.
        let config = GestureConfig { active: 0.0, pause: 3.0, ..Default::default() };
        let gesture = GestureGenerator::new(VolunteerId(1), 5).generate(&config);
        let rec = sample_imu(&gesture, &DeviceModel::GalaxyWatch.spec(), 5);
        let err = process_imu(&rec, &ImuPipelineConfig::default()).unwrap_err();
        assert_eq!(err, PipelineError::MotionNotDetected);
    }

    #[test]
    fn short_recording_fails() {
        // Active gesture but recording ends right after onset.
        let config = GestureConfig { active: 0.8, ..Default::default() };
        let gesture = GestureGenerator::new(VolunteerId(1), 6).generate(&config);
        let rec = sample_imu(&gesture, &DeviceModel::GalaxyWatch.spec(), 6);
        let err = process_imu(&rec, &ImuPipelineConfig::default()).unwrap_err();
        assert_eq!(err, PipelineError::RecordingTooShort);
    }

    #[test]
    fn initial_pose_identity_when_aligned() {
        // Device axes aligned with world: accel reads +z·g, mag reads the
        // world field.
        let incl = 60f64.to_radians();
        let accel = Vec3::new(0.0, 0.0, GRAVITY);
        let mag = Vec3::new(incl.cos(), 0.0, -incl.sin()) * 50.0;
        let q = initial_pose(accel, mag);
        let v = Vec3::new(0.3, -0.4, 0.8);
        assert!((q.rotate(v) - v).norm() < 1e-6);
    }

    #[test]
    fn initial_pose_recovers_yaw() {
        // Device rotated 90° about z: body x points world −y? Verify the
        // estimated pose un-rotates a body vector correctly.
        let rot = Quaternion::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2);
        let r_t = rot.conjugate();
        let incl = 60f64.to_radians();
        let field_world = Vec3::new(incl.cos(), 0.0, -incl.sin()) * 50.0;
        let accel_body = r_t.rotate(Vec3::new(0.0, 0.0, GRAVITY));
        let mag_body = r_t.rotate(field_world);
        let q = initial_pose(accel_body, mag_body);
        let v_body = Vec3::new(1.0, 0.0, 0.0);
        let expected = rot.rotate(v_body);
        assert!((q.rotate(v_body) - expected).norm() < 1e-6);
    }

    #[test]
    fn flatten_layout() {
        let m = AccelMatrix::from_rows(
            vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0)],
            0.0,
        );
        assert_eq!(m.flatten(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.column(1), vec![2.0, 5.0]);
    }
}
