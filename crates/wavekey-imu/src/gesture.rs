//! Stochastic hand-gesture trajectories.
//!
//! A WaveKey gesture is a short (~2 s) random wave of the hand holding
//! both the mobile device and the RFID tag, preceded by a brief pause that
//! both sides use to synchronize their recordings (§IV-B-1).
//!
//! The generator models hand dynamics as a sum of band-limited sinusoids:
//! human wrist/arm motion has essentially no energy above ~5 Hz, and
//! per-harmonic *acceleration* amplitudes of a few m/s² reproduce the
//! velocity (0.1–2 m/s) and displacement (2–20 cm) ranges of natural
//! waving. Device orientation evolves by integrating a band-limited
//! angular velocity, so the stored gyroscope ground truth is exactly
//! consistent with the stored pose — the same consistency a real IMU
//! experiences.
//!
//! The *mimicry* model (gesture-mimicking attack, §VI-E-1) replays a
//! victim trajectory through a human motor-error channel: reaction lag,
//! amplitude misjudgment, and added motor noise. Published motion-imitation
//! studies place imitation lag around 150–400 ms and amplitude error around
//! 10–30 %, which is what the defaults encode.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wavekey_math::{Quaternion, Vec3};

/// Identifies one of the simulated volunteers (the paper recruited six).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VolunteerId(pub u32);

/// Configuration of the gesture generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GestureConfig {
    /// Length of the initial still pause (seconds). Both devices detect the
    /// end of this pause as the start of the gesture.
    pub pause: f64,
    /// Length of the active random motion (seconds). The paper requires
    /// "slightly longer than two seconds".
    pub active: f64,
    /// Internal simulation rate (Hz) of the stored ground-truth series.
    pub sim_rate: f64,
    /// Number of translational harmonics per axis.
    pub harmonics: usize,
    /// Per-harmonic peak acceleration range (m/s²).
    pub accel_range: (f64, f64),
    /// Translational frequency band (Hz).
    pub freq_range: (f64, f64),
    /// Number of rotational harmonics per axis.
    pub rot_harmonics: usize,
    /// Per-harmonic peak angular velocity range (rad/s).
    pub omega_range: (f64, f64),
    /// Rotational frequency band (Hz).
    pub rot_freq_range: (f64, f64),
    /// Ramp-up time after the pause (seconds) so motion starts smoothly.
    pub ramp: f64,
    /// Amplitude multiplier for the body-forward (+x) axis. Users face
    /// the reader while waving at it, so hand motion is dominated by the
    /// toward/away component — which is exactly the component the RFID
    /// phase observes. 1.0 disables the bias.
    pub forward_bias: f64,
}

impl Default for GestureConfig {
    fn default() -> Self {
        GestureConfig {
            pause: 0.5,
            active: 3.0,
            sim_rate: 1000.0,
            harmonics: 5,
            accel_range: (0.8, 4.0),
            freq_range: (0.4, 3.5),
            rot_harmonics: 3,
            omega_range: (0.3, 1.8),
            rot_freq_range: (0.3, 3.0),
            ramp: 0.12,
            forward_bias: 3.0,
        }
    }
}

/// Ground truth of a single gesture: dense time series of the hand state.
///
/// All world-frame quantities; orientation maps body → world.
#[derive(Debug, Clone)]
pub struct Gesture {
    /// Timestamps (s), uniform at `sim_rate`, starting at 0 (pause start).
    ts: Vec<f64>,
    /// Hand/device position (m).
    pos: Vec<Vec3>,
    /// Velocity (m/s).
    vel: Vec<Vec3>,
    /// Acceleration (m/s²).
    acc: Vec<Vec3>,
    /// Device orientation (body → world).
    quat: Vec<Quaternion>,
    /// Angular velocity in the body frame (rad/s).
    omega: Vec<Vec3>,
    /// Duration of the initial pause (s).
    pause: f64,
}

impl Gesture {
    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        *self.ts.last().expect("gesture is never empty")
    }

    /// Duration of the initial still pause.
    pub fn pause(&self) -> f64 {
        self.pause
    }

    /// Number of stored ground-truth samples.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// `true` if the gesture stores no samples (never for generated ones).
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// The raw timestamp series.
    pub fn timestamps(&self) -> &[f64] {
        &self.ts
    }

    /// Position at time `t` (linear interpolation, clamped to the ends).
    pub fn position_at(&self, t: f64) -> Vec3 {
        self.lerp_vec(&self.pos, t)
    }

    /// Velocity at time `t`.
    pub fn velocity_at(&self, t: f64) -> Vec3 {
        self.lerp_vec(&self.vel, t)
    }

    /// World-frame acceleration at time `t`.
    pub fn acceleration_at(&self, t: f64) -> Vec3 {
        self.lerp_vec(&self.acc, t)
    }

    /// Body-frame angular velocity at time `t`.
    pub fn omega_at(&self, t: f64) -> Vec3 {
        self.lerp_vec(&self.omega, t)
    }

    /// Orientation (body → world) at time `t` (normalized lerp).
    pub fn orientation_at(&self, t: f64) -> Quaternion {
        let (i, frac) = self.locate(t);
        if frac == 0.0 || i + 1 >= self.quat.len() {
            return self.quat[i];
        }
        let a = self.quat[i];
        let b = self.quat[i + 1];
        // Normalized lerp; adjacent samples are close so nlerp ≈ slerp.
        let sign = if a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z < 0.0 { -1.0 } else { 1.0 };
        Quaternion::new(
            a.w + (sign * b.w - a.w) * frac,
            a.x + (sign * b.x - a.x) * frac,
            a.y + (sign * b.y - a.y) * frac,
            a.z + (sign * b.z - a.z) * frac,
        )
        .normalized()
    }

    /// Returns a copy of the gesture rotated by `yaw` radians about the
    /// vertical axis around the starting position — this is how "the user
    /// faces the reader" is applied: the generator's body-forward (+x)
    /// axis is turned toward the antenna.
    ///
    /// All stored quantities (position, velocity, acceleration,
    /// orientation, body-frame angular velocity) stay mutually
    /// consistent: world vectors are rotated, the orientation quaternion
    /// is left-composed, and body-frame angular velocity is unchanged.
    pub fn rotated_yaw(&self, yaw: f64) -> Gesture {
        let r = Quaternion::from_axis_angle(Vec3::Z, yaw);
        let pivot = self.pos[0];
        Gesture {
            ts: self.ts.clone(),
            pos: self.pos.iter().map(|&p| pivot + r.rotate(p - pivot)).collect(),
            vel: self.vel.iter().map(|&v| r.rotate(v)).collect(),
            acc: self.acc.iter().map(|&a| r.rotate(a)).collect(),
            quat: self.quat.iter().map(|&q| r.mul(q).normalized()).collect(),
            omega: self.omega.clone(),
            pause: self.pause,
        }
    }

    fn locate(&self, t: f64) -> (usize, f64) {
        let t0 = self.ts[0];
        let dt = self.ts[1] - self.ts[0];
        if t <= t0 {
            return (0, 0.0);
        }
        let last = self.ts.len() - 1;
        if t >= self.ts[last] {
            return (last, 0.0);
        }
        let x = (t - t0) / dt;
        let i = x.floor() as usize;
        (i, x - i as f64)
    }

    fn lerp_vec(&self, series: &[Vec3], t: f64) -> Vec3 {
        let (i, frac) = self.locate(t);
        if frac == 0.0 || i + 1 >= series.len() {
            series[i]
        } else {
            series[i].lerp(series[i + 1], frac)
        }
    }
}

/// One translational or rotational harmonic.
#[derive(Debug, Clone, Copy)]
struct Harmonic {
    /// Peak acceleration (m/s²) or angular velocity (rad/s).
    amp: f64,
    /// Frequency (Hz).
    freq: f64,
    /// Phase (rad).
    phase: f64,
}

/// Generates random gestures with a per-volunteer style signature.
///
/// # Examples
///
/// ```
/// use wavekey_imu::gesture::{GestureGenerator, GestureConfig, VolunteerId};
/// let mut gen = GestureGenerator::new(VolunteerId(0), 42);
/// let gesture = gen.generate(&GestureConfig::default());
/// assert!(gesture.duration() >= 2.9);
/// ```
#[derive(Debug, Clone)]
pub struct GestureGenerator {
    volunteer: VolunteerId,
    rng: StdRng,
    /// Style multipliers derived deterministically from the volunteer id.
    amp_scale: f64,
    freq_scale: f64,
    rot_scale: f64,
}

impl GestureGenerator {
    /// Creates a generator for `volunteer`, seeded by `seed`.
    ///
    /// The volunteer id deterministically selects a style (amplitude /
    /// tempo / rotation multipliers); the seed drives the per-gesture
    /// randomness.
    pub fn new(volunteer: VolunteerId, seed: u64) -> GestureGenerator {
        let mut style_rng = StdRng::seed_from_u64(0x57a7_e000 ^ u64::from(volunteer.0));
        GestureGenerator {
            volunteer,
            rng: StdRng::seed_from_u64(seed ^ (u64::from(volunteer.0) << 32)),
            amp_scale: style_rng.gen_range(0.75..1.25),
            freq_scale: style_rng.gen_range(0.85..1.15),
            rot_scale: style_rng.gen_range(0.7..1.3),
        }
    }

    /// The volunteer this generator emulates.
    pub fn volunteer(&self) -> VolunteerId {
        self.volunteer
    }

    /// Generates one random gesture.
    pub fn generate(&mut self, config: &GestureConfig) -> Gesture {
        let trans: Vec<[Harmonic; 3]> = (0..config.harmonics)
            .map(|_| {
                [0, 1, 2].map(|axis| Harmonic {
                    amp: self.rng.gen_range(config.accel_range.0..config.accel_range.1)
                        * self.amp_scale
                        * if axis == 0 { config.forward_bias } else { 1.0 },
                    freq: self.rng.gen_range(config.freq_range.0..config.freq_range.1)
                        * self.freq_scale,
                    phase: self.rng.gen_range(0.0..std::f64::consts::TAU),
                })
            })
            .collect();
        let rot: Vec<[Harmonic; 3]> = (0..config.rot_harmonics)
            .map(|_| {
                [0, 1, 2].map(|_| Harmonic {
                    amp: self.rng.gen_range(config.omega_range.0..config.omega_range.1)
                        * self.rot_scale,
                    freq: self
                        .rng
                        .gen_range(config.rot_freq_range.0..config.rot_freq_range.1)
                        * self.freq_scale,
                    phase: self.rng.gen_range(0.0..std::f64::consts::TAU),
                })
            })
            .collect();

        // Random initial orientation: phones are held at all sorts of
        // angles; keep it within ±45° of "screen up" for realism.
        let tilt_axis = Vec3::new(
            self.rng.gen_range(-1.0..1.0),
            self.rng.gen_range(-1.0..1.0),
            self.rng.gen_range(-1.0..1.0),
        );
        let tilt = Quaternion::from_axis_angle(
            tilt_axis,
            self.rng.gen_range(-std::f64::consts::FRAC_PI_4..std::f64::consts::FRAC_PI_4),
        );
        // Starting position roughly at chest height.
        let start = Vec3::new(
            self.rng.gen_range(-0.1..0.1),
            self.rng.gen_range(-0.1..0.1),
            self.rng.gen_range(1.2..1.5),
        );

        build_gesture(config, start, tilt, &trans, &rot)
    }

    /// Generates a mimic of `victim`: an attacker watches the victim's
    /// gesture and reproduces it while holding their own device.
    ///
    /// The imitation passes through a human motor-error channel described
    /// by `mimic_config` — see [`MimicConfig`].
    pub fn mimic(
        &mut self,
        victim: &Gesture,
        config: &GestureConfig,
        mimic_config: &MimicConfig,
    ) -> Gesture {
        let lag0 = self
            .rng
            .gen_range(mimic_config.lag_range.0..mimic_config.lag_range.1);
        // The lag is not constant: the mimic drifts in and out of sync.
        let lag_wander_amp = self.rng.gen_range(0.3..1.0) * mimic_config.lag_wander;
        let lag_wander_freq = self.rng.gen_range(0.2..0.6);
        let lag_wander_phase = self.rng.gen_range(0.0..std::f64::consts::TAU);
        // One amplitude error per axis; mimics consistently over/undershoot.
        let gain = Vec3::new(
            1.0 + self.rng.gen_range(-mimic_config.amplitude_error..mimic_config.amplitude_error),
            1.0 + self.rng.gen_range(-mimic_config.amplitude_error..mimic_config.amplitude_error),
            1.0 + self.rng.gen_range(-mimic_config.amplitude_error..mimic_config.amplitude_error),
        );
        // Pursuit-tracking bandwidth: humans can follow ~1–2 Hz of an
        // observed motion; finer detail is lost.
        let cutoff = self
            .rng
            .gen_range(mimic_config.bandwidth_range.0..mimic_config.bandwidth_range.1);
        // Motor noise: band-limited tremor harmonics.
        let tremor: Vec<[Harmonic; 3]> = (0..3)
            .map(|_| {
                [0, 1, 2].map(|_| Harmonic {
                    amp: self.rng.gen_range(0.3..1.0) * mimic_config.motor_noise,
                    freq: self.rng.gen_range(1.0..6.0),
                    phase: self.rng.gen_range(0.0..std::f64::consts::TAU),
                })
            })
            .collect();

        let dt = 1.0 / config.sim_rate;
        let n = victim.len();
        let mut ts = Vec::with_capacity(n);
        let mut acc = Vec::with_capacity(n);
        // Single-pole low-pass state (the tracking filter).
        let alpha = 1.0 - (-std::f64::consts::TAU * cutoff * dt).exp();
        let mut filtered = Vec3::ZERO;
        for i in 0..n {
            let t = i as f64 * dt;
            ts.push(t);
            let lag = lag0
                + lag_wander_amp
                    * (std::f64::consts::TAU * lag_wander_freq * t + lag_wander_phase).sin();
            // The mimic reproduces the victim's acceleration profile,
            // delayed by the (drifting) reaction lag, low-passed by the
            // tracking bandwidth, and scaled by the gain error.
            let source = victim.acceleration_at(t - lag);
            filtered += (source - filtered) * alpha;
            let mut a = filtered.hadamard(gain);
            let active_t = t - victim.pause();
            if active_t > 0.0 {
                for h3 in &tremor {
                    a += Vec3::new(
                        h3[0].amp * (std::f64::consts::TAU * h3[0].freq * t + h3[0].phase).sin(),
                        h3[1].amp * (std::f64::consts::TAU * h3[1].freq * t + h3[1].phase).sin(),
                        h3[2].amp * (std::f64::consts::TAU * h3[2].freq * t + h3[2].phase).sin(),
                    );
                }
            }
            acc.push(a);
        }
        // Integrate acceleration to velocity/position; the mimic's own
        // orientation wobble is freshly random (orientation is invisible
        // to an observer at a distance).
        let rot: Vec<[Harmonic; 3]> = (0..config.rot_harmonics)
            .map(|_| {
                [0, 1, 2].map(|_| Harmonic {
                    amp: self.rng.gen_range(config.omega_range.0..config.omega_range.1),
                    freq: self.rng.gen_range(config.rot_freq_range.0..config.rot_freq_range.1),
                    phase: self.rng.gen_range(0.0..std::f64::consts::TAU),
                })
            })
            .collect();
        integrate_series(config, victim.position_at(0.0), Quaternion::identity(), ts, acc, &rot, victim.pause())
    }
}

/// Parameters of the human motor-error channel used by gesture mimicry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MimicConfig {
    /// Reaction-lag range in seconds (imitation studies: 150–400 ms).
    pub lag_range: (f64, f64),
    /// Peak lag drift amplitude in seconds (the mimic loses and regains
    /// synchronization over the gesture).
    pub lag_wander: f64,
    /// Relative amplitude misjudgment (0.2 = ±20 %).
    pub amplitude_error: f64,
    /// Pursuit-tracking bandwidth range in Hz: motion content above this
    /// is invisible to the mimic's motor system.
    pub bandwidth_range: (f64, f64),
    /// Peak tremor acceleration (m/s²).
    pub motor_noise: f64,
}

impl Default for MimicConfig {
    fn default() -> Self {
        MimicConfig {
            lag_range: (0.15, 0.4),
            lag_wander: 0.08,
            amplitude_error: 0.2,
            bandwidth_range: (1.0, 2.0),
            motor_noise: 0.8,
        }
    }
}

/// Builds the dense ground-truth series from harmonic banks.
fn build_gesture(
    config: &GestureConfig,
    start: Vec3,
    initial_quat: Quaternion,
    trans: &[[Harmonic; 3]],
    rot: &[[Harmonic; 3]],
) -> Gesture {
    let dt = 1.0 / config.sim_rate;
    let total = config.pause + config.active;
    let n = (total * config.sim_rate).round() as usize + 1;
    let ts: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
    let acc: Vec<Vec3> = ts
        .iter()
        .map(|&t| {
            let env = envelope(t, config);
            if env == 0.0 {
                return Vec3::ZERO;
            }
            let mut a = Vec3::ZERO;
            for h3 in trans {
                a += Vec3::new(
                    h3[0].amp * (std::f64::consts::TAU * h3[0].freq * t + h3[0].phase).sin(),
                    h3[1].amp * (std::f64::consts::TAU * h3[1].freq * t + h3[1].phase).sin(),
                    h3[2].amp * (std::f64::consts::TAU * h3[2].freq * t + h3[2].phase).sin(),
                );
            }
            a * env
        })
        .collect();
    integrate_series(config, start, initial_quat, ts, acc, rot, config.pause)
}

/// Integrates an acceleration series (and rotational harmonics) into the
/// full gesture ground truth.
fn integrate_series(
    config: &GestureConfig,
    start: Vec3,
    initial_quat: Quaternion,
    ts: Vec<f64>,
    acc: Vec<Vec3>,
    rot: &[[Harmonic; 3]],
    pause: f64,
) -> Gesture {
    let dt = 1.0 / config.sim_rate;
    let n = ts.len();
    let mut vel = Vec::with_capacity(n);
    let mut pos = Vec::with_capacity(n);
    let mut quat = Vec::with_capacity(n);
    let mut omega = Vec::with_capacity(n);
    let mut total_acc = Vec::with_capacity(n);
    let mut v = Vec3::ZERO;
    let mut p = start;
    let mut q = initial_quat;
    // Physiological recentering: the hand waves *about* a home position
    // rather than walking away — a weak spring-damper toward the start
    // keeps displacement at arm scale even over 15-second gestures. The
    // feedback is part of the true hand acceleration, so both the IMU
    // and the RFID channel see it.
    const SPRING: f64 = 3.0; // s⁻², recentering stiffness
    const DAMPING: f64 = 3.5; // s⁻¹ — critically damped: no resonant wander
    for (i, &t) in ts.iter().enumerate() {
        let env = envelope(t, config);
        let w = if env == 0.0 {
            Vec3::ZERO
        } else {
            let mut w = Vec3::ZERO;
            for h3 in rot {
                w += Vec3::new(
                    h3[0].amp * (std::f64::consts::TAU * h3[0].freq * t + h3[0].phase).sin(),
                    h3[1].amp * (std::f64::consts::TAU * h3[1].freq * t + h3[1].phase).sin(),
                    h3[2].amp * (std::f64::consts::TAU * h3[2].freq * t + h3[2].phase).sin(),
                );
            }
            w * env
        };
        let a = acc[i] + (start - p) * SPRING - v * DAMPING;
        vel.push(v);
        pos.push(p);
        quat.push(q);
        omega.push(w);
        total_acc.push(a);
        // Semi-implicit Euler keeps the stored series self-consistent.
        v += a * dt;
        p += v * dt;
        q = q.integrate(w, dt);
    }
    Gesture { ts, pos, vel, acc: total_acc, quat, omega, pause }
}

/// Smooth activation envelope: 0 during the pause, smoothstep ramp, then 1.
fn envelope(t: f64, config: &GestureConfig) -> f64 {
    let x = (t - config.pause) / config.ramp;
    if x <= 0.0 {
        0.0
    } else if x >= 1.0 {
        1.0
    } else {
        x * x * (3.0 - 2.0 * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavekey_math::pearson_correlation;

    fn default_gesture(seed: u64) -> Gesture {
        GestureGenerator::new(VolunteerId(0), seed).generate(&GestureConfig::default())
    }

    #[test]
    fn gesture_is_still_during_pause() {
        let g = default_gesture(1);
        for i in 0..(0.45 * 1000.0) as usize {
            assert_eq!(g.acc[i], Vec3::ZERO, "sample {i}");
            assert_eq!(g.omega[i], Vec3::ZERO);
        }
        assert_eq!(g.position_at(0.0), g.position_at(0.4));
    }

    #[test]
    fn gesture_moves_after_pause() {
        let g = default_gesture(2);
        let during = g.acceleration_at(1.5);
        assert!(during.norm() > 0.0 || g.acceleration_at(1.6).norm() > 0.0);
        // Displacement over the active window should be at least a cm.
        let moved = g.position_at(2.5).distance(g.position_at(0.5));
        assert!(moved > 0.01, "moved {moved} m");
    }

    #[test]
    fn acceleration_magnitudes_are_humanlike() {
        let g = default_gesture(3);
        let peak = g
            .acc
            .iter()
            .map(|a| a.norm())
            .fold(0.0f64, f64::max);
        assert!(peak > 1.0, "peak accel {peak} too small");
        assert!(peak < 60.0, "peak accel {peak} beyond human capability");
    }

    #[test]
    fn velocity_is_integral_of_acceleration() {
        let g = default_gesture(4);
        // Compare finite-difference of velocity against stored acceleration.
        let dt = 1.0 / 1000.0;
        for i in (600..2500).step_by(137) {
            let fd = (g.vel[i + 1] - g.vel[i]) / dt;
            assert!((fd - g.acc[i]).norm() < 1e-6, "index {i}");
        }
    }

    #[test]
    fn different_seeds_give_different_gestures() {
        let a = default_gesture(10);
        let b = default_gesture(11);
        let ax: Vec<f64> = a.acc.iter().map(|v| v.x).collect();
        let bx: Vec<f64> = b.acc.iter().map(|v| v.x).collect();
        let corr = pearson_correlation(&ax, &bx);
        assert!(corr.abs() < 0.5, "independent gestures correlate at {corr}");
    }

    #[test]
    fn same_seed_is_reproducible() {
        let a = default_gesture(12);
        let b = default_gesture(12);
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.quat.len(), b.quat.len());
    }

    #[test]
    fn orientation_stays_normalized() {
        let g = default_gesture(13);
        for q in &g.quat {
            assert!((q.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn interpolators_clamp_out_of_range() {
        let g = default_gesture(14);
        assert_eq!(g.position_at(-1.0), g.pos[0]);
        assert_eq!(g.position_at(100.0), *g.pos.last().unwrap());
    }

    #[test]
    fn mimic_correlates_but_differs() {
        let config = GestureConfig::default();
        let mut victim_gen = GestureGenerator::new(VolunteerId(0), 20);
        let victim = victim_gen.generate(&config);
        let mut attacker = GestureGenerator::new(VolunteerId(1), 21);
        let mimic = attacker.mimic(&victim, &config, &MimicConfig::default());

        // The mimic trails the victim by an unknown reaction lag, so scan
        // candidate lags and take the best alignment.
        let mx: Vec<f64> = mimic.acc.iter().map(|a| a.x).collect();
        let mut best = -1.0f64;
        for lag_ms in (0..=500).step_by(10) {
            let lag = lag_ms; // samples at 1 kHz
            let vx: Vec<f64> =
                (0..mimic.len() - lag).map(|i| victim.acc[i].x).collect();
            let mx_shift: Vec<f64> = mx[lag..].to_vec();
            best = best.max(pearson_correlation(&vx, &mx_shift));
        }
        // A mimic resembles the victim far more than an independent gesture…
        assert!(best > 0.3, "mimic barely correlates: {best}");
        // …but the motor-error channel prevents a close copy.
        assert!(best < 0.99, "mimic too faithful: {best}");
    }

    #[test]
    fn mimic_has_same_length_and_pause() {
        let config = GestureConfig::default();
        let mut gen = GestureGenerator::new(VolunteerId(2), 30);
        let victim = gen.generate(&config);
        let mimic = gen.mimic(&victim, &config, &MimicConfig::default());
        assert_eq!(mimic.len(), victim.len());
        assert_eq!(mimic.pause(), victim.pause());
    }

    #[test]
    fn forward_bias_dominates_x_axis() {
        // Average over several gestures: the per-harmonic amplitudes are
        // random, so a single gesture can deviate.
        let (mut ex, mut ey, mut ez) = (0.0f64, 0.0f64, 0.0f64);
        for seed in 40..48 {
            let g = default_gesture(seed);
            for a in &g.acc {
                ex += a.x * a.x;
                ey += a.y * a.y;
                ez += a.z * a.z;
            }
        }
        assert!(ex > 2.0 * ey, "x {ex} vs y {ey}");
        assert!(ex > 2.0 * ez, "x {ex} vs z {ez}");
    }

    #[test]
    fn rotated_yaw_consistency() {
        let g = default_gesture(41);
        let yaw = 1.1;
        let rg = g.rotated_yaw(yaw);
        // Same start position; rotated displacement/acceleration norms.
        assert!((rg.position_at(0.0) - g.position_at(0.0)).norm() < 1e-12);
        for &t in &[1.0, 1.7, 2.4] {
            assert!((rg.acceleration_at(t).norm() - g.acceleration_at(t).norm()).abs() < 1e-9);
            // The rotated acceleration really is the yaw-rotation of the
            // original.
            let r = Quaternion::from_axis_angle(Vec3::Z, yaw);
            assert!((rg.acceleration_at(t) - r.rotate(g.acceleration_at(t))).norm() < 1e-9);
            // Specific force consistency: the body-frame specific force
            // must be unchanged by the world-frame yaw (sensors cannot
            // tell which way the user faces, gravity aside).
            let f_orig = g.orientation_at(t).conjugate().rotate(g.acceleration_at(t));
            let f_rot = rg.orientation_at(t).conjugate().rotate(rg.acceleration_at(t));
            assert!((f_orig - f_rot).norm() < 1e-9);
        }
    }

    #[test]
    fn volunteer_styles_differ() {
        let g0 = GestureGenerator::new(VolunteerId(0), 1);
        let g1 = GestureGenerator::new(VolunteerId(1), 1);
        assert!(
            (g0.amp_scale - g1.amp_scale).abs() > 1e-6
                || (g0.freq_scale - g1.freq_scale).abs() > 1e-6
        );
    }
}
