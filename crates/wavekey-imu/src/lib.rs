//! Gesture simulation and the mobile-side WaveKey pipeline.
//!
//! The original WaveKey evaluation recorded six human volunteers waving
//! four physical mobile devices. This crate replaces the humans and the
//! hardware with simulation while keeping the paper's processing chain
//! (§IV-B) intact:
//!
//! * [`gesture`] — a stochastic generator of smooth, band-limited 3-D hand
//!   trajectories with per-volunteer style, a leading pause (the paper's
//!   synchronization trick), plus the *mimicry* model used by the §VI-E
//!   gesture-mimicking attack.
//! * [`sensors`] — accelerometer / gyroscope / magnetometer models with
//!   noise, bias, and sampling jitter; four device models standing in for
//!   the paper's Pixel 8, two Galaxy S5 phones, and Galaxy Watch.
//! * [`pipeline`] — the §IV-B mobile-side processing: interpolation to
//!   100 Hz, initial pose from accelerometer + magnetometer, gyroscope
//!   dead-reckoning, coordinate transform, producing the 200×3 linear
//!   acceleration matrix `A`.
//! * [`fault`] — deterministic sensing-fault injection (sample dropout
//!   bursts, accelerometer clipping) for the robustness/chaos suite.

pub mod fault;
pub mod gesture;
pub mod pipeline;
pub mod sensors;

pub use fault::{inject_imu_faults, ImuFaultConfig};
pub use gesture::{Gesture, GestureConfig, GestureGenerator, MimicConfig, VolunteerId};
pub use pipeline::{process_imu, AccelMatrix, ImuPipelineConfig, PipelineError};
pub use sensors::{sample_imu, DeviceModel, ImuRecording, ImuSpec};

/// Gravitational acceleration (m/s²), pointing along −z in the world frame.
pub const GRAVITY: f64 = 9.81;

/// Earth magnetic field magnitude used by the magnetometer model (µT).
pub const EARTH_FIELD_UT: f64 = 50.0;
