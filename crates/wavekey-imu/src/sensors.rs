//! IMU sensor models.
//!
//! A phone IMU reports, in the *body* (device) frame:
//!
//! * accelerometer — the specific force `f = Rᵀ(a − g)` (so at rest it
//!   reads +9.81 m/s² "up"), plus bias and white noise;
//! * gyroscope — the body angular velocity plus bias and white noise;
//! * magnetometer — the Earth field rotated into the body frame plus hard
//!   iron offset and noise.
//!
//! Noise figures follow typical consumer MEMS parts (e.g. the InvenSense
//! MPU-6500 / Bosch BMI160 class used in the paper's devices):
//! accelerometer noise density ≈ 300 µg/√Hz → ~0.02 m/s² rms at 100 Hz;
//! gyroscope ≈ 0.01 dps/√Hz → ~0.002 rad/s rms; magnetometer ≈ 0.5 µT rms.
//! Sampling has timestamp jitter, which the §IV-B interpolation step
//! absorbs.

use crate::gesture::Gesture;
use crate::{EARTH_FIELD_UT, GRAVITY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand::distributions::Distribution;
use serde::{Deserialize, Serialize};
use wavekey_math::Vec3;

/// Noise/bias/sampling specification of one device's IMU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImuSpec {
    /// Nominal sample rate (Hz).
    pub sample_rate: f64,
    /// Timestamp jitter standard deviation (s).
    pub timestamp_jitter: f64,
    /// Accelerometer white-noise standard deviation (m/s²).
    pub accel_noise: f64,
    /// Accelerometer bias magnitude (m/s², random direction per device).
    pub accel_bias: f64,
    /// Gyroscope white-noise standard deviation (rad/s).
    pub gyro_noise: f64,
    /// Gyroscope bias magnitude (rad/s).
    pub gyro_bias: f64,
    /// Magnetometer white-noise standard deviation (µT).
    pub mag_noise: f64,
}

impl Default for ImuSpec {
    fn default() -> Self {
        DeviceModel::GalaxyWatch.spec()
    }
}

/// The four mobile devices of the paper's evaluation (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceModel {
    /// Google Pixel 8 — newest IMU, lowest noise.
    Pixel8,
    /// First Samsung Galaxy S5 unit.
    GalaxyS5A,
    /// Second Samsung Galaxy S5 unit (unit-to-unit variation).
    GalaxyS5B,
    /// Samsung Galaxy Watch — the default device of §VI-B.
    GalaxyWatch,
}

impl DeviceModel {
    /// All four devices.
    pub const ALL: [DeviceModel; 4] = [
        DeviceModel::Pixel8,
        DeviceModel::GalaxyS5A,
        DeviceModel::GalaxyS5B,
        DeviceModel::GalaxyWatch,
    ];

    /// The IMU specification of this device model.
    pub fn spec(self) -> ImuSpec {
        match self {
            DeviceModel::Pixel8 => ImuSpec {
                sample_rate: 104.0,
                timestamp_jitter: 0.0005,
                accel_noise: 0.015,
                accel_bias: 0.03,
                gyro_noise: 0.0015,
                gyro_bias: 0.005,
                mag_noise: 0.4,
            },
            DeviceModel::GalaxyS5A => ImuSpec {
                sample_rate: 100.0,
                timestamp_jitter: 0.001,
                accel_noise: 0.025,
                accel_bias: 0.06,
                gyro_noise: 0.0025,
                gyro_bias: 0.01,
                mag_noise: 0.6,
            },
            DeviceModel::GalaxyS5B => ImuSpec {
                sample_rate: 100.0,
                timestamp_jitter: 0.001,
                accel_noise: 0.028,
                accel_bias: 0.07,
                gyro_noise: 0.0028,
                gyro_bias: 0.012,
                mag_noise: 0.65,
            },
            DeviceModel::GalaxyWatch => ImuSpec {
                sample_rate: 100.0,
                timestamp_jitter: 0.0012,
                accel_noise: 0.022,
                accel_bias: 0.05,
                gyro_noise: 0.002,
                gyro_bias: 0.008,
                mag_noise: 0.5,
            },
        }
    }
}

/// A recorded IMU stream: per-sample timestamp plus the three sensor
/// readings in the body frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ImuRecording {
    /// Sample timestamps (s), gesture-relative, strictly increasing.
    pub ts: Vec<f64>,
    /// Accelerometer specific-force readings (m/s²).
    pub accel: Vec<Vec3>,
    /// Gyroscope readings (rad/s).
    pub gyro: Vec<Vec3>,
    /// Magnetometer readings (µT).
    pub mag: Vec<Vec3>,
}

impl ImuRecording {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }
}

/// Samples a gesture through an IMU.
///
/// The world frame has z up, x pointing magnetic north, gravity
/// `(0,0,−9.81)` and the Earth field tilted 60° down from horizontal (a
/// typical mid-latitude inclination).
pub fn sample_imu(gesture: &Gesture, spec: &ImuSpec, seed: u64) -> ImuRecording {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1b1e_55ed);
    let normal = Gaussian::new();

    // Per-recording biases (random direction, fixed over the recording —
    // bias instability over 3 s is negligible).
    let accel_bias = random_direction(&mut rng) * spec.accel_bias;
    let gyro_bias = random_direction(&mut rng) * spec.gyro_bias;
    let mag_offset = random_direction(&mut rng) * 2.0; // hard-iron, µT

    let g_world = Vec3::new(0.0, 0.0, -GRAVITY);
    let incl = 60f64.to_radians();
    let field_world = Vec3::new(incl.cos(), 0.0, -incl.sin()) * EARTH_FIELD_UT;

    let duration = gesture.duration();
    let dt = 1.0 / spec.sample_rate;
    let n = (duration / dt).floor() as usize + 1;
    let mut ts = Vec::with_capacity(n);
    let mut accel = Vec::with_capacity(n);
    let mut gyro = Vec::with_capacity(n);
    let mut mag = Vec::with_capacity(n);

    for i in 0..n {
        let jitter = normal.sample_with(&mut rng) * spec.timestamp_jitter;
        let t = (i as f64 * dt + jitter).clamp(0.0, duration);
        let q = gesture.orientation_at(t); // body -> world
        let r_t = q.conjugate(); // world -> body

        let a_world = gesture.acceleration_at(t);
        let specific_force = r_t.rotate(a_world - g_world);
        let a_meas = specific_force
            + accel_bias
            + random_gaussian_vec(&mut rng, &normal) * spec.accel_noise;

        let w_meas = gesture.omega_at(t)
            + gyro_bias
            + random_gaussian_vec(&mut rng, &normal) * spec.gyro_noise;

        let m_meas = r_t.rotate(field_world)
            + mag_offset
            + random_gaussian_vec(&mut rng, &normal) * spec.mag_noise;

        ts.push(t);
        accel.push(a_meas);
        gyro.push(w_meas);
        mag.push(m_meas);
    }

    // Enforce strictly increasing timestamps despite jitter.
    for i in 1..ts.len() {
        if ts[i] <= ts[i - 1] {
            ts[i] = ts[i - 1] + 1e-6;
        }
    }

    ImuRecording { ts, accel, gyro, mag }
}

/// Box-Muller standard-normal sampler (keeps `rand` usage to `gen_range`).
#[derive(Debug, Clone, Copy)]
struct Gaussian;

impl Gaussian {
    fn new() -> Gaussian {
        Gaussian
    }

    fn sample_with(self, rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution<f64> for Gaussian {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

fn random_gaussian_vec(rng: &mut StdRng, g: &Gaussian) -> Vec3 {
    Vec3::new(g.sample_with(rng), g.sample_with(rng), g.sample_with(rng))
}

fn random_direction(rng: &mut StdRng) -> Vec3 {
    let g = Gaussian::new();
    loop {
        let v = random_gaussian_vec(rng, &g);
        if v.norm() > 1e-9 {
            return v.normalized();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gesture::{GestureConfig, GestureGenerator, VolunteerId};

    fn recording(seed: u64, device: DeviceModel) -> (Gesture, ImuRecording) {
        let gesture = GestureGenerator::new(VolunteerId(0), seed).generate(&GestureConfig::default());
        let rec = sample_imu(&gesture, &device.spec(), seed);
        (gesture, rec)
    }

    #[test]
    fn sample_count_matches_rate_and_duration() {
        let (gesture, rec) = recording(1, DeviceModel::GalaxyWatch);
        let expected = (gesture.duration() * 100.0) as usize + 1;
        assert!((rec.len() as i64 - expected as i64).abs() <= 1);
    }

    #[test]
    fn timestamps_strictly_increase() {
        let (_, rec) = recording(2, DeviceModel::GalaxyS5A);
        for w in rec.ts.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn accelerometer_reads_gravity_during_pause() {
        let (_, rec) = recording(3, DeviceModel::Pixel8);
        // During the pause the specific force should have magnitude ≈ g.
        for i in 0..20 {
            let mag = rec.accel[i].norm();
            assert!((mag - GRAVITY).abs() < 0.3, "sample {i}: |f| = {mag}");
        }
    }

    #[test]
    fn gyro_quiet_during_pause_active_afterwards() {
        let (gesture, rec) = recording(4, DeviceModel::GalaxyWatch);
        let pause_end = gesture.pause();
        let quiet: Vec<f64> = rec
            .ts
            .iter()
            .zip(&rec.gyro)
            .filter(|(t, _)| **t < pause_end - 0.05)
            .map(|(_, w)| w.norm())
            .collect();
        let active: Vec<f64> = rec
            .ts
            .iter()
            .zip(&rec.gyro)
            .filter(|(t, _)| **t > pause_end + 0.5)
            .map(|(_, w)| w.norm())
            .collect();
        let quiet_mean = quiet.iter().sum::<f64>() / quiet.len() as f64;
        let active_mean = active.iter().sum::<f64>() / active.len() as f64;
        assert!(
            active_mean > 10.0 * quiet_mean,
            "gyro active {active_mean} vs quiet {quiet_mean}"
        );
    }

    #[test]
    fn magnetometer_magnitude_near_earth_field() {
        let (_, rec) = recording(5, DeviceModel::GalaxyS5B);
        for m in rec.mag.iter().step_by(37) {
            let mag = m.norm();
            assert!((mag - EARTH_FIELD_UT).abs() < 6.0, "|B| = {mag}");
        }
    }

    #[test]
    fn same_seed_reproducible() {
        let (_, a) = recording(6, DeviceModel::GalaxyWatch);
        let (_, b) = recording(6, DeviceModel::GalaxyWatch);
        assert_eq!(a, b);
    }

    #[test]
    fn device_specs_differ() {
        let specs: Vec<ImuSpec> = DeviceModel::ALL.iter().map(|d| d.spec()).collect();
        for i in 0..specs.len() {
            for j in (i + 1)..specs.len() {
                assert_ne!(specs[i], specs[j], "{i} vs {j}");
            }
        }
    }
}
